//! NIC RX engine: 40 Gbps wire model + host-memory payload placement.

use crate::framing::{Frame, FrameError};
use dlb_chaos::{FaultKind, StageInjector};
use dlb_simcore::queueing::SerialPipe;
use dlb_simcore::SimTime;
use dlb_telemetry::{names, Counter, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default RX descriptor ring capacity. Real NICs post descriptors into a
/// fixed ring; when the host does not drain fast enough, arriving frames
/// are dropped at the wire instead of growing host memory without bound.
pub const DEFAULT_RX_RING_CAPACITY: usize = 4096;

/// Why the NIC refused one delivered frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxError {
    /// The wire bytes failed to parse.
    Frame(FrameError),
    /// The frame parsed, but the descriptor ring was full — the frame is
    /// dropped (counted, payload not stored) until the host drains.
    RingFull {
        /// The ring's configured capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::Frame(e) => write!(f, "frame error: {e:?}"),
            RxError::RingFull { capacity } => {
                write!(f, "RX ring full (capacity {capacity}), frame dropped")
            }
        }
    }
}

impl std::error::Error for RxError {}

impl From<FrameError> for RxError {
    fn from(e: FrameError) -> Self {
        RxError::Frame(e)
    }
}

/// Static NIC characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct NicSpec {
    /// Marketing name.
    pub name: String,
    /// Wire bandwidth, bytes/second.
    pub wire_bytes_per_sec: f64,
    /// Fixed per-packet latency (fabric + NIC processing).
    pub packet_latency: SimTime,
}

impl NicSpec {
    /// The paper's 40 Gbps fabric.
    pub fn forty_gbps() -> Self {
        Self {
            name: "40Gbps fabric".into(),
            wire_bytes_per_sec: 40.0e9 / 8.0,
            packet_latency: SimTime::from_micros(8),
        }
    }
}

/// Descriptor the NIC posts after depositing one request's payload in host
/// memory — the metadata `DataCollector::load_from_net` translates into
/// decode cmds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxDescriptor {
    /// Request id from the frame.
    pub request_id: u64,
    /// Originating client.
    pub client_id: u32,
    /// Simulated physical address of the payload.
    pub phys_addr: u64,
    /// Payload length.
    pub len: u32,
    /// Arrival timestamp (set by the caller's clock domain; wall-clock nanos
    /// in the functional pipeline, virtual nanos in the DES).
    pub arrival_nanos: u64,
}

/// The functional RX engine: parses frames, stores payloads at fresh
/// simulated physical addresses, posts descriptors to an RX ring, and serves
/// fetches (the resolver side).
#[derive(Debug)]
pub struct NicRx {
    spec: NicSpec,
    ring_capacity: usize,
    state: Mutex<RxState>,
    /// Telemetry: frames dropped on ring overflow (`net.rx_ring_drops`).
    drop_counter: Option<Arc<Counter>>,
    /// Telemetry: frames rejected by the parser (`net.frames_bad`).
    bad_counter: Option<Arc<Counter>>,
    /// Optional chaos injector (wire corruption / forced ring overflow).
    chaos: Option<Arc<StageInjector>>,
    /// Frames offered so far — the identity key for deterministic chaos
    /// draws (frames arrive from a single producer in a stable order).
    chaos_ticket: AtomicU64,
}

#[derive(Debug)]
struct RxState {
    buffers: HashMap<u64, Vec<u8>>,
    ring: VecDeque<RxDescriptor>,
    next_phys: u64,
    frames_ok: u64,
    frames_bad: u64,
    frames_dropped: u64,
    bytes_rx: u64,
}

impl NicRx {
    /// A fresh RX engine whose buffer region starts at `phys_base`, with
    /// the [`DEFAULT_RX_RING_CAPACITY`].
    pub fn new(spec: NicSpec, phys_base: u64) -> Self {
        Self::with_ring_capacity(spec, phys_base, DEFAULT_RX_RING_CAPACITY)
    }

    /// A fresh RX engine with an explicit descriptor-ring bound (≥ 1).
    pub fn with_ring_capacity(spec: NicSpec, phys_base: u64, ring_capacity: usize) -> Self {
        Self {
            spec,
            ring_capacity: ring_capacity.max(1),
            state: Mutex::new(RxState {
                buffers: HashMap::new(),
                ring: VecDeque::new(),
                next_phys: phys_base,
                frames_ok: 0,
                frames_bad: 0,
                frames_dropped: 0,
                bytes_rx: 0,
            }),
            drop_counter: None,
            bad_counter: None,
            chaos: None,
            chaos_ticket: AtomicU64::new(0),
        }
    }

    /// Mirrors drop/bad-frame counts into `registry` under the canonical
    /// `net.*` names.
    pub fn with_telemetry(mut self, registry: &Arc<Registry>) -> Self {
        self.drop_counter = Some(registry.counter(names::NET_RX_DROPS));
        self.bad_counter = Some(registry.counter(names::NET_FRAMES_BAD));
        self
    }

    /// Injects chaos at the wire: corrupted frames (take the bad-frame
    /// path) and forced ring overflows (take the drop path). Faults are
    /// keyed by frame arrival ordinal, so a replay with the same seed and
    /// the same frame sequence injects at the same frames.
    pub fn with_chaos(mut self, injector: Arc<StageInjector>) -> Self {
        self.chaos = Some(injector);
        self
    }

    /// NIC characteristics.
    pub fn spec(&self) -> &NicSpec {
        &self.spec
    }

    /// Configured descriptor-ring capacity.
    pub fn ring_capacity(&self) -> usize {
        self.ring_capacity
    }

    /// Delivers raw wire bytes (one frame). On success the payload is
    /// placed in a fresh buffer and a descriptor is queued. Frames
    /// arriving to a full descriptor ring are dropped and counted — the
    /// backpressure signal the serving layer's drain loop responds to.
    pub fn deliver(&self, wire_bytes: &[u8], arrival_nanos: u64) -> Result<RxDescriptor, RxError> {
        let mut corrupted: Vec<u8>;
        let mut wire_bytes = wire_bytes;
        if let Some(inj) = &self.chaos {
            let ordinal = self.chaos_ticket.fetch_add(1, Ordering::Relaxed);
            match inj.decide(ordinal) {
                Some(FaultKind::Overflow) => {
                    // Forced ring overflow: the frame is dropped at the
                    // wire exactly as if the host had stalled.
                    self.state.lock().frames_dropped += 1;
                    if let Some(c) = &self.drop_counter {
                        c.inc();
                    }
                    return Err(RxError::RingFull {
                        capacity: self.ring_capacity,
                    });
                }
                Some(FaultKind::Delay(d)) => {
                    inj.sleep(d);
                }
                Some(_) => {
                    // Wire corruption: damage a copy of the frame bytes so
                    // the parser rejects it through the normal bad-frame
                    // path (or, for payload-only damage, downstream decode
                    // sees garbage — both are realistic bit-flip outcomes).
                    corrupted = wire_bytes.to_vec();
                    if !corrupted.is_empty() {
                        let idx = (ordinal as usize) % corrupted.len();
                        corrupted[idx] ^= 0xA5;
                    }
                    wire_bytes = &corrupted;
                }
                None => {}
            }
        }
        let frame = match Frame::decode(wire_bytes) {
            Ok(f) => f,
            Err(e) => {
                self.state.lock().frames_bad += 1;
                if let Some(c) = &self.bad_counter {
                    c.inc();
                }
                return Err(RxError::Frame(e));
            }
        };
        let mut st = self.state.lock();
        if st.ring.len() >= self.ring_capacity {
            st.frames_dropped += 1;
            if let Some(c) = &self.drop_counter {
                c.inc();
            }
            return Err(RxError::RingFull {
                capacity: self.ring_capacity,
            });
        }
        let phys_addr = st.next_phys;
        // 256-byte aligned buffer slots.
        st.next_phys += (frame.payload.len() as u64).div_ceil(256) * 256;
        let desc = RxDescriptor {
            request_id: frame.request_id,
            client_id: frame.client_id,
            phys_addr,
            len: frame.payload.len() as u32,
            arrival_nanos,
        };
        st.bytes_rx += wire_bytes.len() as u64;
        st.frames_ok += 1;
        st.buffers.insert(phys_addr, frame.payload);
        st.ring.push_back(desc.clone());
        Ok(desc)
    }

    /// Pops the next RX descriptor, if any.
    pub fn poll(&self) -> Option<RxDescriptor> {
        self.state.lock().ring.pop_front()
    }

    /// Pops up to `n` descriptors (batch assembly).
    pub fn poll_batch(&self, n: usize) -> Vec<RxDescriptor> {
        let mut st = self.state.lock();
        let take = n.min(st.ring.len());
        st.ring.drain(..take).collect()
    }

    /// Reads a deposited payload (the DataReader's "DMA from DRAM").
    pub fn fetch(&self, phys_addr: u64, len: u32) -> Result<Vec<u8>, String> {
        let st = self.state.lock();
        let buf = st
            .buffers
            .get(&phys_addr)
            .ok_or_else(|| format!("no RX buffer at {phys_addr:#x}"))?;
        if buf.len() != len as usize {
            return Err(format!(
                "RX buffer at {phys_addr:#x} is {} bytes, requested {len}",
                buf.len()
            ));
        }
        Ok(buf.clone())
    }

    /// Frees a payload buffer after the decoder consumed it.
    pub fn release(&self, phys_addr: u64) -> bool {
        self.state.lock().buffers.remove(&phys_addr).is_some()
    }

    /// Descriptors waiting.
    pub fn pending(&self) -> usize {
        self.state.lock().ring.len()
    }

    /// Buffers currently held.
    pub fn buffers_held(&self) -> usize {
        self.state.lock().buffers.len()
    }

    /// Frames dropped because the descriptor ring was full.
    pub fn dropped(&self) -> u64 {
        self.state.lock().frames_dropped
    }

    /// (ok, bad, bytes) lifetime counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        let st = self.state.lock();
        (st.frames_ok, st.frames_bad, st.bytes_rx)
    }

    /// Wire timing pipe for the DES layer.
    pub fn wire_pipe(&self) -> SerialPipe {
        SerialPipe::new(self.spec.wire_bytes_per_sec, self.spec.packet_latency)
    }

    /// Modelled wire time of one frame of `bytes` on an idle link.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.spec.wire_bytes_per_sec)
            + self.spec.packet_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(id: u64, payload_len: usize) -> Vec<u8> {
        Frame {
            request_id: id,
            client_id: (id % 5) as u32,
            send_ts_nanos: id * 1000,
            payload: vec![id as u8; payload_len],
        }
        .encode()
    }

    #[test]
    fn deliver_poll_fetch_release() {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000);
        let d1 = nic.deliver(&frame(1, 100), 10).unwrap();
        let d2 = nic.deliver(&frame(2, 300), 20).unwrap();
        assert_ne!(d1.phys_addr, d2.phys_addr);
        assert_eq!(nic.pending(), 2);
        let p = nic.poll().unwrap();
        assert_eq!(p.request_id, 1);
        assert_eq!(p.arrival_nanos, 10);
        let bytes = nic.fetch(p.phys_addr, p.len).unwrap();
        assert_eq!(bytes, vec![1u8; 100]);
        assert!(nic.release(p.phys_addr));
        assert!(!nic.release(p.phys_addr), "double release");
        assert!(nic.fetch(p.phys_addr, p.len).is_err());
        assert_eq!(nic.buffers_held(), 1);
    }

    #[test]
    fn poll_batch_takes_up_to_n() {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0);
        for i in 0..5 {
            nic.deliver(&frame(i, 50), i).unwrap();
        }
        let batch = nic.poll_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].request_id, 0);
        assert_eq!(nic.pending(), 2);
        assert_eq!(nic.poll_batch(10).len(), 2);
        assert!(nic.poll_batch(1).is_empty());
    }

    #[test]
    fn bad_frames_counted_not_stored() {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0);
        assert!(nic.deliver(&[0xFF; 10], 0).is_err());
        let (ok, bad, _) = nic.counters();
        assert_eq!((ok, bad), (0, 1));
        assert_eq!(nic.pending(), 0);
    }

    #[test]
    fn wire_timing_40gbps() {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0);
        // 100 KB at 5 GB/s = 20 µs + 8 µs latency.
        let t = nic.wire_time(100_000);
        assert_eq!(t, SimTime::from_micros(20) + SimTime::from_micros(8));
        // Aggregate: 5 clients × 100 KB × 1200 req/s = 600 MB/s ≪ 5 GB/s —
        // the fabric is never the bottleneck in the paper's experiments.
        let offered = 5.0 * 100_000.0 * 1200.0;
        assert!(offered < nic.spec().wire_bytes_per_sec);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let nic = NicRx::with_ring_capacity(NicSpec::forty_gbps(), 0, 2);
        assert_eq!(nic.ring_capacity(), 2);
        nic.deliver(&frame(0, 10), 0).unwrap();
        nic.deliver(&frame(1, 10), 1).unwrap();
        let err = nic.deliver(&frame(2, 10), 2).unwrap_err();
        assert_eq!(err, RxError::RingFull { capacity: 2 });
        assert_eq!(nic.dropped(), 1);
        assert_eq!(nic.pending(), 2);
        // Dropped frames never store payload buffers.
        assert_eq!(nic.buffers_held(), 2);
        // Draining the ring makes room again.
        nic.poll().unwrap();
        nic.deliver(&frame(3, 10), 3).unwrap();
        assert_eq!(nic.dropped(), 1);
        let (ok, bad, _) = nic.counters();
        assert_eq!((ok, bad), (3, 0), "drops are neither ok nor bad frames");
    }

    #[test]
    fn telemetry_mirrors_drops_and_bad_frames() {
        use std::sync::Arc;
        let registry = Arc::new(dlb_telemetry::Registry::new());
        let nic = NicRx::with_ring_capacity(NicSpec::forty_gbps(), 0, 1).with_telemetry(&registry);
        nic.deliver(&frame(0, 10), 0).unwrap();
        assert!(nic.deliver(&frame(1, 10), 1).is_err());
        assert!(nic.deliver(&[0xFF; 4], 2).is_err());
        let snap = registry.snapshot();
        assert_eq!(snap.counter(dlb_telemetry::names::NET_RX_DROPS), 1);
        assert_eq!(snap.counter(dlb_telemetry::names::NET_FRAMES_BAD), 1);
    }

    #[test]
    fn chaos_corrupts_or_drops_frames_deterministically() {
        use dlb_chaos::{FaultPlan, Stage, StageSpec};
        let run = |seed: u64| -> Vec<u8> {
            let t = dlb_telemetry::Telemetry::with_defaults();
            let mut plan = FaultPlan::disabled();
            plan.seed = seed;
            plan.net = StageSpec::rate(0.5);
            let nic = NicRx::new(NicSpec::forty_gbps(), 0)
                .with_chaos(plan.injector(Stage::Net, &t).unwrap());
            let mut outcomes = Vec::new();
            for i in 0..60u64 {
                outcomes.push(match nic.deliver(&frame(i, 32), i) {
                    Ok(d) => {
                        // Delivered payload is either intact or a
                        // corrupted copy — never a lost buffer.
                        assert_eq!(nic.fetch(d.phys_addr, d.len).unwrap().len(), 32);
                        0u8
                    }
                    Err(RxError::Frame(_)) => 1,
                    Err(RxError::RingFull { .. }) => 2,
                });
            }
            let (ok, bad, _) = nic.counters();
            assert_eq!(ok + bad + nic.dropped(), 60, "every frame accounted");
            assert_eq!(
                t.registry.snapshot().counter("chaos.injected.net"),
                t.registry.snapshot().counter("chaos.faults_total")
            );
            outcomes
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same frame sequence → same faults");
        assert!(a.iter().any(|&o| o != 0), "a 50% rate must inject");
        assert!(a.iter().any(|&o| o == 0), "a 50% rate must pass frames");
    }

    #[test]
    fn fetch_validates_length() {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0);
        let d = nic.deliver(&frame(9, 64), 0).unwrap();
        assert!(nic.fetch(d.phys_addr, 63).is_err());
        assert!(nic.fetch(d.phys_addr, 64).is_ok());
    }
}

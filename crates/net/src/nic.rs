//! NIC RX engine: 40 Gbps wire model + host-memory payload placement.

use crate::framing::{Frame, FrameError};
use dlb_simcore::queueing::SerialPipe;
use dlb_simcore::SimTime;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Static NIC characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct NicSpec {
    /// Marketing name.
    pub name: String,
    /// Wire bandwidth, bytes/second.
    pub wire_bytes_per_sec: f64,
    /// Fixed per-packet latency (fabric + NIC processing).
    pub packet_latency: SimTime,
}

impl NicSpec {
    /// The paper's 40 Gbps fabric.
    pub fn forty_gbps() -> Self {
        Self {
            name: "40Gbps fabric".into(),
            wire_bytes_per_sec: 40.0e9 / 8.0,
            packet_latency: SimTime::from_micros(8),
        }
    }
}

/// Descriptor the NIC posts after depositing one request's payload in host
/// memory — the metadata `DataCollector::load_from_net` translates into
/// decode cmds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxDescriptor {
    /// Request id from the frame.
    pub request_id: u64,
    /// Originating client.
    pub client_id: u32,
    /// Simulated physical address of the payload.
    pub phys_addr: u64,
    /// Payload length.
    pub len: u32,
    /// Arrival timestamp (set by the caller's clock domain; wall-clock nanos
    /// in the functional pipeline, virtual nanos in the DES).
    pub arrival_nanos: u64,
}

/// The functional RX engine: parses frames, stores payloads at fresh
/// simulated physical addresses, posts descriptors to an RX ring, and serves
/// fetches (the resolver side).
#[derive(Debug)]
pub struct NicRx {
    spec: NicSpec,
    state: Mutex<RxState>,
}

#[derive(Debug)]
struct RxState {
    buffers: HashMap<u64, Vec<u8>>,
    ring: VecDeque<RxDescriptor>,
    next_phys: u64,
    frames_ok: u64,
    frames_bad: u64,
    bytes_rx: u64,
}

impl NicRx {
    /// A fresh RX engine whose buffer region starts at `phys_base`.
    pub fn new(spec: NicSpec, phys_base: u64) -> Self {
        Self {
            spec,
            state: Mutex::new(RxState {
                buffers: HashMap::new(),
                ring: VecDeque::new(),
                next_phys: phys_base,
                frames_ok: 0,
                frames_bad: 0,
                bytes_rx: 0,
            }),
        }
    }

    /// NIC characteristics.
    pub fn spec(&self) -> &NicSpec {
        &self.spec
    }

    /// Delivers raw wire bytes (one frame). On success the payload is
    /// placed in a fresh buffer and a descriptor is queued.
    pub fn deliver(&self, wire_bytes: &[u8], arrival_nanos: u64) -> Result<RxDescriptor, FrameError> {
        let frame = match Frame::decode(wire_bytes) {
            Ok(f) => f,
            Err(e) => {
                self.state.lock().frames_bad += 1;
                return Err(e);
            }
        };
        let mut st = self.state.lock();
        let phys_addr = st.next_phys;
        // 256-byte aligned buffer slots.
        st.next_phys += (frame.payload.len() as u64).div_ceil(256) * 256;
        let desc = RxDescriptor {
            request_id: frame.request_id,
            client_id: frame.client_id,
            phys_addr,
            len: frame.payload.len() as u32,
            arrival_nanos,
        };
        st.bytes_rx += wire_bytes.len() as u64;
        st.frames_ok += 1;
        st.buffers.insert(phys_addr, frame.payload);
        st.ring.push_back(desc.clone());
        Ok(desc)
    }

    /// Pops the next RX descriptor, if any.
    pub fn poll(&self) -> Option<RxDescriptor> {
        self.state.lock().ring.pop_front()
    }

    /// Pops up to `n` descriptors (batch assembly).
    pub fn poll_batch(&self, n: usize) -> Vec<RxDescriptor> {
        let mut st = self.state.lock();
        let take = n.min(st.ring.len());
        st.ring.drain(..take).collect()
    }

    /// Reads a deposited payload (the DataReader's "DMA from DRAM").
    pub fn fetch(&self, phys_addr: u64, len: u32) -> Result<Vec<u8>, String> {
        let st = self.state.lock();
        let buf = st
            .buffers
            .get(&phys_addr)
            .ok_or_else(|| format!("no RX buffer at {phys_addr:#x}"))?;
        if buf.len() != len as usize {
            return Err(format!(
                "RX buffer at {phys_addr:#x} is {} bytes, requested {len}",
                buf.len()
            ));
        }
        Ok(buf.clone())
    }

    /// Frees a payload buffer after the decoder consumed it.
    pub fn release(&self, phys_addr: u64) -> bool {
        self.state.lock().buffers.remove(&phys_addr).is_some()
    }

    /// Descriptors waiting.
    pub fn pending(&self) -> usize {
        self.state.lock().ring.len()
    }

    /// Buffers currently held.
    pub fn buffers_held(&self) -> usize {
        self.state.lock().buffers.len()
    }

    /// (ok, bad, bytes) lifetime counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        let st = self.state.lock();
        (st.frames_ok, st.frames_bad, st.bytes_rx)
    }

    /// Wire timing pipe for the DES layer.
    pub fn wire_pipe(&self) -> SerialPipe {
        SerialPipe::new(self.spec.wire_bytes_per_sec, self.spec.packet_latency)
    }

    /// Modelled wire time of one frame of `bytes` on an idle link.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.spec.wire_bytes_per_sec)
            + self.spec.packet_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(id: u64, payload_len: usize) -> Vec<u8> {
        Frame {
            request_id: id,
            client_id: (id % 5) as u32,
            send_ts_nanos: id * 1000,
            payload: vec![id as u8; payload_len],
        }
        .encode()
    }

    #[test]
    fn deliver_poll_fetch_release() {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000);
        let d1 = nic.deliver(&frame(1, 100), 10).unwrap();
        let d2 = nic.deliver(&frame(2, 300), 20).unwrap();
        assert_ne!(d1.phys_addr, d2.phys_addr);
        assert_eq!(nic.pending(), 2);
        let p = nic.poll().unwrap();
        assert_eq!(p.request_id, 1);
        assert_eq!(p.arrival_nanos, 10);
        let bytes = nic.fetch(p.phys_addr, p.len).unwrap();
        assert_eq!(bytes, vec![1u8; 100]);
        assert!(nic.release(p.phys_addr));
        assert!(!nic.release(p.phys_addr), "double release");
        assert!(nic.fetch(p.phys_addr, p.len).is_err());
        assert_eq!(nic.buffers_held(), 1);
    }

    #[test]
    fn poll_batch_takes_up_to_n() {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0);
        for i in 0..5 {
            nic.deliver(&frame(i, 50), i).unwrap();
        }
        let batch = nic.poll_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].request_id, 0);
        assert_eq!(nic.pending(), 2);
        assert_eq!(nic.poll_batch(10).len(), 2);
        assert!(nic.poll_batch(1).is_empty());
    }

    #[test]
    fn bad_frames_counted_not_stored() {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0);
        assert!(nic.deliver(&[0xFF; 10], 0).is_err());
        let (ok, bad, _) = nic.counters();
        assert_eq!((ok, bad), (0, 1));
        assert_eq!(nic.pending(), 0);
    }

    #[test]
    fn wire_timing_40gbps() {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0);
        // 100 KB at 5 GB/s = 20 µs + 8 µs latency.
        let t = nic.wire_time(100_000);
        assert_eq!(t, SimTime::from_micros(20) + SimTime::from_micros(8));
        // Aggregate: 5 clients × 100 KB × 1200 req/s = 600 MB/s ≪ 5 GB/s —
        // the fabric is never the bottleneck in the paper's experiments.
        let offered = 5.0 * 100_000.0 * 1200.0;
        assert!(offered < nic.spec().wire_bytes_per_sec);
    }

    #[test]
    fn fetch_validates_length() {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0);
        let d = nic.deliver(&frame(9, 64), 0).unwrap();
        assert!(nic.fetch(d.phys_addr, 63).is_err());
        assert!(nic.fetch(d.phys_addr, 64).is_ok());
    }
}

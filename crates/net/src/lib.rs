//! # dlb-net
//!
//! Network substrate for the online-inference workflow (paper §5.3): five
//! clients send JPEG images over a 40 Gbps fabric; the NIC deposits payloads
//! into host memory where the FPGA's DataReader fetches them ("DMA from
//! DRAM", Fig. 4), and response latency is measured from arrival at the
//! inference system to prediction.
//!
//! ## Substitution note
//!
//! No real fabric exists here. [`framing`] defines a real wire format that
//! is actually encoded/parsed; [`nic`] is a functional RX engine placing
//! payloads at simulated physical addresses plus a 40 Gbps timing model;
//! [`client`] generates deterministic request streams (exponential
//! inter-arrival, synthetic JPEG payloads) so both the functional pipeline
//! and the DES see the same offered load.

pub mod client;
pub mod framing;
pub mod nic;

pub use client::{ClientPool, Request};
pub use framing::{Frame, FrameError, FRAME_HEADER_LEN};
pub use nic::{NicRx, NicSpec, RxDescriptor, RxError, DEFAULT_RX_RING_CAPACITY};

//! Wire framing for inference requests.
//!
//! A minimal length-prefixed format: fixed header + JPEG payload. Both the
//! client generators and the NIC RX path really encode/parse these bytes.

/// Frame header length in bytes.
pub const FRAME_HEADER_LEN: usize = 28;

const MAGIC: u32 = 0xD1B0_057E;

/// Framing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer shorter than a header.
    Truncated,
    /// Magic mismatch (not one of our frames).
    BadMagic {
        /// What was found.
        got: u32,
    },
    /// Declared payload length disagrees with the buffer.
    LengthMismatch {
        /// Declared payload bytes.
        declared: u32,
        /// Bytes actually present.
        present: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic { got } => write!(f, "bad frame magic {got:#x}"),
            FrameError::LengthMismatch { declared, present } => {
                write!(f, "payload length {declared} declared, {present} present")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// One request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Globally unique request id.
    pub request_id: u64,
    /// Which client sent it.
    pub client_id: u32,
    /// Client-side send timestamp (nanoseconds; opaque to the server, echoed
    /// in responses).
    pub send_ts_nanos: u64,
    /// JPEG payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Serialises header + payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&self.client_id.to_le_bytes());
        out.extend_from_slice(&self.send_ts_nanos.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a complete frame from `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(FrameError::BadMagic { got: magic });
        }
        let request_id = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
        let client_id = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let send_ts_nanos = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let declared = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        let present = bytes.len() - FRAME_HEADER_LEN;
        if declared as usize != present {
            return Err(FrameError::LengthMismatch { declared, present });
        }
        Ok(Frame {
            request_id,
            client_id,
            send_ts_nanos,
            payload: bytes[FRAME_HEADER_LEN..].to_vec(),
        })
    }

    /// Total wire bytes of this frame.
    pub fn wire_len(&self) -> usize {
        FRAME_HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = Frame {
            request_id: 42,
            client_id: 3,
            send_ts_nanos: 123_456_789,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.wire_len());
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Frame::decode(&[1, 2, 3]), Err(FrameError::Truncated));
        let mut bytes = Frame {
            request_id: 1,
            client_id: 1,
            send_ts_nanos: 0,
            payload: vec![7; 10],
        }
        .encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        let mut bytes = Frame {
            request_id: 1,
            client_id: 1,
            send_ts_nanos: 0,
            payload: vec![7; 10],
        }
        .encode();
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn empty_payload_is_legal() {
        let f = Frame {
            request_id: 0,
            client_id: 0,
            send_ts_nanos: 0,
            payload: vec![],
        };
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }
}

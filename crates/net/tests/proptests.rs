//! Property tests: wire-framing integrity and NIC RX bookkeeping.

use dlb_net::{Frame, FrameError, NicRx, NicSpec, RxError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frame_roundtrips(
        request_id in any::<u64>(),
        client_id in any::<u32>(),
        ts in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let f = Frame { request_id, client_id, send_ts_nanos: ts, payload };
        let bytes = f.encode();
        prop_assert_eq!(bytes.len(), f.wire_len());
        prop_assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn truncation_never_panics(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        cut in any::<proptest::sample::Index>(),
    ) {
        let f = Frame { request_id: 1, client_id: 2, send_ts_nanos: 3, payload };
        let bytes = f.encode();
        let cut = cut.index(bytes.len());
        let r = Frame::decode(&bytes[..cut]);
        if cut < bytes.len() {
            prop_assert!(r.is_err());
        }
        let well_formed_error = matches!(
            r,
            Ok(_) | Err(FrameError::Truncated)
                | Err(FrameError::LengthMismatch { .. })
                | Err(FrameError::BadMagic { .. })
        );
        prop_assert!(well_formed_error);
    }

    #[test]
    fn corrupted_magic_is_rejected(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        byte in 0usize..4,
        flip in 1u8..=255,
    ) {
        let f = Frame { request_id: 7, client_id: 1, send_ts_nanos: 9, payload };
        let mut bytes = f.encode();
        bytes[byte] ^= flip;
        let bad_magic = matches!(Frame::decode(&bytes), Err(FrameError::BadMagic { .. }));
        prop_assert!(bad_magic);
    }

    #[test]
    fn length_field_mismatch_is_rejected(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        delta in prop::sample::select(vec![-3i64, -2, -1, 1, 2, 3, 1000]),
    ) {
        let real_len = payload.len() as i64;
        let declared = real_len + delta;
        prop_assume!(declared >= 0);
        let f = Frame { request_id: 7, client_id: 1, send_ts_nanos: 9, payload };
        let mut bytes = f.encode();
        bytes[24..28].copy_from_slice(&(declared as u32).to_le_bytes());
        let r = Frame::decode(&bytes);
        prop_assert_eq!(
            r,
            Err(FrameError::LengthMismatch {
                declared: declared as u32,
                present: real_len as usize,
            })
        );
    }

    #[test]
    fn bounded_ring_conserves_frames(
        capacity in 1usize..32,
        bursts in prop::collection::vec(1usize..12, 1..20),
    ) {
        // Alternating burst-deliver / drain-one cycles: every delivered
        // frame is either pollable or counted as dropped, never lost.
        let nic = NicRx::with_ring_capacity(NicSpec::forty_gbps(), 0, capacity);
        let mut delivered = 0u64;
        let mut polled = 0u64;
        let mut id = 0u64;
        for burst in bursts {
            for _ in 0..burst {
                let f = Frame {
                    request_id: id,
                    client_id: 0,
                    send_ts_nanos: 0,
                    payload: vec![0u8; 16],
                };
                id += 1;
                delivered += 1;
                match nic.deliver(&f.encode(), id) {
                    Ok(_) => {}
                    Err(RxError::RingFull { capacity: c }) => prop_assert_eq!(c, capacity),
                    Err(e) => prop_assert!(false, "unexpected deliver error: {}", e),
                }
                prop_assert!(nic.pending() <= capacity, "ring exceeded its bound");
            }
            if nic.poll().is_some() {
                polled += 1;
            }
        }
        polled += nic.poll_batch(usize::MAX).len() as u64;
        prop_assert_eq!(polled + nic.dropped(), delivered);
        // Only ring-resident frames hold payload buffers.
        prop_assert_eq!(nic.buffers_held() as u64, polled);
    }

    #[test]
    fn nic_descriptors_are_disjoint_and_fetchable(
        sizes in prop::collection::vec(1usize..2048, 1..40)
    ) {
        let nic = NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000);
        let mut descs = Vec::new();
        for (i, len) in sizes.iter().enumerate() {
            let f = Frame {
                request_id: i as u64,
                client_id: 0,
                send_ts_nanos: 0,
                payload: vec![i as u8; *len],
            };
            descs.push(nic.deliver(&f.encode(), i as u64).unwrap());
        }
        // Buffer ranges never overlap.
        let mut ranges: Vec<(u64, u64)> = descs
            .iter()
            .map(|d| (d.phys_addr, d.phys_addr + d.len as u64))
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping RX buffers {:?}", w);
        }
        // Every payload fetches back intact; release exactly once.
        for (i, d) in descs.iter().enumerate() {
            let got = nic.fetch(d.phys_addr, d.len).unwrap();
            prop_assert_eq!(got, vec![i as u8; sizes[i]]);
            prop_assert!(nic.release(d.phys_addr));
            prop_assert!(!nic.release(d.phys_addr));
        }
        prop_assert_eq!(nic.buffers_held(), 0);
    }
}

//! `dlb-chaos` — a deterministic chaos/fault plane for the DLBooster
//! pipeline.
//!
//! Every stage boundary in the reproduction (storage reads, NIC frame
//! delivery, FPGA decode lanes, the HugePage batch pool, GPU copy slots)
//! can ask a [`StageInjector`] whether a *seeded, schedulable* fault should
//! fire for a given operation. Decisions are pure functions of
//! `(plan seed, stage salt, operation identity)` — **not** of wall-clock
//! time or thread interleaving — so a run under a given [`FaultPlan`] seed
//! injects the same fault set on replay, which is what lets the soak tests
//! assert determinism.
//!
//! The crate also carries the pipeline's recovery policy:
//!
//! * [`retry`] — bounded retry with exponential backoff + deterministic
//!   jitter for transient stage errors (storage fetches, NIC delivery),
//!   with `retry.*` telemetry counters.
//! * [`CancelToken`] — a cooperative cancellation handle threaded through
//!   every injected delay/stall so a wedged stage can be released promptly
//!   at shutdown or failover time (no un-interruptible sleeps anywhere in
//!   the fault plane).
//!
//! Fault *kinds* are generic ([`FaultKind`]); each stage interprets the
//! subset that makes sense at its boundary (the storage plane maps
//! `Error`→failed read and `Delay`→slow read; the FPGA plane maps
//! `Delay`→lane stall and `Poison`→corrupted segment; …).

use dlb_telemetry::{names, Counter, Telemetry};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub mod retry;

pub use retry::{Retrier, RetryPolicy};

/// SplitMix64 — the repo's standard seeded generator (also used by
/// `DataCollector::reshuffle`). Pure function: good for identity-keyed
/// fault decisions.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pipeline stages a fault plan can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// NVMe reads (`dlb-storage`): read errors and slow reads.
    Storage,
    /// NIC RX (`dlb-net`): frame corruption and forced ring overflow.
    Net,
    /// FPGA decode lanes (`dlb-fpga`): stalls and poisoned segments.
    Fpga,
    /// Batch memory pool (`dlb-membridge`): lease denial and delayed
    /// recycling.
    Pool,
    /// GPU copy slots (`dlb-gpu`): slot failures and slow copies.
    Gpu,
}

impl Stage {
    /// Per-stage salt mixed into the decision hash so the same identity
    /// draws independent faults at different stages.
    fn salt(self) -> u64 {
        match self {
            Stage::Storage => 0x5354_4F52_4147_4501,
            Stage::Net => 0x4E45_5457_4F52_4B02,
            Stage::Fpga => 0x4650_4741_4650_4103,
            Stage::Pool => 0x504F_4F4C_504F_4F04,
            Stage::Gpu => 0x4750_5547_5055_4705,
        }
    }

    /// Canonical `chaos.injected.<stage>` counter name.
    pub fn counter_name(self) -> &'static str {
        match self {
            Stage::Storage => names::CHAOS_INJECTED_STORAGE,
            Stage::Net => names::CHAOS_INJECTED_NET,
            Stage::Fpga => names::CHAOS_INJECTED_FPGA,
            Stage::Pool => names::CHAOS_INJECTED_POOL,
            Stage::Gpu => names::CHAOS_INJECTED_GPU,
        }
    }

    /// All stages, for iteration in plans/tests.
    pub const ALL: [Stage; 5] = [
        Stage::Storage,
        Stage::Net,
        Stage::Fpga,
        Stage::Pool,
        Stage::Gpu,
    ];
}

/// What a fired fault should do. Stages interpret the subset relevant to
/// their boundary and treat the rest as [`FaultKind::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation with a typed, recoverable error.
    Error,
    /// Delay the operation (slow read, delayed recycle, slow copy slot,
    /// FPGA lane stall). Always serviced through [`CancelToken::sleep`].
    Delay(Duration),
    /// Corrupt payload bytes before they are parsed (NIC frames).
    Corrupt,
    /// Force a capacity rejection (NIC ring overflow, pool lease denial).
    Overflow,
    /// Poison the decoded output (FPGA segment corruption → decode error).
    Poison,
}

/// Per-stage fault schedule: a rate, a burst length and the delay used by
/// latency-flavoured faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpec {
    /// Probability in `[0, 1]` that a given operation identity draws a
    /// fault. `0.0` disables the stage entirely (near-zero overhead).
    pub rate: f64,
    /// When a fault fires, the next `burst - 1` decisions at this stage
    /// also fire (models correlated failures, e.g. a flapping link).
    pub burst: u32,
    /// Duration used by `Delay`-flavoured faults at this stage.
    pub delay: Duration,
}

impl StageSpec {
    /// A disabled stage.
    pub const fn off() -> Self {
        StageSpec {
            rate: 0.0,
            burst: 1,
            delay: Duration::from_millis(0),
        }
    }

    /// A stage firing at `rate` with single-shot faults and a small delay.
    pub fn rate(rate: f64) -> Self {
        StageSpec {
            rate,
            burst: 1,
            delay: Duration::from_millis(2),
        }
    }

    /// Builder: correlated bursts of `n` consecutive faults.
    pub fn with_burst(mut self, n: u32) -> Self {
        self.burst = n.max(1);
        self
    }

    /// Builder: delay for latency-flavoured faults.
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    fn enabled(&self) -> bool {
        self.rate > 0.0
    }
}

/// Cooperative cancellation shared by every injected delay and every
/// retry backoff. Cancelling releases all in-flight chaos sleeps within
/// one polling slice (2 ms), so shutdown and failover never wait out a
/// stall.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signal cancellation; all current and future [`CancelToken::sleep`]
    /// calls return promptly.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Sleep for `dur`, waking early if cancelled. Returns `true` if the
    /// full duration elapsed, `false` if interrupted.
    pub fn sleep(&self, dur: Duration) -> bool {
        const SLICE: Duration = Duration::from_millis(2);
        let mut left = dur;
        while left > Duration::ZERO {
            if self.is_cancelled() {
                return false;
            }
            let step = left.min(SLICE);
            std::thread::sleep(step);
            left = left.saturating_sub(step);
        }
        !self.is_cancelled()
    }
}

/// A seeded, schedulable fault plan covering every stage boundary.
///
/// The plan itself is plain data; stages receive [`StageInjector`] handles
/// built by [`FaultPlan::injector`], which pair the schedule with the
/// shared telemetry counters and cancellation token.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed; every stage derives its own decision stream from it.
    pub seed: u64,
    /// Storage read faults.
    pub storage: StageSpec,
    /// NIC RX faults.
    pub net: StageSpec,
    /// FPGA decode faults.
    pub fpga: StageSpec,
    /// Pool lease/recycle faults.
    pub pool: StageSpec,
    /// GPU copy-slot faults.
    pub gpu: StageSpec,
    cancel: CancelToken,
}

impl FaultPlan {
    /// A plan with every stage disabled (hooks cost one branch).
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            storage: StageSpec::off(),
            net: StageSpec::off(),
            fpga: StageSpec::off(),
            pool: StageSpec::off(),
            gpu: StageSpec::off(),
            cancel: CancelToken::new(),
        }
    }

    /// Every stage firing at the same `rate` with single-shot faults —
    /// the acceptance-criteria configuration ("all fault planes active at
    /// 5% rates").
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            storage: StageSpec::rate(rate),
            net: StageSpec::rate(rate),
            fpga: StageSpec::rate(rate),
            pool: StageSpec::rate(rate),
            gpu: StageSpec::rate(rate),
            cancel: CancelToken::new(),
        }
    }

    /// Seed from the `DLB_CHAOS_SEED` environment variable, falling back
    /// to `default` when unset or unparsable. Lets CI run the same soak
    /// battery under a second seed without a code change.
    pub fn seed_from_env(default: u64) -> u64 {
        std::env::var("DLB_CHAOS_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(default)
    }

    /// The plan-wide cancellation token (shared by all injectors built
    /// from this plan — cloning the plan keeps sharing it).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    fn spec(&self, stage: Stage) -> StageSpec {
        match stage {
            Stage::Storage => self.storage,
            Stage::Net => self.net,
            Stage::Fpga => self.fpga,
            Stage::Pool => self.pool,
            Stage::Gpu => self.gpu,
        }
    }

    /// Build the injector handle a stage threads through its
    /// `*_with_telemetry` constructor. Returns `None` when the stage is
    /// disabled, so fault-free pipelines carry no chaos state at all.
    pub fn injector(&self, stage: Stage, telemetry: &Telemetry) -> Option<Arc<StageInjector>> {
        let spec = self.spec(stage);
        if !spec.enabled() {
            return None;
        }
        Some(Arc::new(StageInjector {
            stage,
            spec,
            seed: self.seed,
            burst_left: AtomicU32::new(0),
            injected: telemetry.registry.counter(stage.counter_name()),
            total: telemetry.registry.counter(names::CHAOS_FAULTS_TOTAL),
            cancel: self.cancel.clone(),
        }))
    }
}

/// A per-stage fault decision handle. Cheap to query (`decide` is one
/// hash + compare on the hot path), deterministic per
/// `(seed, stage, identity)`, thread-safe.
pub struct StageInjector {
    stage: Stage,
    spec: StageSpec,
    seed: u64,
    burst_left: AtomicU32,
    injected: Arc<Counter>,
    total: Arc<Counter>,
    cancel: CancelToken,
}

impl StageInjector {
    /// Should the operation identified by `identity` fault, and how?
    ///
    /// `identity` must be a stable per-operation key (disk offset, cmd id,
    /// frame index, lease ordinal…): replaying a seed over the same
    /// identity stream reproduces the same fault set. Burst continuation
    /// is the one intentionally stateful part (correlated failures).
    pub fn decide(&self, identity: u64) -> Option<FaultKind> {
        let fired = if self
            .burst_left
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
            .is_ok()
        {
            true
        } else {
            let h = splitmix64(
                self.seed ^ self.stage.salt() ^ identity.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
            if draw < self.spec.rate {
                if self.spec.burst > 1 {
                    self.burst_left
                        .store(self.spec.burst - 1, Ordering::Release);
                }
                true
            } else {
                false
            }
        };
        if !fired {
            return None;
        }
        self.injected.inc();
        self.total.inc();
        // Second, independent hash picks the flavour for this stage.
        let h2 = splitmix64(self.seed ^ self.stage.salt().rotate_left(17) ^ identity);
        Some(self.flavour(h2))
    }

    fn flavour(&self, h: u64) -> FaultKind {
        let latency = h & 1 == 0;
        match (self.stage, latency) {
            (Stage::Storage, true) => FaultKind::Delay(self.spec.delay),
            (Stage::Storage, false) => FaultKind::Error,
            (Stage::Net, true) => FaultKind::Corrupt,
            (Stage::Net, false) => FaultKind::Overflow,
            (Stage::Fpga, true) => FaultKind::Delay(self.spec.delay),
            (Stage::Fpga, false) => FaultKind::Poison,
            (Stage::Pool, true) => FaultKind::Delay(self.spec.delay),
            (Stage::Pool, false) => FaultKind::Overflow,
            (Stage::Gpu, true) => FaultKind::Delay(self.spec.delay),
            (Stage::Gpu, false) => FaultKind::Error,
        }
    }

    /// The stage this injector targets.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The configured delay for latency-flavoured faults at this stage.
    pub fn delay(&self) -> Duration {
        self.spec.delay
    }

    /// Cancel-aware sleep used by stages to service `Delay` faults.
    /// Returns `false` when interrupted by cancellation.
    pub fn sleep(&self, dur: Duration) -> bool {
        self.cancel.sleep(dur)
    }

    /// The shared cancellation token (e.g. for stages that run their own
    /// wait loops).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }
}

impl std::fmt::Debug for StageInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageInjector")
            .field("stage", &self.stage)
            .field("spec", &self.spec)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(rate: f64, seed: u64) -> Arc<StageInjector> {
        let mut plan = FaultPlan::disabled();
        plan.seed = seed;
        plan.storage = StageSpec::rate(rate);
        plan.injector(Stage::Storage, &Telemetry::with_defaults())
            .expect("enabled stage yields an injector")
    }

    #[test]
    fn disabled_stage_yields_no_injector() {
        let plan = FaultPlan::disabled();
        let t = Telemetry::with_defaults();
        for stage in Stage::ALL {
            assert!(plan.injector(stage, &t).is_none());
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_identity() {
        let a = injector(0.3, 42);
        let b = injector(0.3, 42);
        for id in 0..500u64 {
            assert_eq!(a.decide(id), b.decide(id), "identity {id} diverged");
        }
    }

    #[test]
    fn different_seeds_draw_different_fault_sets() {
        let a = injector(0.3, 1);
        let b = injector(0.3, 2);
        let set_a: Vec<bool> = (0..200).map(|id| a.decide(id).is_some()).collect();
        let set_b: Vec<bool> = (0..200).map(|id| b.decide(id).is_some()).collect();
        assert_ne!(set_a, set_b);
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let inj = injector(0.05, 7);
        let fired = (0..20_000u64)
            .filter(|&id| inj.decide(id).is_some())
            .count();
        let observed = fired as f64 / 20_000.0;
        assert!(
            (observed - 0.05).abs() < 0.01,
            "observed rate {observed} too far from 0.05"
        );
    }

    #[test]
    fn bursts_extend_a_fired_fault() {
        let mut plan = FaultPlan::disabled();
        plan.seed = 9;
        plan.storage = StageSpec::rate(0.02).with_burst(4);
        let inj = plan
            .injector(Stage::Storage, &Telemetry::with_defaults())
            .unwrap();
        // Find the first natural fire, then the next 3 decisions must
        // fire regardless of their own hash.
        let mut id = 0u64;
        while inj.decide(id).is_none() {
            id += 1;
            assert!(id < 10_000, "no fault fired at 2%");
        }
        for k in 1..4 {
            assert!(inj.decide(id + k).is_some(), "burst continuation {k}");
        }
    }

    #[test]
    fn injections_bump_stage_and_total_counters() {
        let t = Telemetry::with_defaults();
        let mut plan = FaultPlan::disabled();
        plan.net = StageSpec::rate(1.0);
        let inj = plan.injector(Stage::Net, &t).unwrap();
        for id in 0..10 {
            assert!(inj.decide(id).is_some());
        }
        let snap = t.registry.snapshot();
        assert_eq!(snap.counter(names::CHAOS_INJECTED_NET), 10);
        assert_eq!(snap.counter(names::CHAOS_FAULTS_TOTAL), 10);
    }

    #[test]
    fn cancel_interrupts_sleep() {
        let token = CancelToken::new();
        let t2 = token.clone();
        let start = std::time::Instant::now();
        let h = std::thread::spawn(move || t2.sleep(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        token.cancel();
        assert!(!h.join().unwrap(), "sleep must report interruption");
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn seed_from_env_falls_back_to_default() {
        // The variable is not set in unit-test context unless CI sets it;
        // accept either the env value or the default.
        let seed = FaultPlan::seed_from_env(1234);
        if std::env::var("DLB_CHAOS_SEED").is_err() {
            assert_eq!(seed, 1234);
        }
    }
}

//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Transient stage errors (a chaos-injected storage read error, a flaky
//! NIC delivery) should not kill a batch: the recovery policy is "retry a
//! few times, backing off exponentially with jitter, then surface a typed
//! error". Backoff sleeps go through the plan's [`CancelToken`] so a
//! retry loop never outlives shutdown, and every attempt/giveup/backoff
//! nanosecond is accounted under the `retry.*` telemetry names.

use crate::{splitmix64, CancelToken};
use dlb_telemetry::{names, Counter, Telemetry};
use std::sync::Arc;
use std::time::Duration;

/// Retry schedule: `max_attempts` tries total, sleeping
/// `base * factor^attempt` (capped at `max_delay`) between tries, with
/// ±`jitter` fractional deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Multiplier applied per retry.
    pub factor: f64,
    /// Upper bound on any single backoff.
    pub max_delay: Duration,
    /// Fractional jitter in `[0, 1]`: the backoff is scaled by a
    /// deterministic draw from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl RetryPolicy {
    /// The pipeline default for transient stage errors: 4 attempts,
    /// 1 ms → 2 ms → 4 ms backoff (±50% jitter), capped at 20 ms.
    pub fn transient() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(1),
            factor: 2.0,
            max_delay: Duration::from_millis(20),
            jitter: 0.5,
        }
    }

    /// A single attempt — retry disabled, error surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::ZERO,
            factor: 1.0,
            max_delay: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// The backoff before retry number `attempt` (0-based retry index)
    /// for operation `identity`. Deterministic: jitter is drawn from
    /// `splitmix64(identity, attempt)`, not from a global RNG.
    pub fn backoff(&self, attempt: u32, identity: u64) -> Duration {
        let exp = self.base.as_secs_f64() * self.factor.powi(attempt as i32);
        let capped = exp.min(self.max_delay.as_secs_f64());
        let h = splitmix64(identity ^ ((attempt as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let scale = 1.0 + self.jitter * (2.0 * unit - 1.0);
        Duration::from_secs_f64((capped * scale).max(0.0))
    }
}

/// A retry executor bound to a policy, the shared telemetry registry and
/// a cancellation token.
pub struct Retrier {
    policy: RetryPolicy,
    cancel: CancelToken,
    attempts: Arc<Counter>,
    retries: Arc<Counter>,
    giveups: Arc<Counter>,
    backoff_nanos: Arc<Counter>,
}

impl Retrier {
    /// Build a retrier recording into `telemetry` and interruptible via
    /// `cancel`.
    pub fn new(policy: RetryPolicy, telemetry: &Telemetry, cancel: CancelToken) -> Self {
        Retrier {
            policy,
            cancel,
            attempts: telemetry.registry.counter(names::RETRY_ATTEMPTS),
            retries: telemetry.registry.counter(names::RETRY_RETRIES),
            giveups: telemetry.registry.counter(names::RETRY_GIVEUPS),
            backoff_nanos: telemetry.registry.counter(names::RETRY_BACKOFF_NANOS),
        }
    }

    /// The policy this retrier runs.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Run `op` until it succeeds or attempts are exhausted. `op` receives
    /// the 0-based attempt number (so chaos injectors can key decisions on
    /// `(identity, attempt)` and let retries genuinely recover).
    ///
    /// Returns the last error on giveup. Cancellation cuts the backoff
    /// short but still performs the remaining attempts — the final
    /// attempt's result always surfaces.
    pub fn run<T, E>(
        &self,
        identity: u64,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let mut attempt = 0u32;
        loop {
            self.attempts.inc();
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt + 1 >= self.policy.max_attempts.max(1) || self.cancel.is_cancelled()
                    {
                        self.giveups.inc();
                        return Err(e);
                    }
                    let pause = self.policy.backoff(attempt, identity);
                    self.backoff_nanos.add(pause.as_nanos() as u64);
                    self.retries.inc();
                    self.cancel.sleep(pause);
                    attempt += 1;
                }
            }
        }
    }
}

impl std::fmt::Debug for Retrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Retrier")
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn retrier(policy: RetryPolicy) -> (Retrier, std::sync::Arc<Telemetry>) {
        let t = Telemetry::with_defaults();
        (Retrier::new(policy, &t, CancelToken::new()), t)
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let (r, t) = retrier(RetryPolicy::transient());
        let calls = AtomicU32::new(0);
        let out: Result<u32, &str> = r.run(77, |_| {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err("transient")
            } else {
                Ok(99)
            }
        });
        assert_eq!(out, Ok(99));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        let snap = t.registry.snapshot();
        assert_eq!(snap.counter(names::RETRY_ATTEMPTS), 3);
        assert_eq!(snap.counter(names::RETRY_RETRIES), 2);
        assert_eq!(snap.counter(names::RETRY_GIVEUPS), 0);
        assert!(snap.counter(names::RETRY_BACKOFF_NANOS) > 0);
    }

    #[test]
    fn gives_up_after_max_attempts_with_last_error() {
        let (r, t) = retrier(RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(10),
            factor: 2.0,
            max_delay: Duration::from_millis(1),
            jitter: 0.0,
        });
        let calls = AtomicU32::new(0);
        let out: Result<(), u32> = r.run(5, |a| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(a)
        });
        assert_eq!(out, Err(2), "last attempt's error surfaces");
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(t.registry.snapshot().counter(names::RETRY_GIVEUPS), 1);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(1),
            factor: 2.0,
            max_delay: Duration::from_millis(4),
            jitter: 0.0,
        };
        assert_eq!(p.backoff(0, 0), Duration::from_millis(1));
        assert_eq!(p.backoff(1, 0), Duration::from_millis(2));
        assert_eq!(p.backoff(2, 0), Duration::from_millis(4));
        assert_eq!(p.backoff(5, 0), Duration::from_millis(4), "capped");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            factor: 1.0,
            max_delay: Duration::from_millis(10),
            jitter: 0.5,
        };
        for id in 0..50u64 {
            let a = p.backoff(1, id);
            let b = p.backoff(1, id);
            assert_eq!(a, b, "same (attempt, identity) → same jitter");
            assert!(a >= Duration::from_millis(5) && a <= Duration::from_millis(15));
        }
        assert_ne!(p.backoff(1, 1), p.backoff(1, 2), "identities jitter apart");
    }

    #[test]
    fn policy_none_never_retries() {
        let (r, _t) = retrier(RetryPolicy::none());
        let calls = AtomicU32::new(0);
        let out: Result<(), &str> = r.run(0, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err("boom")
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }
}

//! Minimal offline drop-in for the `crossbeam` API surface used by this
//! workspace: `channel::{unbounded, Sender, Receiver}` with MPMC semantics
//! (both halves `Clone`; disconnect when either side fully drops).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing only when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.cv.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(5));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn mpmc_each_message_consumed_once() {
            let (tx, rx) = unbounded::<u32>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}

//! Offline mini benchmark harness with the `criterion` API surface this
//! workspace uses: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `Throughput`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Timing is a plain wall-clock mean over a handful of iterations —
//! adequate for the figure benches here, with no statistics machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the std hint (criterion's `black_box`).
pub use std::hint::black_box;

/// Declared work-per-iteration, used to print a throughput line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            full: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(full: String) -> Self {
        Self { full }
    }
}

/// Runs the closure under timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        run_one("", &id.into().full, sample_size, None, f);
    }
}

/// A group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into().full,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.full,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing already happened per-bench).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => println!(
            "bench {label}: {:.3} ms/iter, {:.0} elem/s",
            per_iter * 1e3,
            n as f64 / per_iter
        ),
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => println!(
            "bench {label}: {:.3} ms/iter, {:.1} MiB/s",
            per_iter * 1e3,
            n as f64 / per_iter / (1024.0 * 1024.0)
        ),
        _ => println!("bench {label}: {:.3} ms/iter", per_iter * 1e3),
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // 3 timed + 1 warm-up.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let data = vec![1u8, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", 3), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.finish();
    }
}

//! Offline drop-in for the `rayon` API surface used by this workspace —
//! `prelude::{into_par_iter, par_iter}` plus [`current_num_threads`] —
//! backed by a **real** work-stealing thread pool.
//!
//! Unlike the original sequential shim, `.par_iter().map(f).collect()`
//! now executes `f` on multiple OS threads:
//!
//! * items are materialised up front and split into chunks (≈4 chunks per
//!   worker so stealing has something to balance),
//! * each worker owns a LIFO deque of chunks and steals FIFO from its
//!   peers when its own deque runs dry (classic work-stealing: owners pop
//!   hot recent work, thieves take the oldest/biggest-remaining work),
//! * workers are spawned with [`std::thread::scope`], so closures may
//!   borrow from the caller's stack — no `'static` bound, no leaked
//!   threads, panics propagate on join,
//! * results carry their chunk's origin index, so collection is
//!   **deterministic**: output order always equals input order, and
//!   `Result` collection yields the error of the *earliest* failing item,
//!   exactly as a sequential left-to-right run would.
//!
//! The worker count comes from, in priority order: a programmatic
//! [`set_num_threads`] override, the `DLB_RAYON_THREADS` environment
//! variable, and the host's available parallelism. A value of `1` (or
//! workloads too small to split) falls back to inline sequential
//! execution — the determinism escape hatch used by tests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override (0 = unset). Set via
/// [`set_num_threads`]; read by [`current_num_threads`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Chunks per worker the item range is pre-split into. >1 so that a
/// worker finishing early finds whole chunks left to steal.
const CHUNKS_PER_WORKER: usize = 4;

/// Below this many items the spawn cost dominates: run inline.
const MIN_PARALLEL_ITEMS: usize = 2;

/// Overrides the pool's worker count for subsequent parallel calls.
/// `Some(1)` forces sequential execution; `None` restores the default
/// (env var, then available parallelism).
pub fn set_num_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Effective worker count: [`set_num_threads`] override, else the
/// `DLB_RAYON_THREADS` environment variable, else the host's available
/// parallelism. Always ≥ 1.
pub fn current_num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("DLB_RAYON_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// The work-stealing executor
// ---------------------------------------------------------------------------

/// A contiguous run of items, tagged with the index of its first item so
/// results can be re-assembled in input order.
struct Chunk<T> {
    start: usize,
    items: Vec<T>,
}

/// Maps `items` through `f` on the work-stealing pool, returning results
/// in input order. The parallel path is taken only when there are enough
/// items and more than one worker; otherwise runs inline.
pub fn map_ordered<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n < MIN_PARALLEL_ITEMS {
        return items.into_iter().map(f).collect();
    }

    // Pre-split into chunks and deal them round-robin onto per-worker
    // deques. Ownership of the items moves with the chunk.
    let chunk_len = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let queues: Vec<Mutex<VecDeque<Chunk<T>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    {
        let mut items = items;
        let mut start = 0usize;
        let mut w = 0usize;
        while !items.is_empty() {
            let take = chunk_len.min(items.len());
            let rest = items.split_off(take);
            queues[w % workers]
                .lock()
                .unwrap()
                .push_back(Chunk { start, items });
            start += take;
            items = rest;
            w += 1;
        }
    }

    let f = &f;
    let queues = &queues;
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let produced: Vec<Vec<(usize, Vec<R>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                scope.spawn(move || {
                    let mut done: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        // Own work first (LIFO: hottest chunk), then steal
                        // the oldest chunk from the most loaded peer. The
                        // own-queue pop is a standalone statement so its
                        // guard drops before any peer lock is taken —
                        // holding it across the steal scan deadlocks two
                        // workers stealing from each other.
                        let own = queues[me].lock().unwrap().pop_back();
                        let chunk = own.or_else(|| {
                            (0..queues.len())
                                .filter(|&v| v != me)
                                .max_by_key(|&v| queues[v].lock().unwrap().len())
                                .and_then(|v| queues[v].lock().unwrap().pop_front())
                        });
                        let Some(chunk) = chunk else { break };
                        let results: Vec<R> = chunk.items.into_iter().map(f).collect();
                        done.push((chunk.start, results));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    for (start, results) in produced.into_iter().flatten() {
        for (i, r) in results.into_iter().enumerate() {
            out[start + i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("work-stealing pool lost an item"))
        .collect()
}

// ---------------------------------------------------------------------------
// Parallel iterator facade
// ---------------------------------------------------------------------------

/// A parallel iterator: items materialised up front, with a mapping
/// pipeline composed lazily and executed on the pool at `collect` /
/// `for_each` time. Output order always matches input order.
pub struct ParIter<T, R, F: Fn(T) -> R> {
    items: Vec<T>,
    f: F,
    _marker: std::marker::PhantomData<fn() -> R>,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParIter<T, R, F> {
    /// Maps each item through `g` (composed with any earlier maps; the
    /// whole pipeline runs once per item on the pool).
    pub fn map<R2: Send, G: Fn(R) -> R2 + Sync>(
        self,
        g: G,
    ) -> ParIter<T, R2, impl Fn(T) -> R2 + Sync> {
        let f = self.f;
        ParIter {
            items: self.items,
            f: move |t| g(f(t)),
            _marker: std::marker::PhantomData,
        }
    }

    /// Executes the pipeline on the pool and collects into any
    /// `FromIterator` target (covers `Vec` and `Result<_, _>`
    /// short-circuit collection: the earliest item's error wins, matching
    /// a sequential run).
    pub fn collect<C: FromIterator<R>>(self) -> C {
        map_ordered(self.items, self.f).into_iter().collect()
    }

    /// Runs the pipeline on the pool for its side effects.
    pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
        let f = self.f;
        map_ordered(self.items, move |t| g(f(t)));
    }
}

/// `into_par_iter()` for any owned iterable (ranges, vectors, ...).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Converts into a [`ParIter`], materialising the items.
    fn into_par_iter(self) -> ParIter<Self::Item, Self::Item, fn(Self::Item) -> Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
            f: std::convert::identity,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` for any collection iterable by shared reference.
pub trait IntoParallelRefIterator<'data> {
    /// The item yielded by reference iteration.
    type Item: 'data;
    /// Borrows the collection as a [`ParIter`] over `&item`.
    #[allow(clippy::type_complexity)]
    fn par_iter(&'data self) -> ParIter<Self::Item, Self::Item, fn(Self::Item) -> Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;

    fn par_iter(&'data self) -> ParIter<Self::Item, Self::Item, fn(Self::Item) -> Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
            f: std::convert::identity,
            _marker: std::marker::PhantomData,
        }
    }
}

/// The rayon prelude: the traits that make `.par_iter()` /
/// `.into_par_iter()` resolve.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Serialises the tests that touch the global thread-count override
    /// (the harness runs tests concurrently in one process).
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let v: Vec<u64> = (0..10u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
    }

    #[test]
    fn large_range_is_ordered_and_complete() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v.len(), 10_000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
    }

    #[test]
    fn par_iter_collects_results() {
        let data = vec![1, 2, 3];
        let ok: Result<Vec<i32>, String> = data.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap(), vec![2, 3, 4]);
        let err: Result<Vec<i32>, String> = data
            .par_iter()
            .map(|&x| {
                if x == 2 {
                    Err("two".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn result_collection_yields_earliest_error() {
        // Sequential left-to-right semantics: the first (by index) failing
        // item's error is the one returned, regardless of which worker
        // finishes first.
        let data: Vec<usize> = (0..1000).collect();
        let err: Result<Vec<usize>, String> = data
            .par_iter()
            .map(|&x| {
                if x >= 500 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "bad 500");
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        if super::current_num_threads() < 2 {
            return; // single-core host: nothing to assert
        }
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..256usize).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Enough work that no single worker can drain every chunk
            // before the others start.
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected >1 worker thread to participate"
        );
    }

    #[test]
    fn sequential_fallback_override() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        super::set_num_threads(Some(1));
        let tid = std::thread::current().id();
        let tids: Vec<_> = (0..64usize)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        super::set_num_threads(None);
        assert!(tids.iter().all(|&t| t == tid), "override must run inline");
    }

    #[test]
    fn chained_maps_compose() {
        let v: Vec<String> = (0..5u32)
            .into_par_iter()
            .map(|x| x * 10)
            .map(|x| format!("v{x}"))
            .collect();
        assert_eq!(v, vec!["v0", "v10", "v20", "v30", "v40"]);
    }

    #[test]
    fn borrowed_state_is_visible_to_workers() {
        // Scoped spawn: closures borrow from the caller's stack.
        let counter = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn repeated_tiny_workloads_do_not_deadlock() {
        // Regression: the own-queue pop once held its lock across the
        // steal scan, so two workers with drained queues stealing from
        // each other deadlocked. Trivial per-item work maximises steal
        // contention; before the fix this hung within a few iterations.
        for round in 0..200usize {
            let v: Vec<usize> = (0..32usize).into_par_iter().map(|x| x + round).collect();
            assert_eq!(v.len(), 32);
            assert_eq!(v[0], round);
        }
    }
}

//! Minimal offline drop-in for the `rayon` API surface used by this
//! workspace: `prelude::{into_par_iter, par_iter}` plus
//! [`current_num_threads`]. Execution is sequential — call sites stay
//! deterministic and the dependency resolves without a network.

/// Reported worker count (the host's available parallelism; execution in
/// this shim is sequential regardless).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A "parallel" iterator: a thin wrapper over a sequential iterator that
/// supports the adapter subset call sites use (`map`, `collect`).
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Maps each item through `f`.
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Collects into any `FromIterator` target (covers `Vec` and
    /// `Result<_, _>` short-circuit collection).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Runs `f` on each item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f)
    }
}

/// `into_par_iter()` for any owned iterable (ranges, vectors, ...).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Converts into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` for any collection iterable by shared reference.
pub trait IntoParallelRefIterator<'data> {
    /// The underlying sequential iterator.
    type Iter: Iterator;
    /// Borrows the collection as a [`ParIter`].
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// The rayon prelude: the traits that make `.par_iter()` /
/// `.into_par_iter()` resolve.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let v: Vec<u64> = (0..10u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
    }

    #[test]
    fn par_iter_collects_results() {
        let data = vec![1, 2, 3];
        let ok: Result<Vec<i32>, String> = data.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap(), vec![2, 3, 4]);
        let err: Result<Vec<i32>, String> = data
            .par_iter()
            .map(|&x| {
                if x == 2 {
                    Err("two".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}

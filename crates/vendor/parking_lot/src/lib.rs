//! Minimal offline drop-in for the `parking_lot` API surface used by this
//! workspace: `Mutex`, `RwLock`, and `Condvar` with non-poisoning guards.
//!
//! Built on `std::sync`; poisoned locks are recovered (parking_lot has no
//! poisoning, so a panicked holder must not wedge every other thread).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual exclusion primitive (non-poisoning `lock()`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable working with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock (non-poisoning `read()`/`write()`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*shared;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}

//! Offline mini property-testing framework exposing the `proptest` API
//! surface this workspace uses: the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(N))]`, `Strategy` with
//! `prop_map`, integer/float range strategies, `any::<T>()`, tuple
//! strategies, `prop::collection::vec`, `prop::sample::{select, Index}`,
//! `Just`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: sampling is deterministic per
//! (test-name, case-index) with no shrinking — on failure the sampled
//! inputs are printed verbatim instead.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Runner plumbing: config, RNG, and the case-level error type.

    /// Run configuration (`cases` is the only knob this shim honors).
    ///
    /// Like upstream proptest, a `PROPTEST_CASES` environment variable
    /// overrides the case count from either constructor — CI pins it to
    /// bound property-test time without touching the sources.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases sampled per property.
        pub cases: u32,
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    impl Config {
        /// Config running `cases` cases per property (unless overridden by
        /// the `PROPTEST_CASES` environment variable).
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self::with_cases(64)
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs — skip, not a failure.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }

        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }

    /// Deterministic splitmix64 RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded with `seed`.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed derived from a test name and case index (FNV-1a over the
        /// name, mixed with the index).
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::new(h.wrapping_add(u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D)))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Uniform strategy over every value of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_f64() * 2.0 - 1.0) as f32 * 1.0e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_f64() * 2.0 - 1.0) * 1.0e12
    }
}

macro_rules! range_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u128 - self.start as u128;
                (self.start as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = *self.end() as u128 - *self.start() as u128 + 1;
                (*self.start() as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}

range_uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

range_int_strategy!(i8, i16, i32, i64, isize);

macro_rules! range_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                self.start() + (self.end() - self.start()) * rng.next_f64() as $t
            }
        }
    )*};
}

range_float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`select`, `Index`).

    use super::{Arbitrary, Strategy, TestRng};
    use std::fmt;

    /// Strategy choosing uniformly from a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options` (must be non-empty).
    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over no options");
        Select { options }
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }

    /// An arbitrary index, resolved against a concrete length with
    /// [`Index::index`].
    #[derive(Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this raw index uniformly into `0..len` (`len` must be > 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Self(rng.next_u64())
        }
    }

    impl fmt::Debug for Index {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Index({})", self.0)
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file needs.

    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, Strategy,
    };
}

/// Defines property tests. Each inner `fn name(args in strategies) { .. }`
/// becomes a `#[test]` that samples the strategies for the configured
/// number of cases; failing inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rejected: u32 = 0;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                let __vals = ($($crate::Strategy::sample(&($strat), &mut __rng),)*);
                let __repr = format!("{:#?}", __vals);
                let ($($arg,)*) = __vals;
                let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    },
                ));
                match __outcome {
                    Ok(Ok(())) => {}
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {
                        __rejected += 1;
                    }
                    Ok(Err($crate::test_runner::TestCaseError::Fail(__msg))) => {
                        panic!(
                            "property {} failed at case {}: {}\ninputs: {}",
                            stringify!($name),
                            __case,
                            __msg,
                            __repr
                        );
                    }
                    Err(__panic) => {
                        eprintln!(
                            "property {} panicked at case {}\ninputs: {}",
                            stringify!($name),
                            __case,
                            __repr
                        );
                        std::panic::resume_unwind(__panic);
                    }
                }
            }
            assert!(
                __rejected < __config.cases,
                "property {}: every case rejected by prop_assume!",
                stringify!($name)
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Asserts inside a `proptest!` body; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = (1u32..=u32::MAX).sample(&mut rng);
            assert!(v >= 1);
            let w = (0usize..66).sample(&mut rng);
            assert!(w < 66);
            let f = (-128f32..=127f32).sample(&mut rng);
            assert!((-128.0..=127.0).contains(&f));
            let s = (-50i32..50).sample(&mut rng);
            assert!((-50..50).contains(&s));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..200 {
            let v = prop::collection::vec(any::<u8>(), 4..16).sample(&mut rng);
            assert!((4..16).contains(&v.len()));
            let exact = prop::collection::vec(any::<u8>(), 8usize).sample(&mut rng);
            assert_eq!(exact.len(), 8);
        }
    }

    #[test]
    fn env_var_overrides_case_count() {
        // Set + read + restore quickly; the worst concurrent effect on
        // other tests in this binary is a different case count.
        std::env::set_var("PROPTEST_CASES", "7");
        let c = crate::test_runner::Config::with_cases(64);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(c.cases, 7);
        assert_eq!(crate::test_runner::Config::with_cases(64).cases, 64);
    }

    #[test]
    fn determinism_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("t", 5);
        let mut b = crate::test_runner::TestRng::for_case("t", 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 6);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_samples_and_asserts(
            x in 0u64..1000,
            (lo, hi) in (0u32..100, 100u32..200),
            v in prop::collection::vec(any::<bool>(), 1..10),
        ) {
            prop_assume!(x != 999);
            prop_assert!(x < 1000);
            prop_assert!(lo < hi);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(hi, lo);
        }

        #[test]
        fn mapped_strategy_applies(y in (0u8..10).prop_map(|v| v * 2)) {
            prop_assert!(y < 20);
            prop_assert_eq!(y % 2, 0);
        }
    }
}

//! Quantization tables and quality scaling (T.81 Annex K, libjpeg-style
//! quality mapping).

use crate::dct::BLOCK_LEN;
use crate::error::{CodecError, CodecResult};

/// T.81 Annex K.1 luminance quantization table, raster order.
pub const STD_LUMA_QTABLE: [u16; BLOCK_LEN] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// T.81 Annex K.2 chrominance quantization table, raster order.
pub const STD_CHROMA_QTABLE: [u16; BLOCK_LEN] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// A quantization table with a validated, non-zero entry set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantTable {
    values: [u16; BLOCK_LEN],
}

impl QuantTable {
    /// Builds a table, rejecting zero entries (division by the entry must be
    /// defined) and entries beyond the 8-bit-precision JPEG limit of 255
    /// (we restrict to baseline 8-bit tables).
    pub fn new(values: [u16; BLOCK_LEN]) -> CodecResult<Self> {
        for (i, &v) in values.iter().enumerate() {
            if v == 0 || v > 255 {
                return Err(CodecError::InvalidArgument {
                    detail: format!("quant table entry {i} = {v} out of [1, 255]"),
                });
            }
        }
        Ok(Self { values })
    }

    /// Standard table scaled to a libjpeg-style quality in `[1, 100]`.
    ///
    /// `quality = 50` yields the Annex K table; higher is finer.
    pub fn standard(base: &[u16; BLOCK_LEN], quality: u8) -> CodecResult<Self> {
        if quality == 0 || quality > 100 {
            return Err(CodecError::InvalidArgument {
                detail: format!("quality {quality} out of [1, 100]"),
            });
        }
        let scale: u32 = if quality < 50 {
            5000 / quality as u32
        } else {
            200 - 2 * quality as u32
        };
        let mut values = [0u16; BLOCK_LEN];
        for (dst, &src) in values.iter_mut().zip(base.iter()) {
            let v = (src as u32 * scale + 50) / 100;
            *dst = v.clamp(1, 255) as u16;
        }
        Self::new(values)
    }

    /// Luminance table at the given quality.
    pub fn luma(quality: u8) -> CodecResult<Self> {
        Self::standard(&STD_LUMA_QTABLE, quality)
    }

    /// Chrominance table at the given quality.
    pub fn chroma(quality: u8) -> CodecResult<Self> {
        Self::standard(&STD_CHROMA_QTABLE, quality)
    }

    /// Raw raster-order entries.
    #[inline]
    pub fn values(&self) -> &[u16; BLOCK_LEN] {
        &self.values
    }

    /// Quantize one raster-order coefficient block to integers.
    pub fn quantize(&self, coeffs: &[f32; BLOCK_LEN], out: &mut [i16; BLOCK_LEN]) {
        for ((o, &c), &q) in out.iter_mut().zip(coeffs.iter()).zip(self.values.iter()) {
            *o = (c / q as f32).round() as i16;
        }
    }

    /// Dequantisation multipliers with the AAN iDCT scale factors folded
    /// in, for [`crate::dct::idct_8x8_dequant`]. Computed once per scan,
    /// amortised over every block that uses this table.
    pub fn idct_scale(&self) -> [f32; BLOCK_LEN] {
        crate::dct::idct_scale_factors(&self.values)
    }

    /// Dequantize one raster-order integer block back to coefficients.
    pub fn dequantize(&self, quantized: &[i16; BLOCK_LEN], out: &mut [f32; BLOCK_LEN]) {
        for ((o, &v), &q) in out.iter_mut().zip(quantized.iter()).zip(self.values.iter()) {
            *o = v as f32 * q as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_50_is_base_table() {
        let t = QuantTable::luma(50).unwrap();
        assert_eq!(t.values(), &STD_LUMA_QTABLE);
    }

    #[test]
    fn quality_100_is_all_ones_mostly() {
        let t = QuantTable::luma(100).unwrap();
        // scale = 0 → every entry clamps to 1.
        assert!(t.values().iter().all(|&v| v == 1));
    }

    #[test]
    fn lower_quality_is_coarser() {
        let q25 = QuantTable::luma(25).unwrap();
        let q75 = QuantTable::luma(75).unwrap();
        for i in 0..BLOCK_LEN {
            assert!(q25.values()[i] >= q75.values()[i], "entry {i}");
        }
    }

    #[test]
    fn invalid_quality_rejected() {
        assert!(QuantTable::luma(0).is_err());
        assert!(QuantTable::standard(&STD_LUMA_QTABLE, 101).is_err());
    }

    #[test]
    fn zero_entry_rejected() {
        let mut vals = STD_LUMA_QTABLE;
        vals[5] = 0;
        assert!(QuantTable::new(vals).is_err());
        let mut big = STD_LUMA_QTABLE;
        big[0] = 256;
        assert!(QuantTable::new(big).is_err());
    }

    #[test]
    fn quantize_dequantize_bounds_error() {
        let t = QuantTable::luma(50).unwrap();
        let mut coeffs = [0f32; BLOCK_LEN];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as f32 - 32.0) * 13.5;
        }
        let mut q = [0i16; BLOCK_LEN];
        let mut back = [0f32; BLOCK_LEN];
        t.quantize(&coeffs, &mut q);
        t.dequantize(&q, &mut back);
        for i in 0..BLOCK_LEN {
            let err = (coeffs[i] - back[i]).abs();
            // Round-off error is bounded by half the quantization step.
            assert!(
                err <= t.values()[i] as f32 / 2.0 + 1e-3,
                "entry {i}: err {err} > step/2 {}",
                t.values()[i]
            );
        }
    }

    #[test]
    fn chroma_table_valid_at_all_qualities() {
        for q in 1..=100u8 {
            let t = QuantTable::chroma(q).unwrap();
            assert!(t.values().iter().all(|&v| (1..=255).contains(&v)));
        }
    }
}

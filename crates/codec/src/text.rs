//! Text preprocessing: whitespace tokenisation + hash-vocabulary
//! quantisation.
//!
//! Paper §2.1: "In languages learning workflows, text samples in different
//! languages are quantized to obtain the vectorized features." This module
//! is the functional kernel behind the `TextQuantize` mirror: UTF-8 text in,
//! fixed-length `u32` token-id vectors out.

use crate::error::{CodecError, CodecResult};

/// Quantisation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizeConfig {
    /// Hash-vocabulary size (ids are in `[2, vocab_size)`; 0 = PAD, 1 = UNK
    /// for empty tokens, which the hasher never emits).
    pub vocab_size: u32,
    /// Output sequence length (truncate/pad).
    pub seq_len: usize,
}

impl QuantizeConfig {
    /// A BERT-ish default.
    pub fn default_nlp() -> Self {
        Self {
            vocab_size: 30_000,
            seq_len: 128,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> CodecResult<()> {
        if self.vocab_size < 3 || self.seq_len == 0 {
            return Err(CodecError::InvalidArgument {
                detail: format!(
                    "vocab_size {} must be >= 3 and seq_len {} positive",
                    self.vocab_size, self.seq_len
                ),
            });
        }
        Ok(())
    }
}

/// FNV-1a, the classic tiny hardware-friendly string hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Tokenises on whitespace, lowercases ASCII, hashes each token into the
/// vocabulary, truncates/pads to `seq_len`. Returns exactly `seq_len` ids.
pub fn quantize(text: &str, config: &QuantizeConfig) -> CodecResult<Vec<u32>> {
    config.validate()?;
    let mut ids = Vec::with_capacity(config.seq_len);
    for token in text.split_whitespace() {
        if ids.len() == config.seq_len {
            break;
        }
        let lowered: Vec<u8> = token.bytes().map(|b| b.to_ascii_lowercase()).collect();
        let id = 2 + (fnv1a(&lowered) % (config.vocab_size as u64 - 2)) as u32;
        ids.push(id);
    }
    ids.resize(config.seq_len, 0); // PAD
    Ok(ids)
}

/// Serialises token ids to little-endian bytes (the DMA payload).
pub fn ids_to_le_bytes(ids: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ids.len() * 4);
    for id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

/// Deterministic synthetic text (word-salad over a small base vocabulary).
pub fn synth_text(n_words: usize, seed: u64) -> String {
    const WORDS: [&str; 24] = [
        "deep", "learning", "pipeline", "decode", "image", "batch", "tensor", "model", "train",
        "infer", "fpga", "gpu", "queue", "memory", "stream", "kernel", "cloud", "data", "epoch",
        "layer", "weight", "label", "sample", "cache",
    ];
    let mut state = seed | 1;
    let mut out = String::new();
    for i in 0..n_words {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[(state % WORDS.len() as u64) as usize]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_shape_and_padding() {
        let c = QuantizeConfig {
            vocab_size: 1000,
            seq_len: 8,
        };
        let ids = quantize("hello world", &c).unwrap();
        assert_eq!(ids.len(), 8);
        assert!(ids[0] >= 2 && ids[0] < 1000);
        assert!(ids[1] >= 2 && ids[1] < 1000);
        assert!(ids[2..].iter().all(|&i| i == 0), "padding must be 0");
    }

    #[test]
    fn quantize_truncates() {
        let c = QuantizeConfig {
            vocab_size: 100,
            seq_len: 3,
        };
        let ids = quantize("a b c d e f", &c).unwrap();
        assert_eq!(ids.len(), 3);
        assert!(ids.iter().all(|&i| i >= 2));
    }

    #[test]
    fn quantize_is_case_insensitive_and_deterministic() {
        let c = QuantizeConfig::default_nlp();
        let a = quantize("Deep Learning", &c).unwrap();
        let b = quantize("deep learning", &c).unwrap();
        assert_eq!(a, b);
        let other = quantize("shallow learning", &c).unwrap();
        assert_ne!(a[0], other[0]);
        assert_eq!(a[1], other[1], "same word, same id");
    }

    #[test]
    fn ids_serialise_roundtrip() {
        let ids = vec![0u32, 2, 29_999, 12345];
        let bytes = ids_to_le_bytes(&ids);
        assert_eq!(bytes.len(), 16);
        let back: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        assert_eq!(back, ids);
    }

    #[test]
    fn validation() {
        assert!(quantize(
            "x",
            &QuantizeConfig {
                vocab_size: 2,
                seq_len: 4
            }
        )
        .is_err());
        assert!(quantize(
            "x",
            &QuantizeConfig {
                vocab_size: 10,
                seq_len: 0
            }
        )
        .is_err());
    }

    #[test]
    fn synth_text_is_deterministic() {
        assert_eq!(synth_text(10, 3), synth_text(10, 3));
        assert_ne!(synth_text(10, 3), synth_text(10, 4));
        assert_eq!(synth_text(5, 1).split_whitespace().count(), 5);
    }
}

//! Runtime-dispatched SIMD kernels for the decode hot path.
//!
//! The paper attacks JPEG decode with dedicated FPGA units; this module is
//! the CPU-side analogue: AVX2 implementations of the iDCT, YCbCr→RGB
//! conversion, chroma upsampling and the bilinear vertical pass, selected at
//! runtime via `is_x86_feature_detected!` with the scalar code as fallback.
//!
//! **Bit-exactness contract.** Every kernel here performs, per lane, the
//! *identical* IEEE f32 operation sequence as its scalar counterpart — plain
//! `mul`/`add`/`sub` only, never FMA (a fused multiply-add rounds once where
//! the scalar code rounds twice and would diverge in the last ulp). The
//! final u8 conversion mirrors `clamp_u8` exactly: `+0.5`, clamp to
//! `[0, 255]`, truncate. `_mm256_max_ps(v, 0)` returns the second operand
//! for NaN inputs, matching the scalar clamp's NaN→0 saturation. The codec
//! proptests assert byte equality between the two paths on every decode.
//!
//! The scalar iDCT takes sparsity shortcuts (DC-only block, all-zero AC
//! column) that the SIMD kernel does not; these are bit-equivalent because
//! the skipped butterfly stages only add `±0.0` and multiply zeros by finite
//! constants, which IEEE f32 maps back to the shortcut's exact values.
//!
//! `DLB_CODEC_FORCE_SCALAR=1` (any value other than `0`) disables dispatch
//! so the scalar fallback stays exercised on SIMD-capable hosts.

use std::sync::atomic::{AtomicU8, Ordering};

const MODE_UNKNOWN: u8 = 0;
const MODE_SCALAR: u8 = 1;
const MODE_SIMD: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNKNOWN);

fn detect() -> u8 {
    if std::env::var_os("DLB_CODEC_FORCE_SCALAR").is_some_and(|v| v != "0") {
        return MODE_SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") {
            return MODE_SIMD;
        }
    }
    MODE_SCALAR
}

/// Whether the SIMD kernels are active on this host (AVX2 present and not
/// overridden by `DLB_CODEC_FORCE_SCALAR`). Detection runs once and is
/// cached; [`force_scalar`] can flip it at runtime for tests.
#[inline]
pub fn simd_active() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_SIMD => true,
        MODE_SCALAR => false,
        _ => {
            let mode = detect();
            MODE.store(mode, Ordering::Relaxed);
            mode == MODE_SIMD
        }
    }
}

/// Overrides kernel dispatch at runtime: `true` forces the scalar fallback,
/// `false` re-runs feature detection (honouring the env override). Because
/// SIMD and scalar kernels produce identical bytes, flipping this
/// mid-decode is benign — only throughput changes — which is what lets the
/// equivalence tests toggle it without serialising every other test.
pub fn force_scalar(force: bool) {
    if force {
        MODE.store(MODE_SCALAR, Ordering::Relaxed);
    } else {
        MODE.store(detect(), Ordering::Relaxed);
    }
}

/// Hints the CPU to pull the cache line at `p + offset` toward L1. Used by
/// the segment-parallel decoder to overlap the next restart segment's
/// entropy bytes with the current segment's arithmetic. No-op off x86_64.
#[inline]
pub fn prefetch_read(data: &[u8], offset: usize) {
    #[cfg(target_arch = "x86_64")]
    if offset < data.len() {
        // SAFETY: prefetch is a pure performance hint; the pointer is
        // in-bounds and never dereferenced architecturally.
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                data.as_ptr().add(offset) as *const i8,
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, offset);
    }
}

#[cfg(target_arch = "x86_64")]
pub use x86::*;

#[cfg(target_arch = "x86_64")]
mod x86 {
    use crate::dct::{BLOCK_LEN, C_A, C_B, C_C, SQRT2};
    use crate::pixel::{clamp_u8, ycbcr_to_rgb};
    use std::arch::x86_64::*;

    /// The AAN 1-D butterfly over 8 vectors (`v[k]` = 1-D index `k`, one
    /// block row/column per lane), mirroring the scalar
    /// `idct_8x8_dequant` column/row pass operation-for-operation.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn aan_butterfly(v: [__m256; 8]) -> [__m256; 8] {
        let sqrt2 = _mm256_set1_ps(SQRT2);
        let c_a = _mm256_set1_ps(C_A);
        let c_b = _mm256_set1_ps(C_B);
        let c_c = _mm256_set1_ps(C_C);

        // Even part.
        let tmp10 = _mm256_add_ps(v[0], v[4]);
        let tmp11 = _mm256_sub_ps(v[0], v[4]);
        let tmp13 = _mm256_add_ps(v[2], v[6]);
        let tmp12 = _mm256_sub_ps(_mm256_mul_ps(_mm256_sub_ps(v[2], v[6]), sqrt2), tmp13);
        let e0 = _mm256_add_ps(tmp10, tmp13);
        let e3 = _mm256_sub_ps(tmp10, tmp13);
        let e1 = _mm256_add_ps(tmp11, tmp12);
        let e2 = _mm256_sub_ps(tmp11, tmp12);

        // Odd part.
        let z13 = _mm256_add_ps(v[5], v[3]);
        let z10 = _mm256_sub_ps(v[5], v[3]);
        let z11 = _mm256_add_ps(v[1], v[7]);
        let z12 = _mm256_sub_ps(v[1], v[7]);
        let o7 = _mm256_add_ps(z11, z13);
        let z11_13 = _mm256_mul_ps(_mm256_sub_ps(z11, z13), sqrt2);
        let z5 = _mm256_mul_ps(_mm256_add_ps(z10, z12), c_a);
        let o10 = _mm256_sub_ps(_mm256_mul_ps(c_b, z12), z5);
        let o12 = _mm256_add_ps(_mm256_mul_ps(c_c, z10), z5);
        let o6 = _mm256_sub_ps(o12, o7);
        let o5 = _mm256_sub_ps(z11_13, o6);
        let o4 = _mm256_add_ps(o10, o5);

        [
            _mm256_add_ps(e0, o7),
            _mm256_add_ps(e1, o6),
            _mm256_add_ps(e2, o5),
            _mm256_sub_ps(e3, o4),
            _mm256_add_ps(e3, o4),
            _mm256_sub_ps(e2, o5),
            _mm256_sub_ps(e1, o6),
            _mm256_sub_ps(e0, o7),
        ]
    }

    /// 8×8 f32 transpose (rows in, columns out).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn transpose_8x8(r: [__m256; 8]) -> [__m256; 8] {
        let t0 = _mm256_unpacklo_ps(r[0], r[1]);
        let t1 = _mm256_unpackhi_ps(r[0], r[1]);
        let t2 = _mm256_unpacklo_ps(r[2], r[3]);
        let t3 = _mm256_unpackhi_ps(r[2], r[3]);
        let t4 = _mm256_unpacklo_ps(r[4], r[5]);
        let t5 = _mm256_unpackhi_ps(r[4], r[5]);
        let t6 = _mm256_unpacklo_ps(r[6], r[7]);
        let t7 = _mm256_unpackhi_ps(r[6], r[7]);
        let s0 = _mm256_shuffle_ps(t0, t2, 0x44);
        let s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
        let s2 = _mm256_shuffle_ps(t1, t3, 0x44);
        let s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
        let s4 = _mm256_shuffle_ps(t4, t6, 0x44);
        let s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
        let s6 = _mm256_shuffle_ps(t5, t7, 0x44);
        let s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
        [
            _mm256_permute2f128_ps(s0, s4, 0x20),
            _mm256_permute2f128_ps(s1, s5, 0x20),
            _mm256_permute2f128_ps(s2, s6, 0x20),
            _mm256_permute2f128_ps(s3, s7, 0x20),
            _mm256_permute2f128_ps(s0, s4, 0x31),
            _mm256_permute2f128_ps(s1, s5, 0x31),
            _mm256_permute2f128_ps(s2, s6, 0x31),
            _mm256_permute2f128_ps(s3, s7, 0x31),
        ]
    }

    /// `clamp_u8(v + 128.0)` for 8 lanes, returning 8 packed i32 in `[0,255]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn levelshift_clamp_i32(v: __m256) -> __m256i {
        let t = _mm256_add_ps(v, _mm256_set1_ps(128.0));
        clamp_round_i32(t)
    }

    /// The `clamp_u8` sequence (`+0.5`, clamp, truncate) for 8 lanes.
    /// `max(v, 0)` returns the second operand on NaN, matching the scalar
    /// clamp's NaN→0; `cvttps` truncates like `as u8`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn clamp_round_i32(v: __m256) -> __m256i {
        let t = _mm256_add_ps(v, _mm256_set1_ps(0.5));
        let t = _mm256_max_ps(t, _mm256_setzero_ps());
        let t = _mm256_min_ps(t, _mm256_set1_ps(255.0));
        _mm256_cvttps_epi32(t)
    }

    /// Packs four rows of 8 i32 (each in `[0, 255]`) into 32 consecutive u8.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn pack_4x8_u8(a: __m256i, b: __m256i, c: __m256i, d: __m256i) -> __m256i {
        // packs interleaves 128-bit lanes; permute restores row order.
        let ab = _mm256_permute4x64_epi64(_mm256_packs_epi32(a, b), 0b11011000);
        let cd = _mm256_permute4x64_epi64(_mm256_packs_epi32(c, d), 0b11011000);
        _mm256_permute4x64_epi64(_mm256_packus_epi16(ab, cd), 0b11011000)
    }

    /// Fused dequantise → AAN iDCT → level shift → u8 clamp for one block.
    ///
    /// Bit-exact with `idct_8x8_dequant` followed by `clamp_u8(s + 128.0)`:
    /// each lane runs the same f32 ops in the same order, and the scalar
    /// sparsity shortcuts are algebraically exact under IEEE semantics (the
    /// skipped stages only add signed zeros produced from `0 × scale`).
    ///
    /// # Safety
    /// The host must support AVX2 (guaranteed when [`super::simd_active`]
    /// returned true).
    #[target_feature(enable = "avx2")]
    pub unsafe fn idct_8x8_dequant_u8_avx2(
        quantized: &[i16; BLOCK_LEN],
        scale: &[f32; BLOCK_LEN],
        out: &mut [u8; BLOCK_LEN],
    ) {
        let qp = quantized.as_ptr();
        // DC-only shortcut, kept identical to the scalar one: OR all
        // coefficients except index 0 and test for zero.
        let q0 = _mm256_loadu_si256(qp as *const __m256i);
        let q1 = _mm256_loadu_si256(qp.add(16) as *const __m256i);
        let q2 = _mm256_loadu_si256(qp.add(32) as *const __m256i);
        let q3 = _mm256_loadu_si256(qp.add(48) as *const __m256i);
        let dc_mask = _mm256_set_epi64x(-1, -1, -1, !0xFFFFi64);
        let acc = _mm256_or_si256(
            _mm256_or_si256(_mm256_and_si256(q0, dc_mask), q1),
            _mm256_or_si256(q2, q3),
        );
        if _mm256_testz_si256(acc, acc) != 0 {
            out.fill(clamp_u8(quantized[0] as f32 * scale[0] + 128.0));
            return;
        }

        // Dequantise rows: i16 → i32 → f32, then multiply by the folded
        // AAN scale factors (exactly `q as f32 * scale` per lane).
        let mut rows = [_mm256_setzero_ps(); 8];
        for (r, row) in rows.iter_mut().enumerate() {
            let qi = _mm256_cvtepi16_epi32(_mm_loadu_si128(qp.add(r * 8) as *const __m128i));
            let s = _mm256_loadu_ps(scale.as_ptr().add(r * 8));
            *row = _mm256_mul_ps(_mm256_cvtepi32_ps(qi), s);
        }

        // Column pass (lanes = columns), transpose, row pass, transpose back.
        let ws = aan_butterfly(rows);
        let t = transpose_8x8(ws);
        let u = aan_butterfly(t);
        let s = transpose_8x8(u);

        let r0123 = pack_4x8_u8(
            levelshift_clamp_i32(s[0]),
            levelshift_clamp_i32(s[1]),
            levelshift_clamp_i32(s[2]),
            levelshift_clamp_i32(s[3]),
        );
        let r4567 = pack_4x8_u8(
            levelshift_clamp_i32(s[4]),
            levelshift_clamp_i32(s[5]),
            levelshift_clamp_i32(s[6]),
            levelshift_clamp_i32(s[7]),
        );
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, r0123);
        _mm256_storeu_si256(out.as_mut_ptr().add(32) as *mut __m256i, r4567);
    }

    /// Converts matched rows of Y/Cb/Cr samples into interleaved RGB,
    /// 8 pixels per iteration, with a scalar tail.
    ///
    /// Bit-exact with per-pixel `ycbcr_to_rgb`: the three channel
    /// expressions are evaluated with the same f32 op order per lane.
    ///
    /// # Safety
    /// The host must support AVX2. `y`, `cb`, `cr` must have equal lengths
    /// and `out` must hold `3 * y.len()` bytes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn ycbcr_rows_to_rgb_avx2(y: &[u8], cb: &[u8], cr: &[u8], out: &mut [u8]) {
        debug_assert_eq!(y.len(), cb.len());
        debug_assert_eq!(y.len(), cr.len());
        debug_assert_eq!(out.len(), y.len() * 3);
        let n = y.len();
        let c128 = _mm256_set1_ps(128.0);
        let k_r_cr = _mm256_set1_ps(1.402);
        let k_g_cb = _mm256_set1_ps(0.344_136);
        let k_g_cr = _mm256_set1_ps(0.714_136);
        let k_b_cb = _mm256_set1_ps(1.772);

        let mut i = 0usize;
        while i + 8 <= n {
            let load = |p: &[u8]| -> __m256 {
                let v = _mm_loadl_epi64(p.as_ptr().add(i) as *const __m128i);
                _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(v))
            };
            let yf = load(y);
            let cbf = _mm256_sub_ps(load(cb), c128);
            let crf = _mm256_sub_ps(load(cr), c128);
            // r = yf + 1.402·crf ; g = (yf − 0.344136·cbf) − 0.714136·crf ;
            // b = yf + 1.772·cbf — the scalar evaluation order.
            let r = _mm256_add_ps(yf, _mm256_mul_ps(k_r_cr, crf));
            let g = _mm256_sub_ps(
                _mm256_sub_ps(yf, _mm256_mul_ps(k_g_cb, cbf)),
                _mm256_mul_ps(k_g_cr, crf),
            );
            let b = _mm256_add_ps(yf, _mm256_mul_ps(k_b_cb, cbf));
            let mut ri = [0i32; 8];
            let mut gi = [0i32; 8];
            let mut bi = [0i32; 8];
            _mm256_storeu_si256(ri.as_mut_ptr() as *mut __m256i, clamp_round_i32(r));
            _mm256_storeu_si256(gi.as_mut_ptr() as *mut __m256i, clamp_round_i32(g));
            _mm256_storeu_si256(bi.as_mut_ptr() as *mut __m256i, clamp_round_i32(b));
            for k in 0..8 {
                let o = (i + k) * 3;
                out[o] = ri[k] as u8;
                out[o + 1] = gi[k] as u8;
                out[o + 2] = bi[k] as u8;
            }
            i += 8;
        }
        while i < n {
            let [r, g, b] = ycbcr_to_rgb(y[i], cb[i], cr[i]);
            let o = i * 3;
            out[o] = r;
            out[o + 1] = g;
            out[o + 2] = b;
            i += 1;
        }
    }

    /// 2× horizontal nearest-neighbour upsample: `out[i] = src[i / 2]`,
    /// 32 output bytes per iteration via byte-interleave with itself.
    ///
    /// # Safety
    /// The host must support AVX2. `src` must hold at least
    /// `out.len().div_ceil(2)` bytes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn upsample_dup2_row_avx2(src: &[u8], out: &mut [u8]) {
        debug_assert!(src.len() >= out.len().div_ceil(2));
        let n = out.len();
        let mut o = 0usize;
        while o + 32 <= n {
            let s = _mm_loadu_si128(src.as_ptr().add(o / 2) as *const __m128i);
            let lo = _mm_unpacklo_epi8(s, s);
            let hi = _mm_unpackhi_epi8(s, s);
            _mm_storeu_si128(out.as_mut_ptr().add(o) as *mut __m128i, lo);
            _mm_storeu_si128(out.as_mut_ptr().add(o + 16) as *mut __m128i, hi);
            o += 32;
        }
        while o < n {
            out[o] = src[o / 2];
            o += 1;
        }
    }

    /// Vertical bilinear pass: `out[i] = clamp_u8(top[i] + (bot[i] − top[i])
    /// · wy)`, 8 lanes per iteration with a scalar tail. Bit-exact with the
    /// scalar expression.
    ///
    /// # Safety
    /// The host must support AVX2. `top`, `bot` and `out` must have equal
    /// lengths.
    #[target_feature(enable = "avx2")]
    pub unsafe fn lerp_rows_to_u8_avx2(top: &[f32], bot: &[f32], wy: f32, out: &mut [u8]) {
        debug_assert_eq!(top.len(), bot.len());
        debug_assert_eq!(top.len(), out.len());
        let n = out.len();
        let wyv = _mm256_set1_ps(wy);
        let mut i = 0usize;
        while i + 8 <= n {
            let t = _mm256_loadu_ps(top.as_ptr().add(i));
            let b = _mm256_loadu_ps(bot.as_ptr().add(i));
            let v = _mm256_add_ps(t, _mm256_mul_ps(_mm256_sub_ps(b, t), wyv));
            let mut vi = [0i32; 8];
            _mm256_storeu_si256(vi.as_mut_ptr() as *mut __m256i, clamp_round_i32(v));
            for k in 0..8 {
                out[i + k] = vi[k] as u8;
            }
            i += 8;
        }
        while i < n {
            out[i] = clamp_u8(top[i] + (bot[i] - top[i]) * wy);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_cached_and_overridable() {
        let initial = simd_active();
        force_scalar(true);
        assert!(!simd_active());
        force_scalar(false);
        assert_eq!(simd_active(), initial);
    }

    #[cfg(target_arch = "x86_64")]
    mod avx2 {
        use super::super::*;
        use crate::dct::{idct_8x8_dequant, idct_scale_factors, BLOCK_LEN};
        use crate::pixel::{clamp_u8, ycbcr_to_rgb};

        fn have_avx2() -> bool {
            std::is_x86_feature_detected!("avx2")
        }

        fn lcg(state: &mut u32) -> u32 {
            *state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            *state
        }

        #[test]
        fn idct_kernel_bit_exact_with_scalar() {
            if !have_avx2() {
                return;
            }
            let qt: [u16; BLOCK_LEN] = std::array::from_fn(|i| 1 + (i as u16 * 7) % 90);
            let scale = idct_scale_factors(&qt);
            let mut state = 0xC0FFEEu32;
            for density in [0u32, 2, 10, 50, 100] {
                for _ in 0..64 {
                    let mut block = [0i16; BLOCK_LEN];
                    for v in block.iter_mut() {
                        let r = lcg(&mut state);
                        if r % 100 < density {
                            *v = ((r >> 16) as i16) % 1024;
                        }
                    }
                    block[0] = ((lcg(&mut state) >> 16) as i16) % 1024;

                    let mut want_f = [0f32; BLOCK_LEN];
                    idct_8x8_dequant(&block, &scale, &mut want_f);
                    let mut want = [0u8; BLOCK_LEN];
                    for (o, &s) in want.iter_mut().zip(want_f.iter()) {
                        *o = clamp_u8(s + 128.0);
                    }

                    let mut got = [0u8; BLOCK_LEN];
                    // SAFETY: guarded by have_avx2 above.
                    unsafe { idct_8x8_dequant_u8_avx2(&block, &scale, &mut got) };
                    assert_eq!(want, got, "density {density} block {block:?}");
                }
            }
        }

        #[test]
        fn color_kernel_bit_exact_with_scalar() {
            if !have_avx2() {
                return;
            }
            let mut state = 0xBEEFu32;
            for len in [0usize, 1, 7, 8, 9, 64, 100] {
                let y: Vec<u8> = (0..len).map(|_| lcg(&mut state) as u8).collect();
                let cb: Vec<u8> = (0..len).map(|_| lcg(&mut state) as u8).collect();
                let cr: Vec<u8> = (0..len).map(|_| lcg(&mut state) as u8).collect();
                let mut want = vec![0u8; len * 3];
                for i in 0..len {
                    let [r, g, b] = ycbcr_to_rgb(y[i], cb[i], cr[i]);
                    want[i * 3] = r;
                    want[i * 3 + 1] = g;
                    want[i * 3 + 2] = b;
                }
                let mut got = vec![0u8; len * 3];
                // SAFETY: guarded by have_avx2 above.
                unsafe { ycbcr_rows_to_rgb_avx2(&y, &cb, &cr, &mut got) };
                assert_eq!(want, got, "len {len}");
            }
        }

        #[test]
        fn upsample_kernel_duplicates() {
            if !have_avx2() {
                return;
            }
            let mut state = 0x5EEDu32;
            for len in [0usize, 1, 2, 31, 32, 33, 64, 99] {
                let src: Vec<u8> = (0..len.div_ceil(2).max(1))
                    .map(|_| lcg(&mut state) as u8)
                    .collect();
                let mut got = vec![0u8; len];
                // SAFETY: guarded by have_avx2 above.
                unsafe { upsample_dup2_row_avx2(&src, &mut got) };
                for (i, &v) in got.iter().enumerate() {
                    assert_eq!(v, src[i / 2], "len {len} idx {i}");
                }
            }
        }

        #[test]
        fn lerp_kernel_bit_exact_with_scalar() {
            if !have_avx2() {
                return;
            }
            let mut state = 0xACEDu32;
            for len in [0usize, 3, 8, 17, 40] {
                for wy in [0.0f32, 0.25, 0.4999, 0.75, 1.0] {
                    let top: Vec<f32> = (0..len)
                        .map(|_| (lcg(&mut state) % 2560) as f32 / 10.0 - 1.0)
                        .collect();
                    let bot: Vec<f32> = (0..len)
                        .map(|_| (lcg(&mut state) % 2560) as f32 / 10.0 - 1.0)
                        .collect();
                    let want: Vec<u8> = top
                        .iter()
                        .zip(bot.iter())
                        .map(|(&t, &b)| clamp_u8(t + (b - t) * wy))
                        .collect();
                    let mut got = vec![0u8; len];
                    // SAFETY: guarded by have_avx2 above.
                    unsafe { lerp_rows_to_u8_avx2(&top, &bot, wy, &mut got) };
                    assert_eq!(want, got, "len {len} wy {wy}");
                }
            }
        }
    }
}

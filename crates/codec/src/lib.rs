//! # dlb-codec
//!
//! From-scratch implementation of the image-preprocessing primitives that the
//! DLBooster paper (ICPP 2019) offloads to its FPGA decoder: baseline JPEG
//! entropy decoding (Huffman), inverse DCT, YCbCr→RGB conversion and resizing
//! — plus the matching encoder used to build synthetic datasets, and the
//! GPU-side augmentation ops that DLBooster deliberately does *not* offload.
//!
//! The codec implements a self-contained subset of ITU-T T.81 baseline
//! sequential JPEG (JFIF container, 8-bit samples, Huffman entropy coding,
//! 4:4:4 / 4:2:0 chroma subsampling, grayscale). It is bit-exact with itself
//! (encode→decode roundtrips are tested against PSNR bounds) and is the
//! *functional* workload executed by both the CPU baseline backend and the
//! simulated FPGA decoder lanes.
//!
//! Layout:
//! * [`pixel`] — image containers and color conversion.
//! * [`dct`] — 8×8 forward/inverse DCT (AAN-style scaled floats).
//! * [`quant`] — quantization tables and quality scaling.
//! * [`huffman`] — bit I/O and canonical JPEG Huffman coding.
//! * [`jpeg`] — baseline encoder/decoder over JFIF markers.
//! * [`resize`] — nearest / bilinear / area resampling.
//! * [`simd`] — runtime-dispatched AVX2 kernels with scalar fallback.
//! * [`augment`] — crop / flip / normalize (the GPU-side stage).
//! * [`synth`] — deterministic synthetic image generation.
//! * [`bmp`] — minimal BMP export for examples.
//! * [`audio`] — DCT-II spectrogram extraction (the `AudioSpectrogram`
//!   mirror kernel; paper §2.1 speech workflows).
//! * [`text`] — hash-vocabulary quantisation (the `TextQuantize` mirror
//!   kernel; paper §2.1 language workflows).

pub mod audio;
pub mod augment;
pub mod bmp;
pub mod dct;
pub mod error;
pub mod huffman;
pub mod jpeg;
pub mod pixel;
pub mod quant;
pub mod resize;
pub mod simd;
pub mod synth;
pub mod text;

pub use error::{CodecError, CodecResult};
pub use jpeg::{decoder::JpegDecoder, encoder::JpegEncoder, ChromaMode};
pub use pixel::{ColorSpace, Image};
pub use resize::ResizeFilter;

//! Minimal BMP (BITMAPINFOHEADER, 24-bit) export and import.
//!
//! The paper's workflow figure shows decoded pictures "in BMP" between the
//! decode and crop stages; the examples use this module to dump pipeline
//! outputs so a human can eyeball them.

use crate::error::{CodecError, CodecResult};
use crate::pixel::{ColorSpace, Image};

const FILE_HEADER_LEN: usize = 14;
const INFO_HEADER_LEN: usize = 40;

/// Serialises an image as an uncompressed 24-bit BMP (grayscale images are
/// expanded to RGB).
pub fn encode_bmp(img: &Image) -> Vec<u8> {
    let rgb = img.to_rgb();
    let w = rgb.width() as usize;
    let h = rgb.height() as usize;
    let row_bytes = w * 3;
    let padded_row = row_bytes.div_ceil(4) * 4;
    let pixel_bytes = padded_row * h;
    let file_len = FILE_HEADER_LEN + INFO_HEADER_LEN + pixel_bytes;

    let mut out = Vec::with_capacity(file_len);
    // BITMAPFILEHEADER
    out.extend_from_slice(b"BM");
    out.extend_from_slice(&(file_len as u32).to_le_bytes());
    out.extend_from_slice(&[0; 4]); // reserved
    out.extend_from_slice(&((FILE_HEADER_LEN + INFO_HEADER_LEN) as u32).to_le_bytes());
    // BITMAPINFOHEADER
    out.extend_from_slice(&(INFO_HEADER_LEN as u32).to_le_bytes());
    out.extend_from_slice(&(w as i32).to_le_bytes());
    out.extend_from_slice(&(h as i32).to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // planes
    out.extend_from_slice(&24u16.to_le_bytes()); // bpp
    out.extend_from_slice(&0u32.to_le_bytes()); // BI_RGB
    out.extend_from_slice(&(pixel_bytes as u32).to_le_bytes());
    out.extend_from_slice(&2835u32.to_le_bytes()); // 72 dpi
    out.extend_from_slice(&2835u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    // Pixel rows, bottom-up, BGR, padded to 4 bytes.
    let data = rgb.data();
    for y in (0..h).rev() {
        let row = &data[y * row_bytes..(y + 1) * row_bytes];
        for px in row.chunks_exact(3) {
            out.extend_from_slice(&[px[2], px[1], px[0]]);
        }
        out.resize(out.len() + (padded_row - row_bytes), 0);
    }
    out
}

/// Parses a 24-bit uncompressed BMP produced by [`encode_bmp`].
pub fn decode_bmp(data: &[u8]) -> CodecResult<Image> {
    if data.len() < FILE_HEADER_LEN + INFO_HEADER_LEN || &data[0..2] != b"BM" {
        return Err(CodecError::MalformedSegment {
            detail: "not a BMP file".into(),
        });
    }
    let pixel_offset = u32::from_le_bytes(data[10..14].try_into().unwrap()) as usize;
    let w = i32::from_le_bytes(data[18..22].try_into().unwrap());
    let h = i32::from_le_bytes(data[22..26].try_into().unwrap());
    let bpp = u16::from_le_bytes(data[28..30].try_into().unwrap());
    let compression = u32::from_le_bytes(data[30..34].try_into().unwrap());
    if bpp != 24 || compression != 0 {
        return Err(CodecError::Unsupported {
            feature: format!("BMP bpp={bpp} compression={compression}"),
        });
    }
    if w <= 0 || h <= 0 {
        return Err(CodecError::UnsupportedDimensions {
            width: w.max(0) as u32,
            height: h.max(0) as u32,
        });
    }
    let (w, h) = (w as usize, h as usize);
    let row_bytes = w * 3;
    let padded_row = row_bytes.div_ceil(4) * 4;
    if data.len() < pixel_offset + padded_row * h {
        return Err(CodecError::UnexpectedEof {
            context: "BMP pixel data",
        });
    }
    let mut out = vec![0u8; row_bytes * h];
    for y in 0..h {
        let src = &data[pixel_offset + (h - 1 - y) * padded_row..];
        for x in 0..w {
            let s = x * 3;
            let d = y * row_bytes + x * 3;
            out[d] = src[s + 2];
            out[d + 1] = src[s + 1];
            out[d + 2] = src[s];
        }
    }
    Image::from_vec(w as u32, h as u32, ColorSpace::Rgb, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bmp_roundtrip() {
        let mut img = Image::new(5, 3, ColorSpace::Rgb).unwrap();
        for y in 0..3 {
            for x in 0..5 {
                img.set_pixel(x, y, [x as u8 * 10, y as u8 * 20, 200]);
            }
        }
        let bytes = encode_bmp(&img);
        let back = decode_bmp(&bytes).unwrap();
        assert_eq!(back.data(), img.data());
    }

    #[test]
    fn bmp_roundtrip_unpadded_width() {
        // Width 4 → no row padding; width 5 → padding; both must work.
        for w in [4u32, 5, 7, 8] {
            let img = Image::new(w, 2, ColorSpace::Rgb).unwrap();
            let back = decode_bmp(&encode_bmp(&img)).unwrap();
            assert_eq!(back.width(), w);
        }
    }

    #[test]
    fn grayscale_expands_to_rgb() {
        let img = Image::new(3, 3, ColorSpace::Gray).unwrap();
        let back = decode_bmp(&encode_bmp(&img)).unwrap();
        assert_eq!(back.color(), ColorSpace::Rgb);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode_bmp(b"not a bmp at all........................................").is_err());
        assert!(decode_bmp(&[]).is_err());
    }
}

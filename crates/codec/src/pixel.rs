//! Image containers and color-space conversion.
//!
//! The decode path of DLBooster's FPGA decoder ends in an "iDCT & RGB" unit
//! (Fig. 4 of the paper); this module provides the RGB/YCbCr math that unit
//! performs, using the standard JFIF full-range BT.601 coefficients.

use crate::error::{CodecError, CodecResult};

/// Color layout of an [`Image`] buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColorSpace {
    /// Single 8-bit luminance plane.
    Gray,
    /// Interleaved 8-bit R, G, B triplets.
    Rgb,
}

impl ColorSpace {
    /// Number of interleaved channels per pixel.
    #[inline]
    pub const fn channels(self) -> usize {
        match self {
            ColorSpace::Gray => 1,
            ColorSpace::Rgb => 3,
        }
    }
}

/// An owned 8-bit raster image with interleaved channels.
///
/// This is the unit of exchange between every preprocessing stage: the JPEG
/// decoder produces one, the resizer consumes and produces them, and the
/// augmentation ops transform them in place or into fresh buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    color: ColorSpace,
    data: Vec<u8>,
}

impl Image {
    /// Maximum supported edge length. Large enough for any dataset image,
    /// small enough to keep `width * height * channels` well inside `usize`.
    pub const MAX_DIM: u32 = 1 << 16;

    /// Creates a zero-filled image.
    pub fn new(width: u32, height: u32, color: ColorSpace) -> CodecResult<Self> {
        Self::validate_dims(width, height)?;
        let len = width as usize * height as usize * color.channels();
        Ok(Self {
            width,
            height,
            color,
            data: vec![0; len],
        })
    }

    /// Wraps an existing pixel buffer. The buffer length must be exactly
    /// `width * height * channels`.
    pub fn from_vec(
        width: u32,
        height: u32,
        color: ColorSpace,
        data: Vec<u8>,
    ) -> CodecResult<Self> {
        Self::validate_dims(width, height)?;
        let expect = width as usize * height as usize * color.channels();
        if data.len() != expect {
            return Err(CodecError::InvalidArgument {
                detail: format!(
                    "buffer length {} does not match {}x{}x{}",
                    data.len(),
                    width,
                    height,
                    color.channels()
                ),
            });
        }
        Ok(Self {
            width,
            height,
            color,
            data,
        })
    }

    fn validate_dims(width: u32, height: u32) -> CodecResult<()> {
        if width == 0 || height == 0 || width > Self::MAX_DIM || height > Self::MAX_DIM {
            return Err(CodecError::UnsupportedDimensions { width, height });
        }
        Ok(())
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Color layout of the buffer.
    #[inline]
    pub fn color(&self) -> ColorSpace {
        self.color
    }

    /// Interleaved channel count.
    #[inline]
    pub fn channels(&self) -> usize {
        self.color.channels()
    }

    /// Borrow the raw interleaved pixel data.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutably borrow the raw interleaved pixel data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consume the image, returning the raw buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Bytes per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.width as usize * self.channels()
    }

    /// Total size of the pixel buffer in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Read one pixel as up-to-3 channel values (unused channels are 0).
    #[inline]
    pub fn pixel(&self, x: u32, y: u32) -> [u8; 3] {
        debug_assert!(x < self.width && y < self.height);
        let c = self.channels();
        let base = y as usize * self.stride() + x as usize * c;
        let mut out = [0u8; 3];
        out[..c].copy_from_slice(&self.data[base..base + c]);
        out
    }

    /// Write one pixel; only the first `channels()` values are used.
    #[inline]
    pub fn set_pixel(&mut self, x: u32, y: u32, px: [u8; 3]) {
        debug_assert!(x < self.width && y < self.height);
        let c = self.channels();
        let stride = self.stride();
        let base = y as usize * stride + x as usize * c;
        self.data[base..base + c].copy_from_slice(&px[..c]);
    }

    /// Convert to grayscale using integer BT.601 luma weights.
    pub fn to_gray(&self) -> Image {
        match self.color {
            ColorSpace::Gray => self.clone(),
            ColorSpace::Rgb => {
                let mut out = vec![0u8; self.width as usize * self.height as usize];
                for (dst, src) in out.iter_mut().zip(self.data.chunks_exact(3)) {
                    *dst = luma_bt601(src[0], src[1], src[2]);
                }
                Image {
                    width: self.width,
                    height: self.height,
                    color: ColorSpace::Gray,
                    data: out,
                }
            }
        }
    }

    /// Convert to RGB (grayscale replicates the luma channel).
    pub fn to_rgb(&self) -> Image {
        match self.color {
            ColorSpace::Rgb => self.clone(),
            ColorSpace::Gray => {
                let mut out = Vec::with_capacity(self.data.len() * 3);
                for &g in &self.data {
                    out.extend_from_slice(&[g, g, g]);
                }
                Image {
                    width: self.width,
                    height: self.height,
                    color: ColorSpace::Rgb,
                    data: out,
                }
            }
        }
    }
}

/// Integer BT.601 luma: `Y = 0.299 R + 0.587 G + 0.114 B`, rounded.
#[inline]
pub fn luma_bt601(r: u8, g: u8, b: u8) -> u8 {
    // Fixed-point with 16 fractional bits; coefficients sum to 65536 so the
    // result can never exceed 255.
    let y = 19595u32 * r as u32 + 38470u32 * g as u32 + 7471u32 * b as u32;
    ((y + 32768) >> 16) as u8
}

/// Full-range JFIF RGB → YCbCr conversion for one pixel.
#[inline]
pub fn rgb_to_ycbcr(r: u8, g: u8, b: u8) -> [u8; 3] {
    let (rf, gf, bf) = (r as f32, g as f32, b as f32);
    let y = 0.299 * rf + 0.587 * gf + 0.114 * bf;
    let cb = -0.168_736 * rf - 0.331_264 * gf + 0.5 * bf + 128.0;
    let cr = 0.5 * rf - 0.418_688 * gf - 0.081_312 * bf + 128.0;
    [clamp_u8(y), clamp_u8(cb), clamp_u8(cr)]
}

/// Full-range JFIF YCbCr → RGB conversion for one pixel.
#[inline]
pub fn ycbcr_to_rgb(y: u8, cb: u8, cr: u8) -> [u8; 3] {
    let yf = y as f32;
    let cbf = cb as f32 - 128.0;
    let crf = cr as f32 - 128.0;
    let r = yf + 1.402 * crf;
    let g = yf - 0.344_136 * cbf - 0.714_136 * crf;
    let b = yf + 1.772 * cbf;
    [clamp_u8(r), clamp_u8(g), clamp_u8(b)]
}

/// Full-range JFIF YCbCr → RGB conversion for a row of matched samples,
/// writing interleaved RGB into `out` (`3 * y.len()` bytes). Dispatches to
/// the AVX2 kernel when available; bit-exact with per-pixel
/// [`ycbcr_to_rgb`] either way.
pub fn ycbcr_rows_to_rgb(y: &[u8], cb: &[u8], cr: &[u8], out: &mut [u8]) {
    assert_eq!(y.len(), cb.len());
    assert_eq!(y.len(), cr.len());
    assert_eq!(out.len(), y.len() * 3);
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_active() {
        // SAFETY: `simd_active` returns true only after runtime AVX2
        // detection succeeds; lengths are checked above.
        unsafe { crate::simd::ycbcr_rows_to_rgb_avx2(y, cb, cr, out) };
        return;
    }
    for (i, ((&ys, &cbs), &crs)) in y.iter().zip(cb.iter()).zip(cr.iter()).enumerate() {
        let [r, g, b] = ycbcr_to_rgb(ys, cbs, crs);
        let o = i * 3;
        out[o] = r;
        out[o + 1] = g;
        out[o + 2] = b;
    }
}

/// 2× horizontal nearest-neighbour upsample of a chroma row:
/// `out[i] = src[i / 2]`. `src` must hold at least `out.len().div_ceil(2)`
/// samples.
pub fn upsample_dup2_row(src: &[u8], out: &mut [u8]) {
    assert!(src.len() >= out.len().div_ceil(2));
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_active() {
        // SAFETY: `simd_active` returns true only after runtime AVX2
        // detection succeeds; the length invariant is checked above.
        unsafe { crate::simd::upsample_dup2_row_avx2(src, out) };
        return;
    }
    for (i, o) in out.iter_mut().enumerate() {
        *o = src[i / 2];
    }
}

/// Clamp a float sample into the 8-bit range with rounding.
#[inline]
pub fn clamp_u8(v: f32) -> u8 {
    // NaN propagates through `clamp` and then saturates to 0 in the cast.
    (v + 0.5).clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_dims() {
        assert!(Image::new(0, 10, ColorSpace::Rgb).is_err());
        assert!(Image::new(10, 0, ColorSpace::Gray).is_err());
        assert!(Image::new(Image::MAX_DIM + 1, 1, ColorSpace::Gray).is_err());
        assert!(Image::new(16, 16, ColorSpace::Rgb).is_ok());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Image::from_vec(2, 2, ColorSpace::Rgb, vec![0; 12]).is_ok());
        assert!(Image::from_vec(2, 2, ColorSpace::Rgb, vec![0; 11]).is_err());
        assert!(Image::from_vec(2, 2, ColorSpace::Gray, vec![0; 4]).is_ok());
    }

    #[test]
    fn pixel_roundtrip() {
        let mut img = Image::new(4, 3, ColorSpace::Rgb).unwrap();
        img.set_pixel(2, 1, [10, 20, 30]);
        assert_eq!(img.pixel(2, 1), [10, 20, 30]);
        assert_eq!(img.pixel(0, 0), [0, 0, 0]);
    }

    #[test]
    fn gray_pixel_roundtrip() {
        let mut img = Image::new(3, 3, ColorSpace::Gray).unwrap();
        img.set_pixel(1, 2, [77, 0, 0]);
        assert_eq!(img.pixel(1, 2)[0], 77);
    }

    #[test]
    fn ycbcr_roundtrip_is_close() {
        for &(r, g, b) in &[
            (0u8, 0u8, 0u8),
            (255, 255, 255),
            (255, 0, 0),
            (0, 255, 0),
            (0, 0, 255),
            (12, 200, 99),
            (128, 128, 128),
        ] {
            let [y, cb, cr] = rgb_to_ycbcr(r, g, b);
            let [r2, g2, b2] = ycbcr_to_rgb(y, cb, cr);
            assert!((r as i16 - r2 as i16).abs() <= 2, "r {r} vs {r2}");
            assert!((g as i16 - g2 as i16).abs() <= 2, "g {g} vs {g2}");
            assert!((b as i16 - b2 as i16).abs() <= 2, "b {b} vs {b2}");
        }
    }

    #[test]
    fn gray_of_white_is_white() {
        assert_eq!(luma_bt601(255, 255, 255), 255);
        assert_eq!(luma_bt601(0, 0, 0), 0);
    }

    #[test]
    fn to_gray_and_back_shapes() {
        let mut img = Image::new(5, 4, ColorSpace::Rgb).unwrap();
        img.set_pixel(0, 0, [200, 100, 50]);
        let g = img.to_gray();
        assert_eq!(g.color(), ColorSpace::Gray);
        assert_eq!(g.byte_len(), 20);
        let rgb = g.to_rgb();
        assert_eq!(rgb.channels(), 3);
        let px = rgb.pixel(0, 0);
        assert_eq!(px[0], px[1]);
        assert_eq!(px[1], px[2]);
    }

    #[test]
    fn clamp_handles_extremes() {
        assert_eq!(clamp_u8(-5.0), 0);
        assert_eq!(clamp_u8(300.0), 255);
        assert_eq!(clamp_u8(127.4), 127);
        assert_eq!(clamp_u8(f32::NAN), 0);
    }
}

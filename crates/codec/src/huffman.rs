//! Bit-level I/O and canonical JPEG Huffman coding.
//!
//! This is the functional core of the workload DLBooster offloads: the paper's
//! FPGA decoder dedicates a 4-way Huffman unit to it because entropy decoding
//! is the serial bottleneck of JPEG decode. The implementation covers:
//!
//! * [`BitWriter`] / [`BitReader`] with JPEG `0xFF 0x00` byte stuffing,
//! * canonical table construction from (BITS, HUFFVAL) per T.81 Annex C,
//! * the standard Annex K.3 DC/AC tables,
//! * fast decoding via a first-level lookup table plus canonical fallback.

use crate::error::{CodecError, CodecResult};

/// Maximum JPEG Huffman code length in bits.
pub const MAX_CODE_LEN: usize = 16;

// ---------------------------------------------------------------------------
// Bit I/O
// ---------------------------------------------------------------------------

/// MSB-first bit writer with JPEG byte stuffing (`0xFF` → `0xFF 0x00`).
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `len` bits of `bits`, MSB first. `len` may be 0.
    pub fn put_bits(&mut self, bits: u32, len: u32) {
        debug_assert!(len <= 24, "len {len} too large for accumulator");
        debug_assert!(len == 32 || bits < (1u32 << len.max(1)) || len == 0);
        self.acc = (self.acc << len) | (bits & ((1u64 << len) as u32).wrapping_sub(1));
        self.nbits += len;
        while self.nbits >= 8 {
            let byte = ((self.acc >> (self.nbits - 8)) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00); // byte stuffing
            }
            self.nbits -= 8;
        }
    }

    /// Pads the final partial byte with 1-bits (T.81 F.1.2.3) and returns the
    /// stuffed entropy-coded byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put_bits((1u32 << pad) - 1, pad);
        }
        self.out
    }

    /// Number of complete bytes emitted so far.
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }
}

/// MSB-first bit reader that undoes JPEG byte stuffing and stops at markers.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Wraps an entropy-coded segment (without the trailing marker).
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) -> CodecResult<()> {
        while self.nbits <= 24 {
            if self.pos >= self.data.len() {
                // At end of data, feed 1-padding so a final partial code can
                // still be rejected by table lookup rather than EOF here;
                // genuine overruns surface as InvalidHuffmanCode or explicit
                // EOF from `ensure_bits`.
                return Ok(());
            }
            let byte = self.data[self.pos];
            if byte == 0xFF {
                match self.data.get(self.pos + 1) {
                    Some(0x00) => {
                        self.pos += 2; // stuffed 0xFF data byte
                        self.acc = (self.acc << 8) | 0xFF;
                        self.nbits += 8;
                    }
                    // A restart or terminating marker: stop feeding bits.
                    _ => return Ok(()),
                }
            } else {
                self.pos += 1;
                self.acc = (self.acc << 8) | byte as u32;
                self.nbits += 8;
            }
        }
        Ok(())
    }

    /// Peeks up to 16 bits (left-aligned in the low bits of the return
    /// value); missing trailing bits are 1-filled.
    #[inline]
    pub fn peek_bits(&mut self, len: u32) -> CodecResult<u32> {
        debug_assert!(len <= 16);
        self.refill()?;
        if self.nbits >= len {
            Ok((self.acc >> (self.nbits - len)) & ((1u32 << len) - 1))
        } else {
            // 1-fill the tail.
            let have = self.nbits;
            let missing = len - have;
            let head = if have == 0 {
                0
            } else {
                self.acc & ((1u32 << have) - 1)
            };
            Ok((head << missing) | ((1u32 << missing) - 1))
        }
    }

    /// Consumes `len` bits previously peeked.
    #[inline]
    pub fn consume(&mut self, len: u32) -> CodecResult<()> {
        if self.nbits < len {
            return Err(CodecError::UnexpectedEof {
                context: "entropy-coded segment",
            });
        }
        self.nbits -= len;
        Ok(())
    }

    /// Reads `len` bits as an unsigned value.
    #[inline]
    pub fn get_bits(&mut self, len: u32) -> CodecResult<u32> {
        if len == 0 {
            return Ok(0);
        }
        self.refill()?;
        if self.nbits < len {
            return Err(CodecError::UnexpectedEof {
                context: "entropy-coded segment",
            });
        }
        let v = (self.acc >> (self.nbits - len)) & ((1u32 << len) - 1);
        self.nbits -= len;
        Ok(v)
    }

    /// Byte offset of the next unread input byte (for marker resync).
    pub fn byte_pos(&self) -> usize {
        self.pos - (self.nbits as usize).div_ceil(8)
    }
}

/// Width of the primary decode lookup table in bits. Covers every code in the
/// Annex K tables except the 11..=16-bit AC tail, which falls back to the
/// canonical walk.
pub const LOOKUP_BITS: u32 = 10;

/// Branchless 64-bit bit reservoir over an entropy-coded segment.
///
/// The reservoir is MSB-aligned: bit 63 of `acc` is the next bit of the
/// stream. [`BitCursor::refill`] tops it up to ≥ 57 real bits (unless the
/// segment is exhausted) using 4-byte big-endian bulk loads whenever the next
/// word contains no `0xFF`, falling back to a stuffing/marker-aware byte loop
/// otherwise. One refill therefore covers a worst-case Huffman code plus its
/// magnitude bits (16 + 11 = 27), so the hot decode loop refills once per
/// coefficient and never branches on reservoir depth in between.
#[derive(Debug)]
pub struct BitCursor<'a> {
    data: &'a [u8],
    /// Next unread input byte (counts stuffed zero bytes).
    pos: usize,
    /// MSB-aligned reservoir; the top `nbits` bits are real stream bits.
    acc: u64,
    nbits: u32,
    /// Set once a marker (or end of data) stops the refill.
    end: bool,
}

/// Whether any byte of the big-endian word equals `0xFF` (SWAR zero-byte
/// test on the complement).
#[inline]
fn word_has_ff(w: u32) -> bool {
    let v = w ^ 0xFFFF_FFFF;
    v.wrapping_sub(0x0101_0101) & !v & 0x8080_8080 != 0
}

impl<'a> BitCursor<'a> {
    /// Wraps an entropy-coded segment (without the trailing marker).
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
            end: false,
        }
    }

    /// Tops the reservoir up to ≥ 57 real bits, or as far as the segment
    /// allows. After a refill, `bits_left() < 57` implies the segment is
    /// exhausted (EOF or marker), which is what [`BitCursor::consume`] relies
    /// on for its end-of-stream check.
    #[inline]
    pub fn refill(&mut self) {
        // Bulk path: 4 clean bytes at a time. A word without 0xFF can contain
        // neither stuffing nor a marker prefix.
        while self.nbits <= 32 && !self.end {
            let Some(chunk) = self.data.get(self.pos..self.pos + 4) else {
                break;
            };
            let w = u32::from_be_bytes(chunk.try_into().unwrap());
            if word_has_ff(w) {
                break;
            }
            self.acc |= (w as u64) << (32 - self.nbits);
            self.nbits += 32;
            self.pos += 4;
        }
        // Byte tail: undo stuffing, stop at markers.
        while self.nbits <= 56 && !self.end {
            match self.data.get(self.pos) {
                None => self.end = true,
                Some(&0xFF) => match self.data.get(self.pos + 1) {
                    Some(&0x00) => {
                        self.acc |= 0xFFu64 << (56 - self.nbits);
                        self.nbits += 8;
                        self.pos += 2;
                    }
                    // Restart/terminating marker (or dangling 0xFF at EOF).
                    _ => self.end = true,
                },
                Some(&b) => {
                    self.acc |= (b as u64) << (56 - self.nbits);
                    self.nbits += 8;
                    self.pos += 1;
                }
            }
        }
    }

    /// The next 64 bits of the stream, MSB-aligned, with 1-fill past the real
    /// bits (matching [`BitReader::peek_bits`] semantics so a final partial
    /// code is rejected by table lookup, not a premature EOF).
    #[inline]
    pub fn peek(&self) -> u64 {
        if self.nbits >= 64 {
            self.acc
        } else {
            self.acc | (u64::MAX >> self.nbits)
        }
    }

    /// Real bits currently buffered.
    #[inline]
    pub fn bits_left(&self) -> u32 {
        self.nbits
    }

    /// Consumes `n` previously peeked bits (`n < 64`), erroring if fewer real
    /// bits remain — after [`BitCursor::refill`], that can only happen at the
    /// true end of the segment.
    #[inline]
    pub fn consume(&mut self, n: u32) -> CodecResult<()> {
        if self.nbits < n {
            return Err(CodecError::UnexpectedEof {
                context: "entropy-coded segment",
            });
        }
        self.acc <<= n;
        self.nbits -= n;
        Ok(())
    }

    /// Byte offset of the next unread input byte (for marker resync).
    pub fn byte_pos(&self) -> usize {
        self.pos - (self.nbits as usize).div_ceil(8)
    }
}

// ---------------------------------------------------------------------------
// Canonical tables
// ---------------------------------------------------------------------------

/// A canonical Huffman code table built from (BITS, HUFFVAL) as in T.81.
///
/// Supports both encoding (symbol → code) and decoding (bits → symbol) with a
/// single-level 16-bit lookup acceleration table.
#[derive(Debug, Clone)]
pub struct HuffTable {
    /// `counts[l]` = number of codes of length `l+1`.
    counts: [u8; MAX_CODE_LEN],
    /// Symbols in canonical order.
    symbols: Vec<u8>,
    /// Encoder: symbol → (code, length). Length 0 means absent.
    enc_code: [u16; 256],
    enc_len: [u8; 256],
    /// Decoder acceleration: for each 8-bit prefix, (symbol, code length) if
    /// a code of ≤8 bits matches; length 0 otherwise.
    fast: Box<[(u8, u8); 256]>,
    /// Primary decode table for the reservoir path: indexed by the next
    /// [`LOOKUP_BITS`] stream bits; low 8 bits = symbol, bits 8..12 = code
    /// length. Zero means no code of ≤ `LOOKUP_BITS` bits matches (canonical
    /// fallback).
    lut: Box<[u16]>,
    /// Canonical decode bounds per length: min code, max code, index of first
    /// symbol. Entries are valid only where `counts > 0`.
    min_code: [i32; MAX_CODE_LEN + 1],
    max_code: [i32; MAX_CODE_LEN + 1],
    val_ptr: [usize; MAX_CODE_LEN + 1],
}

impl HuffTable {
    /// Builds a table from the per-length code counts and the symbol list.
    pub fn new(counts: [u8; MAX_CODE_LEN], symbols: &[u8]) -> CodecResult<Self> {
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        if total != symbols.len() {
            return Err(CodecError::MalformedSegment {
                detail: format!(
                    "Huffman table declares {total} codes but provides {} symbols",
                    symbols.len()
                ),
            });
        }
        if total == 0 || total > 256 {
            return Err(CodecError::MalformedSegment {
                detail: format!("Huffman table has {total} codes (must be 1..=256)"),
            });
        }

        // Canonical code assignment (T.81 C.2): codes of each length are
        // consecutive; moving to the next length left-shifts by one.
        let mut enc_code = [0u16; 256];
        let mut enc_len = [0u8; 256];
        let mut min_code = [0i32; MAX_CODE_LEN + 1];
        let mut max_code = [-1i32; MAX_CODE_LEN + 1];
        let mut val_ptr = [0usize; MAX_CODE_LEN + 1];

        let mut code: u32 = 0;
        let mut k = 0usize;
        for len in 1..=MAX_CODE_LEN {
            let n = counts[len - 1] as usize;
            if n > 0 {
                val_ptr[len] = k;
                min_code[len] = code as i32;
                for _ in 0..n {
                    if code >= (1u32 << len) {
                        return Err(CodecError::MalformedSegment {
                            detail: format!("Huffman code overflow at length {len}"),
                        });
                    }
                    let sym = symbols[k];
                    if enc_len[sym as usize] != 0 {
                        return Err(CodecError::MalformedSegment {
                            detail: format!("duplicate Huffman symbol {sym}"),
                        });
                    }
                    enc_code[sym as usize] = code as u16;
                    enc_len[sym as usize] = len as u8;
                    code += 1;
                    k += 1;
                }
                max_code[len] = code as i32 - 1;
            }
            code <<= 1;
        }

        // Fast 8-bit prefix decode table.
        let mut fast = Box::new([(0u8, 0u8); 256]);
        let mut k = 0usize;
        let mut code: u32 = 0;
        for len in 1..=8usize {
            let n = counts[len - 1] as usize;
            for _ in 0..n {
                let prefix = (code << (8 - len)) as usize;
                let fill = 1usize << (8 - len);
                for entry in fast.iter_mut().skip(prefix).take(fill) {
                    *entry = (symbols[k], len as u8);
                }
                code += 1;
                k += 1;
            }
            code <<= 1;
        }

        // Primary LOOKUP_BITS-wide decode table. Symbol 0 with length 0 is
        // the "no short code" sentinel; a real entry always has length ≥ 1 in
        // bits 8..12, so the sentinel is unambiguous.
        let mut lut = vec![0u16; 1 << LOOKUP_BITS].into_boxed_slice();
        let mut k = 0usize;
        let mut code: u32 = 0;
        for len in 1..=(LOOKUP_BITS as usize) {
            let n = counts[len - 1] as usize;
            for _ in 0..n {
                let prefix = (code << (LOOKUP_BITS as usize - len)) as usize;
                let fill = 1usize << (LOOKUP_BITS as usize - len);
                let entry = ((len as u16) << 8) | symbols[k] as u16;
                lut[prefix..prefix + fill].fill(entry);
                code += 1;
                k += 1;
            }
            code <<= 1;
        }

        Ok(Self {
            counts,
            symbols: symbols.to_vec(),
            enc_code,
            enc_len,
            fast,
            lut,
            min_code,
            max_code,
            val_ptr,
        })
    }

    /// Per-length code counts (the DHT `BITS` array).
    pub fn counts(&self) -> &[u8; MAX_CODE_LEN] {
        &self.counts
    }

    /// Symbols in canonical order (the DHT `HUFFVAL` array).
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// Encodes one symbol into the writer.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: u8) -> CodecResult<()> {
        let len = self.enc_len[symbol as usize];
        if len == 0 {
            return Err(CodecError::InvalidArgument {
                detail: format!("symbol {symbol} not present in Huffman table"),
            });
        }
        w.put_bits(self.enc_code[symbol as usize] as u32, len as u32);
        Ok(())
    }

    /// Code length in bits for `symbol`, or `None` if absent. Used by the
    /// FPGA timing model to count entropy bits without re-encoding.
    #[inline]
    pub fn code_len(&self, symbol: u8) -> Option<u32> {
        match self.enc_len[symbol as usize] {
            0 => None,
            l => Some(l as u32),
        }
    }

    /// Decodes one symbol from the reader.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> CodecResult<u8> {
        // Fast path: 8-bit prefix lookup.
        let prefix = r.peek_bits(8)?;
        let (sym, len) = self.fast[prefix as usize];
        if len != 0 {
            r.consume(len as u32)?;
            return Ok(sym);
        }
        // Slow canonical path for codes of 9..=16 bits.
        let code = r.peek_bits(MAX_CODE_LEN as u32)? as i32;
        for len in 9..=MAX_CODE_LEN {
            let c = code >> (MAX_CODE_LEN - len);
            if self.max_code[len] >= 0 && c <= self.max_code[len] && c >= self.min_code[len] {
                let idx = self.val_ptr[len] + (c - self.min_code[len]) as usize;
                let sym = self.symbols[idx];
                r.consume(len as u32)?;
                return Ok(sym);
            }
        }
        Err(CodecError::InvalidHuffmanCode)
    }

    /// Resolves one symbol from a 64-bit MSB-aligned reservoir peek,
    /// returning `(symbol, code_length)` without consuming anything.
    ///
    /// The primary [`LOOKUP_BITS`]-wide table covers every code of
    /// ≤ `LOOKUP_BITS` bits (including all codes in the standard Annex K
    /// tables except the long AC tail); the canonical walk handles the rest.
    /// By canonical-prefix uniqueness this returns exactly what
    /// [`HuffTable::decode`] would for the same bit pattern.
    #[inline]
    pub fn resolve(&self, peeked: u64) -> CodecResult<(u8, u32)> {
        let entry = self.lut[(peeked >> (64 - LOOKUP_BITS)) as usize];
        if entry != 0 {
            return Ok(((entry & 0xFF) as u8, (entry >> 8) as u32));
        }
        let code = (peeked >> 48) as i32;
        for len in (LOOKUP_BITS as usize + 1)..=MAX_CODE_LEN {
            let c = code >> (MAX_CODE_LEN - len);
            if self.max_code[len] >= 0 && c <= self.max_code[len] && c >= self.min_code[len] {
                let idx = self.val_ptr[len] + (c - self.min_code[len]) as usize;
                return Ok((self.symbols[idx], len as u32));
            }
        }
        Err(CodecError::InvalidHuffmanCode)
    }
}

// ---------------------------------------------------------------------------
// Magnitude (SSSS) coding helpers — T.81 F.1.2.1
// ---------------------------------------------------------------------------

/// Number of magnitude bits needed for `value` (the JPEG SSSS category).
#[inline]
pub fn magnitude_category(value: i32) -> u32 {
    let v = value.unsigned_abs();
    32 - v.leading_zeros()
}

/// Encodes a signed value in the JPEG magnitude representation: negative
/// values are stored as `value - 1` truncated to `ssss` bits.
#[inline]
pub fn encode_magnitude(value: i32, ssss: u32) -> u32 {
    if value >= 0 {
        value as u32
    } else {
        (value - 1) as u32 & ((1u32 << ssss) - 1)
    }
}

/// Decodes a JPEG magnitude-coded value of category `ssss`.
#[inline]
pub fn decode_magnitude(bits: u32, ssss: u32) -> i32 {
    if ssss == 0 {
        return 0;
    }
    let half = 1u32 << (ssss - 1);
    if bits >= half {
        bits as i32
    } else {
        bits as i32 - (1i32 << ssss) + 1
    }
}

/// Branchless [`decode_magnitude`] for `ssss` in `1..=15`: the sign test
/// becomes an arithmetic-shift mask so the hot loop carries no
/// data-dependent branch per coefficient.
#[inline]
pub fn extend_magnitude(bits: u32, ssss: u32) -> i32 {
    debug_assert!((1..=15).contains(&ssss));
    let v = bits as i32;
    let half = 1i32 << (ssss - 1);
    // v < half  →  mask = -1  →  v - (1 << ssss) + 1; otherwise v unchanged.
    v + (((v - half) >> 31) & ((-1i32 << ssss) + 1))
}

// ---------------------------------------------------------------------------
// Standard Annex K.3 tables
// ---------------------------------------------------------------------------

/// Standard luminance DC table (K.3.3.1).
pub fn std_dc_luma() -> HuffTable {
    let counts = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0];
    let symbols = [0u8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
    HuffTable::new(counts, &symbols).expect("standard table is valid")
}

/// Standard chrominance DC table (K.3.3.1).
pub fn std_dc_chroma() -> HuffTable {
    let counts = [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0];
    let symbols = [0u8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
    HuffTable::new(counts, &symbols).expect("standard table is valid")
}

/// Standard luminance AC table (K.3.3.2).
pub fn std_ac_luma() -> HuffTable {
    let counts = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D];
    let symbols: [u8; 162] = [
        0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61,
        0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08, 0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52,
        0xD1, 0xF0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25,
        0x26, 0x27, 0x28, 0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45,
        0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63, 0x64,
        0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A, 0x83,
        0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99,
        0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
        0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3,
        0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8,
        0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
    ];
    HuffTable::new(counts, &symbols).expect("standard table is valid")
}

/// Standard chrominance AC table (K.3.3.2).
pub fn std_ac_chroma() -> HuffTable {
    let counts = [0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77];
    let symbols: [u8; 162] = [
        0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61,
        0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33,
        0x52, 0xF0, 0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34, 0xE1, 0x25, 0xF1, 0x17, 0x18,
        0x19, 0x1A, 0x26, 0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44,
        0x45, 0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63,
        0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A,
        0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97,
        0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
        0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA,
        0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7,
        0xE8, 0xE9, 0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
    ];
    HuffTable::new(counts, &symbols).expect("standard table is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwriter_pads_with_ones() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1011_1111]);
    }

    #[test]
    fn bitwriter_stuffs_ff() {
        let mut w = BitWriter::new();
        w.put_bits(0xFF, 8);
        w.put_bits(0xAB, 8);
        assert_eq!(w.finish(), vec![0xFF, 0x00, 0xAB]);
    }

    #[test]
    fn bitreader_unstuffs_ff() {
        let data = [0xFFu8, 0x00, 0xAB];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert_eq!(r.get_bits(8).unwrap(), 0xAB);
    }

    #[test]
    fn bitreader_stops_at_marker() {
        let data = [0b1010_0000u8, 0xFF, 0xD9];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(4).unwrap(), 0b1010);
        // peek beyond end fills with ones; no crash at the marker.
        let peeked = r.peek_bits(8).unwrap();
        assert_eq!(peeked & 0x0F, 0x0F);
    }

    #[test]
    fn bit_io_roundtrip_many_widths() {
        let mut w = BitWriter::new();
        let values: Vec<(u32, u32)> = (1..=16)
            .map(|len| ((0x5A5A_5A5A >> (32 - len)) & ((1 << len) - 1), len))
            .collect();
        for &(v, l) in &values {
            w.put_bits(v, l);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, l) in &values {
            assert_eq!(r.get_bits(l).unwrap(), v, "width {l}");
        }
    }

    #[test]
    fn std_tables_build() {
        for t in [
            std_dc_luma(),
            std_dc_chroma(),
            std_ac_luma(),
            std_ac_chroma(),
        ] {
            let total: usize = t.counts().iter().map(|&c| c as usize).sum();
            assert_eq!(total, t.symbols().len());
        }
        assert_eq!(std_ac_luma().symbols().len(), 162);
        assert_eq!(std_ac_chroma().symbols().len(), 162);
    }

    #[test]
    fn encode_decode_all_symbols() {
        for table in [std_dc_luma(), std_ac_luma(), std_ac_chroma()] {
            let mut w = BitWriter::new();
            for &s in table.symbols() {
                table.encode(&mut w, s).unwrap();
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &s in table.symbols() {
                assert_eq!(table.decode(&mut r).unwrap(), s);
            }
        }
    }

    #[test]
    fn decode_rejects_absent_code() {
        // DC luma has 12 symbols; an all-ones 16-bit pattern is not a code.
        let table = std_dc_luma();
        let data = [0xFFu8, 0x00, 0xFF, 0x00];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_bits(0).unwrap(), 0);
        assert!(matches!(
            table.decode(&mut r),
            Err(CodecError::InvalidHuffmanCode)
        ));
    }

    #[test]
    fn encode_rejects_absent_symbol() {
        let table = std_dc_luma();
        let mut w = BitWriter::new();
        assert!(table.encode(&mut w, 200).is_err());
    }

    #[test]
    fn table_validation() {
        // Count/symbol mismatch.
        let counts = [0u8; 16];
        assert!(HuffTable::new(counts, &[1, 2]).is_err());
        // Empty.
        assert!(HuffTable::new(counts, &[]).is_err());
        // Duplicate symbol.
        let mut c = [0u8; 16];
        c[1] = 2;
        assert!(HuffTable::new(c, &[7, 7]).is_err());
        // Overfull level: 3 codes of length 1 cannot exist.
        let mut c = [0u8; 16];
        c[0] = 3;
        assert!(HuffTable::new(c, &[1, 2, 3]).is_err());
    }

    #[test]
    fn magnitude_category_values() {
        assert_eq!(magnitude_category(0), 0);
        assert_eq!(magnitude_category(1), 1);
        assert_eq!(magnitude_category(-1), 1);
        assert_eq!(magnitude_category(2), 2);
        assert_eq!(magnitude_category(-3), 2);
        assert_eq!(magnitude_category(255), 8);
        assert_eq!(magnitude_category(-1024), 11);
    }

    #[test]
    fn magnitude_roundtrip() {
        for v in -2047i32..=2047 {
            let ssss = magnitude_category(v);
            let bits = encode_magnitude(v, ssss);
            assert_eq!(decode_magnitude(bits, ssss), v, "value {v}");
        }
    }

    #[test]
    fn code_len_reports_presence() {
        let t = std_dc_luma();
        assert!(t.code_len(0).is_some());
        assert!(t.code_len(11).is_some());
        assert_eq!(t.code_len(200), None);
    }

    #[test]
    fn extend_matches_decode_magnitude() {
        for ssss in 1u32..=15 {
            for bits in 0..(1u32 << ssss) {
                assert_eq!(
                    extend_magnitude(bits, ssss),
                    decode_magnitude(bits, ssss),
                    "bits {bits:#b} ssss {ssss}"
                );
            }
        }
    }

    #[test]
    fn resolve_matches_decode_for_all_symbols() {
        for table in [
            std_dc_luma(),
            std_dc_chroma(),
            std_ac_luma(),
            std_ac_chroma(),
        ] {
            for &s in table.symbols() {
                let mut w = BitWriter::new();
                table.encode(&mut w, s).unwrap();
                let bytes = w.finish();
                let mut cur = BitCursor::new(&bytes);
                cur.refill();
                let (sym, len) = table.resolve(cur.peek()).unwrap();
                assert_eq!(sym, s);
                assert_eq!(len, table.code_len(s).unwrap());
            }
        }
    }

    #[test]
    fn resolve_rejects_absent_code() {
        let table = std_dc_luma();
        assert!(matches!(
            table.resolve(u64::MAX),
            Err(CodecError::InvalidHuffmanCode)
        ));
    }

    #[test]
    fn cursor_matches_reader_bit_for_bit() {
        // A stream with stuffed 0xFF bytes, clean runs, and a trailing marker.
        let mut w = BitWriter::new();
        for i in 0..200u32 {
            w.put_bits(i.wrapping_mul(2654435761) & 0x7FF, 11);
            if i % 7 == 0 {
                w.put_bits(0xFF, 8); // force stuffing
            }
        }
        let mut bytes = w.finish();
        bytes.extend_from_slice(&[0xFF, 0xD9]); // terminating marker
        let mut r = BitReader::new(&bytes);
        let mut c = BitCursor::new(&bytes);
        let mut drained = 0u32;
        loop {
            c.refill();
            let want = r.peek_bits(16).unwrap();
            let got = (c.peek() >> 48) as u32;
            assert_eq!(got, want, "peek mismatch after {drained} bits");
            let step = 1 + (drained % 13);
            if r.get_bits(step).is_err() {
                assert!(c.consume(step).is_err());
                break;
            }
            c.consume(step).unwrap();
            drained += step;
        }
    }

    #[test]
    fn cursor_bulk_refill_skips_no_stuffing() {
        // 0xFF 0x00 pairs must decode as single 0xFF bytes through the bulk
        // word loads as well as the byte tail.
        let data = [0x12u8, 0x34, 0x56, 0x78, 0xFF, 0x00, 0x9A, 0xBC, 0xDE];
        let mut c = BitCursor::new(&data);
        c.refill();
        assert_eq!(c.bits_left(), 64);
        assert_eq!(c.peek(), 0x1234_5678_FF9A_BCDE);
    }

    #[test]
    fn cursor_stops_at_marker_and_one_fills() {
        let data = [0xA5u8, 0xFF, 0xD0];
        let mut c = BitCursor::new(&data);
        c.refill();
        assert_eq!(c.bits_left(), 8);
        assert_eq!(c.peek() >> 56, 0xA5);
        assert_eq!(c.peek() & 0x00FF_FFFF_FFFF_FFFF, 0x00FF_FFFF_FFFF_FFFF);
        c.consume(8).unwrap();
        assert!(c.consume(1).is_err());
    }

    #[test]
    fn long_codes_take_slow_path() {
        // AC luma has many 16-bit codes; encode one and decode it.
        let t = std_ac_luma();
        // Find a symbol with a 16-bit code.
        let sym = *t
            .symbols()
            .iter()
            .find(|&&s| t.code_len(s) == Some(16))
            .expect("AC luma has 16-bit codes");
        let mut w = BitWriter::new();
        t.encode(&mut w, sym).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(t.decode(&mut r).unwrap(), sym);
    }
}

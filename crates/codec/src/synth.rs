//! Deterministic synthetic image generation.
//!
//! The paper evaluates on ILSVRC2012 (avg ≈ 500×375 colour JPEGs) and MNIST
//! (28×28 grayscale). Neither dataset ships with this repository, so
//! `dlb-storage` synthesises look-alikes: images with photographic-ish
//! spectral content (smooth gradients + textured regions + edges) so that
//! JPEG compression ratios, entropy-bit counts and decode costs land in the
//! same regime as real photos.

use crate::pixel::{clamp_u8, ColorSpace, Image};

/// Style of synthetic content to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthStyle {
    /// Smooth low-frequency gradients — compresses heavily.
    Smooth,
    /// Photographic mix: gradients, a few shapes, mild noise. The default
    /// ILSVRC-like content.
    Photo,
    /// High-frequency noise — worst case for entropy coding.
    Noisy,
    /// Handwritten-digit-like blobs on dark background (MNIST-like).
    Digit,
}

/// Deterministic xorshift64* generator (no external RNG needed here; the
/// dataset builders seed one generator per image id for reproducibility).
#[derive(Debug, Clone)]
pub struct SynthRng(u64);

impl SynthRng {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        Self(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in [0, 1).
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform integer in [0, bound).
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as u32
    }
}

/// Generates one synthetic image deterministically from `seed`.
pub fn generate(width: u32, height: u32, style: SynthStyle, seed: u64) -> Image {
    match style {
        SynthStyle::Digit => generate_digit(width, height, seed),
        _ => generate_color(width, height, style, seed),
    }
}

fn generate_color(width: u32, height: u32, style: SynthStyle, seed: u64) -> Image {
    let mut rng = SynthRng::new(seed);
    let mut img = Image::new(width, height, ColorSpace::Rgb).expect("valid dims");

    // Base gradient parameters.
    let base = [
        rng.next_below(200) as f32 + 20.0,
        rng.next_below(200) as f32 + 20.0,
        rng.next_below(200) as f32 + 20.0,
    ];
    let gx = [
        rng.next_f32() - 0.5,
        rng.next_f32() - 0.5,
        rng.next_f32() - 0.5,
    ];
    let gy = [
        rng.next_f32() - 0.5,
        rng.next_f32() - 0.5,
        rng.next_f32() - 0.5,
    ];
    let freq = 0.02 + rng.next_f32() * 0.08;
    let noise_amp: f32 = match style {
        SynthStyle::Smooth => 0.0,
        SynthStyle::Photo => 24.0,
        SynthStyle::Noisy => 64.0,
        SynthStyle::Digit => unreachable!(),
    };

    // A few random rectangles ("objects") for Photo style.
    let nrects = if style == SynthStyle::Photo {
        6 + rng.next_below(6)
    } else {
        0
    };
    let rects: Vec<(u32, u32, u32, u32, [f32; 3])> = (0..nrects)
        .map(|_| {
            let x = rng.next_below(width);
            let y = rng.next_below(height);
            let w = 1 + rng.next_below(width / 2 + 1);
            let h = 1 + rng.next_below(height / 2 + 1);
            let col = [
                rng.next_below(256) as f32,
                rng.next_below(256) as f32,
                rng.next_below(256) as f32,
            ];
            (x, y, w, h, col)
        })
        .collect();

    for y in 0..height {
        for x in 0..width {
            let mut px = [0f32; 3];
            for ch in 0..3 {
                let mut v = base[ch]
                    + gx[ch] * x as f32 * 0.5
                    + gy[ch] * y as f32 * 0.5
                    + 30.0 * ((x as f32 * freq).sin() * (y as f32 * freq * 0.7).cos());
                for &(rx, ry, rw, rh, col) in &rects {
                    if x >= rx && x < rx.saturating_add(rw) && y >= ry && y < ry.saturating_add(rh)
                    {
                        v = 0.6 * v + 0.4 * col[ch];
                    }
                }
                if noise_amp > 0.0 {
                    v += (SynthRng::new(
                        seed ^ ((y as u64) << 32) ^ (x as u64) ^ ((ch as u64) << 60),
                    )
                    .next_f32()
                        - 0.5)
                        * noise_amp;
                }
                px[ch] = v;
            }
            img.set_pixel(x, y, [clamp_u8(px[0]), clamp_u8(px[1]), clamp_u8(px[2])]);
        }
    }
    img
}

fn generate_digit(width: u32, height: u32, seed: u64) -> Image {
    let mut rng = SynthRng::new(seed);
    let mut img = Image::new(width, height, ColorSpace::Gray).expect("valid dims");
    // A handful of bright strokes modelled as thick line segments.
    let strokes = 2 + rng.next_below(3);
    let mut segs = Vec::new();
    for _ in 0..strokes {
        let x0 = rng.next_below(width) as f32;
        let y0 = rng.next_below(height) as f32;
        let x1 = rng.next_below(width) as f32;
        let y1 = rng.next_below(height) as f32;
        let thick = 1.0 + rng.next_f32() * (width.min(height) as f32 / 8.0);
        segs.push((x0, y0, x1, y1, thick));
    }
    for y in 0..height {
        for x in 0..width {
            let mut v = 0f32;
            for &(x0, y0, x1, y1, thick) in &segs {
                let d = point_segment_dist(x as f32, y as f32, x0, y0, x1, y1);
                if d < thick {
                    v = v.max(255.0 * (1.0 - d / thick).powf(0.5));
                }
            }
            img.set_pixel(x, y, [clamp_u8(v), 0, 0]);
        }
    }
    img
}

fn point_segment_dist(px: f32, py: f32, x0: f32, y0: f32, x1: f32, y1: f32) -> f32 {
    let dx = x1 - x0;
    let dy = y1 - y0;
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((px - x0) * dx + (py - y0) * dy) / len2).clamp(0.0, 1.0)
    };
    let cx = x0 + t * dx;
    let cy = y0 + t * dy;
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpeg::encoder::JpegEncoder;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(64, 48, SynthStyle::Photo, 42);
        let b = generate(64, 48, SynthStyle::Photo, 42);
        assert_eq!(a.data(), b.data());
        let c = generate(64, 48, SynthStyle::Photo, 43);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn digit_style_is_grayscale() {
        let img = generate(28, 28, SynthStyle::Digit, 7);
        assert_eq!(img.color(), ColorSpace::Gray);
        // Strokes produce some bright pixels, background stays dark.
        let bright = img.data().iter().filter(|&&v| v > 128).count();
        assert!(bright > 0, "no stroke pixels");
        assert!(bright < img.byte_len(), "no background");
    }

    #[test]
    fn color_styles_are_rgb() {
        for style in [SynthStyle::Smooth, SynthStyle::Photo, SynthStyle::Noisy] {
            let img = generate(32, 32, style, 1);
            assert_eq!(img.color(), ColorSpace::Rgb);
        }
    }

    #[test]
    fn compressed_sizes_order_by_style() {
        // Smooth < Photo < Noisy after JPEG encoding — the property that makes
        // the synthetic dataset a fair stand-in for real photographs.
        let enc = JpegEncoder::new(85).unwrap();
        let smooth = enc
            .encode(&generate(128, 96, SynthStyle::Smooth, 5))
            .unwrap();
        let photo = enc
            .encode(&generate(128, 96, SynthStyle::Photo, 5))
            .unwrap();
        let noisy = enc
            .encode(&generate(128, 96, SynthStyle::Noisy, 5))
            .unwrap();
        assert!(
            smooth.len() < photo.len() && photo.len() < noisy.len(),
            "sizes: smooth={} photo={} noisy={}",
            smooth.len(),
            photo.len(),
            noisy.len()
        );
    }

    #[test]
    fn rng_ranges() {
        let mut rng = SynthRng::new(123);
        for _ in 0..1000 {
            let f = rng.next_f32();
            assert!((0.0..1.0).contains(&f));
            assert!(rng.next_below(10) < 10);
        }
        // Zero seed must not freeze the generator.
        let mut z = SynthRng::new(0);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn photo_images_have_structure() {
        let img = generate(96, 96, SynthStyle::Photo, 11);
        // Variance should be non-trivial (not a constant image).
        let mean: f64 = img.data().iter().map(|&v| v as f64).sum::<f64>() / img.byte_len() as f64;
        let var: f64 = img
            .data()
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / img.byte_len() as f64;
        assert!(var > 100.0, "variance {var}");
    }
}

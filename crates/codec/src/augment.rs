//! Data-augmentation operators.
//!
//! The paper deliberately keeps augmentation *off* the FPGA ("we offload the
//! decoding and the resizing to FPGAs and leave the data augmentation to
//! GPU", §3.1) — these ops run on the compute-engine side. They are
//! implemented here so the end-to-end functional pipeline produces the same
//! tensors regardless of which backend decoded the bytes.

use crate::error::{CodecError, CodecResult};
use crate::pixel::Image;

/// A rectangular crop region in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CropRect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width of the crop.
    pub width: u32,
    /// Height of the crop.
    pub height: u32,
}

/// Extracts a crop; the rectangle must lie fully inside the image.
pub fn crop(src: &Image, rect: CropRect) -> CodecResult<Image> {
    let (w, h) = (src.width(), src.height());
    if rect.width == 0
        || rect.height == 0
        || rect.x.checked_add(rect.width).is_none_or(|e| e > w)
        || rect.y.checked_add(rect.height).is_none_or(|e| e > h)
    {
        return Err(CodecError::InvalidArgument {
            detail: format!(
                "crop {}x{}+{}+{} outside {}x{}",
                rect.width, rect.height, rect.x, rect.y, w, h
            ),
        });
    }
    let c = src.channels();
    let sstride = src.stride();
    let dstride = rect.width as usize * c;
    let mut out = vec![0u8; dstride * rect.height as usize];
    for row in 0..rect.height as usize {
        let s = (rect.y as usize + row) * sstride + rect.x as usize * c;
        let d = row * dstride;
        out[d..d + dstride].copy_from_slice(&src.data()[s..s + dstride]);
    }
    Image::from_vec(rect.width, rect.height, src.color(), out)
}

/// Center crop of the given size.
pub fn center_crop(src: &Image, width: u32, height: u32) -> CodecResult<Image> {
    if width > src.width() || height > src.height() {
        return Err(CodecError::InvalidArgument {
            detail: format!(
                "center crop {width}x{height} larger than image {}x{}",
                src.width(),
                src.height()
            ),
        });
    }
    crop(
        src,
        CropRect {
            x: (src.width() - width) / 2,
            y: (src.height() - height) / 2,
            width,
            height,
        },
    )
}

/// Horizontal mirror (the classic training-time augmentation).
pub fn hflip(src: &Image) -> Image {
    let c = src.channels();
    let w = src.width() as usize;
    let h = src.height() as usize;
    let mut out = vec![0u8; src.byte_len()];
    let stride = src.stride();
    for y in 0..h {
        for x in 0..w {
            let s = y * stride + x * c;
            let d = y * stride + (w - 1 - x) * c;
            out[d..d + c].copy_from_slice(&src.data()[s..s + c]);
        }
    }
    Image::from_vec(src.width(), src.height(), src.color(), out).expect("same dims")
}

/// Converts interleaved u8 pixels into planar (CHW) f32, subtracting a
/// per-channel mean and dividing by a per-channel scale — the tensor layout
/// the compute engines consume.
pub fn to_tensor_chw(src: &Image, mean: &[f32], scale: &[f32]) -> CodecResult<Vec<f32>> {
    let c = src.channels();
    if mean.len() != c || scale.len() != c {
        return Err(CodecError::InvalidArgument {
            detail: format!(
                "mean/scale lengths ({}, {}) must equal channels ({c})",
                mean.len(),
                scale.len()
            ),
        });
    }
    if scale.contains(&0.0) {
        return Err(CodecError::InvalidArgument {
            detail: "zero scale".into(),
        });
    }
    let w = src.width() as usize;
    let h = src.height() as usize;
    let plane = w * h;
    let mut out = vec![0f32; plane * c];
    for (i, px) in src.data().chunks_exact(c).enumerate() {
        for ch in 0..c {
            out[ch * plane + i] = (px[ch] as f32 - mean[ch]) / scale[ch];
        }
    }
    Ok(out)
}

/// Deterministic "random" crop position derived from a seed — used by the
/// training pipeline so runs are reproducible across backends.
pub fn seeded_crop_rect(seed: u64, src_w: u32, src_h: u32, w: u32, h: u32) -> CropRect {
    let max_x = src_w.saturating_sub(w);
    let max_y = src_h.saturating_sub(h);
    // SplitMix64 to decorrelate the two coordinates.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let r = z ^ (z >> 31);
    CropRect {
        x: if max_x == 0 {
            0
        } else {
            (r as u32) % (max_x + 1)
        },
        y: if max_y == 0 {
            0
        } else {
            ((r >> 32) as u32) % (max_y + 1)
        },
        width: w.min(src_w),
        height: h.min(src_h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::{ColorSpace, Image};

    fn numbered(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h, ColorSpace::Rgb).unwrap();
        for y in 0..h {
            for x in 0..w {
                img.set_pixel(x, y, [x as u8, y as u8, (x + y) as u8]);
            }
        }
        img
    }

    #[test]
    fn crop_extracts_expected_region() {
        let img = numbered(10, 10);
        let out = crop(
            &img,
            CropRect {
                x: 2,
                y: 3,
                width: 4,
                height: 5,
            },
        )
        .unwrap();
        assert_eq!(out.width(), 4);
        assert_eq!(out.height(), 5);
        assert_eq!(out.pixel(0, 0), img.pixel(2, 3));
        assert_eq!(out.pixel(3, 4), img.pixel(5, 7));
    }

    #[test]
    fn crop_rejects_out_of_bounds() {
        let img = numbered(10, 10);
        for rect in [
            CropRect {
                x: 8,
                y: 0,
                width: 4,
                height: 4,
            },
            CropRect {
                x: 0,
                y: 8,
                width: 4,
                height: 4,
            },
            CropRect {
                x: 0,
                y: 0,
                width: 0,
                height: 4,
            },
            CropRect {
                x: 0,
                y: 0,
                width: 11,
                height: 1,
            },
        ] {
            assert!(crop(&img, rect).is_err(), "{rect:?}");
        }
    }

    #[test]
    fn center_crop_is_centered() {
        let img = numbered(10, 10);
        let out = center_crop(&img, 4, 4).unwrap();
        assert_eq!(out.pixel(0, 0), img.pixel(3, 3));
        assert!(center_crop(&img, 11, 4).is_err());
    }

    #[test]
    fn hflip_mirrors_and_is_involution() {
        let img = numbered(7, 3);
        let flipped = hflip(&img);
        assert_eq!(flipped.pixel(0, 0), img.pixel(6, 0));
        assert_eq!(flipped.pixel(6, 2), img.pixel(0, 2));
        assert_eq!(hflip(&flipped).data(), img.data());
    }

    #[test]
    fn to_tensor_layout_and_normalisation() {
        let mut img = Image::new(2, 1, ColorSpace::Rgb).unwrap();
        img.set_pixel(0, 0, [10, 20, 30]);
        img.set_pixel(1, 0, [50, 60, 70]);
        let t = to_tensor_chw(&img, &[10.0, 20.0, 30.0], &[2.0, 2.0, 2.0]).unwrap();
        // CHW: R plane then G plane then B plane.
        assert_eq!(t, vec![0.0, 20.0, 0.0, 20.0, 0.0, 20.0]);
    }

    #[test]
    fn to_tensor_validates_params() {
        let img = numbered(2, 2);
        assert!(to_tensor_chw(&img, &[0.0; 2], &[1.0; 3]).is_err());
        assert!(to_tensor_chw(&img, &[0.0; 3], &[1.0, 0.0, 1.0]).is_err());
    }

    #[test]
    fn seeded_crop_is_deterministic_and_in_bounds() {
        for seed in 0..100u64 {
            let r1 = seeded_crop_rect(seed, 256, 256, 224, 224);
            let r2 = seeded_crop_rect(seed, 256, 256, 224, 224);
            assert_eq!(r1, r2);
            assert!(r1.x + r1.width <= 256);
            assert!(r1.y + r1.height <= 256);
        }
        // Degenerate: crop as large as image.
        let r = seeded_crop_rect(7, 224, 224, 224, 224);
        assert_eq!((r.x, r.y), (0, 0));
    }

    #[test]
    fn seeded_crops_vary_with_seed() {
        let positions: std::collections::HashSet<(u32, u32)> = (0..50)
            .map(|s| {
                let r = seeded_crop_rect(s, 256, 256, 224, 224);
                (r.x, r.y)
            })
            .collect();
        assert!(
            positions.len() > 10,
            "only {} unique positions",
            positions.len()
        );
    }
}

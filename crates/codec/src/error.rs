//! Error types shared by every codec stage.

use std::fmt;

/// Errors produced while encoding, decoding or transforming images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The byte stream ended before a complete syntactic element was read.
    UnexpectedEof {
        /// What the parser was trying to read when the stream ended.
        context: &'static str,
    },
    /// A JFIF/JPEG marker was malformed or appeared out of order.
    InvalidMarker {
        /// The offending marker byte (the byte following `0xFF`).
        marker: u8,
        /// Parser context at the point of failure.
        context: &'static str,
    },
    /// A segment carried a structurally invalid payload.
    MalformedSegment {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A Huffman code was read that no table entry matches.
    InvalidHuffmanCode,
    /// The image dimensions are zero or exceed supported bounds.
    UnsupportedDimensions {
        /// Requested width in pixels.
        width: u32,
        /// Requested height in pixels.
        height: u32,
    },
    /// A feature outside the supported baseline subset was requested.
    Unsupported {
        /// Which feature was requested.
        feature: String,
    },
    /// An operation received arguments inconsistent with the image
    /// (e.g. a crop rectangle outside the bounds).
    InvalidArgument {
        /// Description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { context } => {
                write!(f, "unexpected end of stream while reading {context}")
            }
            CodecError::InvalidMarker { marker, context } => {
                write!(f, "invalid marker 0xFF{marker:02X} in {context}")
            }
            CodecError::MalformedSegment { detail } => {
                write!(f, "malformed segment: {detail}")
            }
            CodecError::InvalidHuffmanCode => write!(f, "invalid Huffman code in entropy stream"),
            CodecError::UnsupportedDimensions { width, height } => {
                write!(f, "unsupported image dimensions {width}x{height}")
            }
            CodecError::Unsupported { feature } => write!(f, "unsupported feature: {feature}"),
            CodecError::InvalidArgument { detail } => write!(f, "invalid argument: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience alias used across the codec.
pub type CodecResult<T> = Result<T, CodecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<(CodecError, &str)> = vec![
            (
                CodecError::UnexpectedEof { context: "DHT" },
                "unexpected end of stream while reading DHT",
            ),
            (
                CodecError::InvalidMarker {
                    marker: 0xC2,
                    context: "frame header",
                },
                "invalid marker 0xFFC2 in frame header",
            ),
            (CodecError::InvalidHuffmanCode, "invalid Huffman code"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should contain {needle}"
            );
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CodecError::InvalidHuffmanCode,
            CodecError::InvalidHuffmanCode
        );
        assert_ne!(
            CodecError::UnexpectedEof { context: "a" },
            CodecError::UnexpectedEof { context: "b" }
        );
    }
}

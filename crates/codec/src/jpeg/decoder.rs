//! Baseline JPEG decoder.
//!
//! This is the exact computation DLBooster's FPGA decoder performs (paper
//! Fig. 4): marker/metadata parsing, Huffman entropy decode, dequantisation,
//! inverse DCT, chroma upsampling and YCbCr→RGB conversion. The simulated
//! FPGA lanes in `dlb-fpga` run this code in functional mode; the CPU
//! baseline backend in `dlb-backends` runs it on worker threads.
//!
//! Beyond the decoded [`Image`], the decoder reports [`DecodeStats`] — MCU
//! counts and entropy-bit totals — which the discrete-event timing model uses
//! to charge cycle-accurate costs to the Huffman / iDCT / resize pipeline
//! stages without re-running the arithmetic.

use super::{marker, ComponentSpec, FrameInfo};
use crate::dct::{idct_8x8, idct_8x8_dequant, idct_8x8_dequant_u8, BLOCK_LEN, ZIGZAG};
use crate::error::{CodecError, CodecResult};
use crate::huffman::{decode_magnitude, extend_magnitude, BitCursor, BitReader, HuffTable};
use crate::pixel::{clamp_u8, upsample_dup2_row, ycbcr_rows_to_rgb, ColorSpace, Image};
use crate::quant::QuantTable;
use rayon::prelude::*;
use std::time::Instant;

/// Minimum MCUs a parallel decode task should cover. Streams encoded with a
/// tiny restart interval (the degenerate case: one MCU per segment) produce
/// hundreds of segments whose per-task overhead — a `Vec` allocation, pool
/// hand-off, cold scratch — used to outweigh the entropy work. Adjacent
/// segments are coalesced into chunks of at least this many MCUs; within a
/// chunk they still decode back-to-back with independent restart state.
const MIN_PARALLEL_CHUNK_MCUS: u64 = 32;

/// Upper bound on scan components in baseline JPEG as parsed here (1 or 3);
/// sized to 4 so the DC predictors fit in a stack array.
const MAX_COMPONENTS: usize = 4;

/// Work statistics gathered during a decode, consumed by the FPGA timing
/// model (`dlb-fpga::timing`) and — for the `*_ns` stage timers — by the
/// `codec.*` telemetry counters the backends export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeStats {
    /// Number of MCUs in the scan.
    pub mcus: u64,
    /// Total 8×8 blocks entropy-decoded.
    pub blocks: u64,
    /// Total bits consumed from the entropy-coded segment.
    pub entropy_bits: u64,
    /// Non-zero coefficients reconstructed (drives iDCT sparsity models).
    pub nonzero_coeffs: u64,
    /// Restart segments encountered (1 if no DRI).
    pub restart_segments: u32,
    /// Wall nanoseconds in Huffman entropy decoding. Only populated when
    /// [`JpegDecoder::with_stage_timing`] is enabled; summed across
    /// workers for a parallel decode (so it can exceed wall time).
    pub huffman_ns: u64,
    /// Wall nanoseconds in dequantisation + inverse DCT (same caveats as
    /// [`DecodeStats::huffman_ns`]).
    pub idct_ns: u64,
    /// Wall nanoseconds in chroma upsampling + YCbCr→RGB conversion (the
    /// image-assembly stage; same caveats as [`DecodeStats::huffman_ns`]).
    pub color_ns: u64,
}

impl DecodeStats {
    /// The fields that describe the *work done*, excluding the wall-clock
    /// stage timers — equal for any two decodes of the same stream
    /// regardless of threading, which is what the equivalence tests pin.
    pub fn work(&self) -> (u64, u64, u64, u64, u32) {
        (
            self.mcus,
            self.blocks,
            self.entropy_bits,
            self.nonzero_coeffs,
            self.restart_segments,
        )
    }
}

/// Baseline JPEG decoder.
///
/// The decoder is cheap to construct and `Sync`; one instance can serve
/// any number of threads. [`JpegDecoder::decode`] walks the scan
/// sequentially; [`JpegDecoder::decode_parallel`] entropy-decodes
/// independent restart segments concurrently on the work-stealing pool —
/// the software mirror of the paper's 4-way parallel Huffman unit
/// (Fig. 4) — and is bit-exact with the sequential path.
#[derive(Debug, Default, Clone)]
pub struct JpegDecoder {
    collect_timing: bool,
    reference_idct: bool,
    reference_entropy: bool,
}

/// Everything parsed from the header section (before the entropy scan).
#[derive(Debug)]
struct Headers {
    frame: FrameInfo,
    qtables: [Option<QuantTable>; 4],
    dc_tables: [Option<HuffTable>; 4],
    ac_tables: [Option<HuffTable>; 4],
    /// Offset of the first entropy-coded byte.
    scan_start: usize,
}

impl JpegDecoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables per-stage wall-clock timing: [`DecodeStats::huffman_ns`] /
    /// [`DecodeStats::idct_ns`] are populated. Off by default — the
    /// per-block `Instant` reads cost ~1 % of decode time.
    pub fn with_stage_timing(mut self, on: bool) -> Self {
        self.collect_timing = on;
        self
    }

    /// Forces the direct O(8³) basis-matrix iDCT instead of the fast AAN
    /// transform. For benchmarking and accuracy cross-checks only.
    pub fn with_reference_idct(mut self, on: bool) -> Self {
        self.reference_idct = on;
        self
    }

    /// Forces the original bit-at-a-time Huffman decoder instead of the
    /// reservoir + lookup-table fast path. The two are bit-exact on the
    /// decoded pixels and work counters; this switch exists so equivalence
    /// tests and benchmarks can compare them.
    pub fn with_reference_entropy(mut self, on: bool) -> Self {
        self.reference_entropy = on;
        self
    }

    /// Parses only the JFIF headers, returning the frame geometry. This is
    /// what DLBooster's `DataCollector` calls to build decode cmds without
    /// touching the entropy-coded payload.
    pub fn decode_header(&self, data: &[u8]) -> CodecResult<FrameInfo> {
        parse_headers(data).map(|h| h.frame)
    }

    /// Decodes a complete JFIF stream to an interleaved [`Image`]
    /// (RGB for colour scans, grayscale for single-component scans).
    pub fn decode(&self, data: &[u8]) -> CodecResult<Image> {
        self.decode_with_stats(data).map(|(img, _)| img)
    }

    /// Decodes and additionally reports workload statistics.
    pub fn decode_with_stats(&self, data: &[u8]) -> CodecResult<(Image, DecodeStats)> {
        let headers = parse_headers(data)?;
        decode_scan(data, &headers, self, false)
    }

    /// Decodes with restart segments entropy-decoded **in parallel** on
    /// the work-stealing pool. Bit-exact with [`JpegDecoder::decode`];
    /// falls back to the sequential path when the stream has no restart
    /// interval (nothing independent to split) or the pool has one
    /// worker.
    pub fn decode_parallel(&self, data: &[u8]) -> CodecResult<Image> {
        self.decode_parallel_with_stats(data).map(|(img, _)| img)
    }

    /// [`JpegDecoder::decode_parallel`] plus workload statistics.
    pub fn decode_parallel_with_stats(&self, data: &[u8]) -> CodecResult<(Image, DecodeStats)> {
        let headers = parse_headers(data)?;
        decode_scan(data, &headers, self, true)
    }

    /// Decodes a batch of independent streams concurrently (one pool task
    /// per image, each image decoded sequentially — the throughput-shaped
    /// parallelism the CPU backend's worker pool uses). Results keep
    /// input order; per-image failures do not affect their neighbours.
    pub fn decode_batch(&self, batch: &[&[u8]]) -> Vec<CodecResult<Image>> {
        batch.par_iter().map(|data| self.decode(data)).collect()
    }

    /// [`JpegDecoder::decode_batch`] plus per-image workload statistics,
    /// for callers that export the `codec.*` stage timers.
    pub fn decode_batch_with_stats(
        &self,
        batch: &[&[u8]],
    ) -> Vec<CodecResult<(Image, DecodeStats)>> {
        batch
            .par_iter()
            .map(|data| self.decode_with_stats(data))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Header parsing
// ---------------------------------------------------------------------------

fn read_u16(data: &[u8], pos: usize, context: &'static str) -> CodecResult<u16> {
    data.get(pos..pos + 2)
        .map(|b| u16::from_be_bytes([b[0], b[1]]))
        .ok_or(CodecError::UnexpectedEof { context })
}

fn parse_headers(data: &[u8]) -> CodecResult<Headers> {
    if data.len() < 4 || data[0] != 0xFF || data[1] != marker::SOI {
        return Err(CodecError::MalformedSegment {
            detail: "missing SOI".into(),
        });
    }
    let mut pos = 2usize;
    let mut qtables: [Option<QuantTable>; 4] = [None, None, None, None];
    let mut dc_tables: [Option<HuffTable>; 4] = [None, None, None, None];
    let mut ac_tables: [Option<HuffTable>; 4] = [None, None, None, None];
    let mut frame: Option<FrameInfo> = None;
    let mut restart_interval = 0u16;

    loop {
        // Seek to the next marker, tolerating fill bytes (0xFF runs).
        while pos < data.len() && data[pos] != 0xFF {
            pos += 1;
        }
        while pos < data.len() && data[pos] == 0xFF {
            pos += 1;
        }
        if pos >= data.len() {
            return Err(CodecError::UnexpectedEof {
                context: "marker stream",
            });
        }
        let m = data[pos];
        pos += 1;
        match m {
            marker::EOI => {
                return Err(CodecError::MalformedSegment {
                    detail: "EOI before SOS".into(),
                })
            }
            marker::SOS => {
                let len = read_u16(data, pos, "SOS length")? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(CodecError::UnexpectedEof {
                        context: "SOS payload",
                    })?;
                let mut frame = frame.ok_or_else(|| CodecError::MalformedSegment {
                    detail: "SOS before SOF0".into(),
                })?;
                parse_sos(seg, &mut frame)?;
                frame.restart_interval = restart_interval;
                return Ok(Headers {
                    frame,
                    qtables,
                    dc_tables,
                    ac_tables,
                    scan_start: pos + len,
                });
            }
            marker::SOF0 => {
                let len = read_u16(data, pos, "SOF0 length")? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(CodecError::UnexpectedEof {
                        context: "SOF0 payload",
                    })?;
                frame = Some(parse_sof0(seg)?);
                pos += len;
            }
            0xC1..=0xCF if m != marker::DHT && m != 0xC8 => {
                return Err(CodecError::Unsupported {
                    feature: format!("non-baseline frame marker 0xFF{m:02X}"),
                });
            }
            marker::DQT => {
                let len = read_u16(data, pos, "DQT length")? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(CodecError::UnexpectedEof {
                        context: "DQT payload",
                    })?;
                parse_dqt(seg, &mut qtables)?;
                pos += len;
            }
            marker::DHT => {
                let len = read_u16(data, pos, "DHT length")? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(CodecError::UnexpectedEof {
                        context: "DHT payload",
                    })?;
                parse_dht(seg, &mut dc_tables, &mut ac_tables)?;
                pos += len;
            }
            marker::DRI => {
                let len = read_u16(data, pos, "DRI length")? as usize;
                restart_interval = read_u16(data, pos + 2, "DRI interval")?;
                pos += len;
            }
            // APPn / COM and any other length-prefixed segment: skip.
            0xE0..=0xEF | marker::COM | 0xF0..=0xFD => {
                let len = read_u16(data, pos, "segment length")? as usize;
                pos += len;
            }
            other => {
                return Err(CodecError::InvalidMarker {
                    marker: other,
                    context: "header section",
                });
            }
        }
    }
}

fn parse_sof0(seg: &[u8]) -> CodecResult<FrameInfo> {
    if seg.len() < 6 {
        return Err(CodecError::MalformedSegment {
            detail: "SOF0 too short".into(),
        });
    }
    let precision = seg[0];
    if precision != 8 {
        return Err(CodecError::Unsupported {
            feature: format!("{precision}-bit precision"),
        });
    }
    let height = u16::from_be_bytes([seg[1], seg[2]]) as u32;
    let width = u16::from_be_bytes([seg[3], seg[4]]) as u32;
    let ncomp = seg[5] as usize;
    // Only the two JFIF interpretations exist: 1 component (grayscale) and
    // 3 (YCbCr). A 2-component frame has no defined color model — and the
    // row-based assembler indexes Y/Cb/Cr unconditionally.
    if ncomp != 1 && ncomp != 3 {
        return Err(CodecError::Unsupported {
            feature: format!("{ncomp}-component frame"),
        });
    }
    if seg.len() < 6 + 3 * ncomp {
        return Err(CodecError::MalformedSegment {
            detail: "SOF0 component list truncated".into(),
        });
    }
    if width == 0 || height == 0 {
        return Err(CodecError::UnsupportedDimensions { width, height });
    }
    let mut components = Vec::with_capacity(ncomp);
    for i in 0..ncomp {
        let b = &seg[6 + 3 * i..9 + 3 * i];
        let h = b[1] >> 4;
        let v = b[1] & 0x0F;
        if !(1..=2).contains(&h) || !(1..=2).contains(&v) {
            return Err(CodecError::Unsupported {
                feature: format!("sampling factors {h}x{v}"),
            });
        }
        if b[2] > 3 {
            return Err(CodecError::MalformedSegment {
                detail: format!("component quant slot {}", b[2]),
            });
        }
        components.push(ComponentSpec {
            id: b[0],
            h,
            v,
            qtable: b[2],
            dc_table: 0,
            ac_table: 0,
        });
    }
    Ok(FrameInfo {
        width,
        height,
        components,
        restart_interval: 0,
    })
}

fn parse_sos(seg: &[u8], frame: &mut FrameInfo) -> CodecResult<()> {
    if seg.is_empty() {
        return Err(CodecError::MalformedSegment {
            detail: "empty SOS".into(),
        });
    }
    let ncomp = seg[0] as usize;
    if ncomp != frame.components.len() {
        return Err(CodecError::MalformedSegment {
            detail: format!(
                "SOS has {ncomp} components, frame has {}",
                frame.components.len()
            ),
        });
    }
    if seg.len() < 1 + 2 * ncomp + 3 {
        return Err(CodecError::MalformedSegment {
            detail: "SOS truncated".into(),
        });
    }
    for i in 0..ncomp {
        let id = seg[1 + 2 * i];
        let tables = seg[2 + 2 * i];
        let comp = frame
            .components
            .iter_mut()
            .find(|c| c.id == id)
            .ok_or_else(|| CodecError::MalformedSegment {
                detail: format!("SOS references unknown component id {id}"),
            })?;
        comp.dc_table = tables >> 4;
        comp.ac_table = tables & 0x0F;
        if comp.dc_table > 3 || comp.ac_table > 3 {
            return Err(CodecError::MalformedSegment {
                detail: format!(
                    "SOS table slots dc={} ac={} out of range",
                    comp.dc_table, comp.ac_table
                ),
            });
        }
    }
    Ok(())
}

fn parse_dqt(mut seg: &[u8], qtables: &mut [Option<QuantTable>; 4]) -> CodecResult<()> {
    while !seg.is_empty() {
        let pq = seg[0] >> 4;
        let tq = (seg[0] & 0x0F) as usize;
        if pq != 0 {
            return Err(CodecError::Unsupported {
                feature: "16-bit quantization tables".into(),
            });
        }
        if tq > 3 {
            return Err(CodecError::MalformedSegment {
                detail: format!("DQT slot {tq}"),
            });
        }
        if seg.len() < 65 {
            return Err(CodecError::MalformedSegment {
                detail: "DQT table truncated".into(),
            });
        }
        // Values arrive in zigzag order; store raster order.
        let mut vals = [0u16; BLOCK_LEN];
        for (zz, &raster) in ZIGZAG.iter().enumerate() {
            vals[raster] = seg[1 + zz] as u16;
        }
        qtables[tq] = Some(QuantTable::new(vals)?);
        seg = &seg[65..];
    }
    Ok(())
}

fn parse_dht(
    mut seg: &[u8],
    dc_tables: &mut [Option<HuffTable>; 4],
    ac_tables: &mut [Option<HuffTable>; 4],
) -> CodecResult<()> {
    while !seg.is_empty() {
        if seg.len() < 17 {
            return Err(CodecError::MalformedSegment {
                detail: "DHT header truncated".into(),
            });
        }
        let class = seg[0] >> 4;
        let slot = (seg[0] & 0x0F) as usize;
        if class > 1 || slot > 3 {
            return Err(CodecError::MalformedSegment {
                detail: format!("DHT class {class} slot {slot}"),
            });
        }
        let mut counts = [0u8; 16];
        counts.copy_from_slice(&seg[1..17]);
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        if seg.len() < 17 + total {
            return Err(CodecError::MalformedSegment {
                detail: "DHT symbols truncated".into(),
            });
        }
        let table = HuffTable::new(counts, &seg[17..17 + total])?;
        if class == 0 {
            dc_tables[slot] = Some(table);
        } else {
            ac_tables[slot] = Some(table);
        }
        seg = &seg[17 + total..];
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Restart-segment index
// ---------------------------------------------------------------------------

/// One pre-scan pass over the entropy-coded data, producing the byte
/// range of every restart segment.
///
/// The scan is **stuffing-aware**: a `0xFF 0x00` pair is entropy data
/// (a stuffed `0xFF` byte), never a marker — so a stuffed byte adjacent
/// to a boundary can't be mistaken for (or hide) a restart marker, and
/// each input byte is examined exactly once instead of the old per-
/// boundary linear hunt from the bit-reader's resync position.
///
/// Marker ordering is validated here (`RSTn` must cycle `RST0..RST7`),
/// which is what lets the segments be handed out to pool workers as
/// independent, individually-checkable decode tasks.
fn index_restart_segments(
    scan: &[u8],
    expected_segments: usize,
) -> CodecResult<Vec<(usize, usize)>> {
    let mut segments = Vec::with_capacity(expected_segments);
    let mut seg_start = 0usize;
    let mut p = 0usize;
    while segments.len() + 1 < expected_segments {
        if p + 1 >= scan.len() {
            return Err(CodecError::UnexpectedEof {
                context: "restart marker",
            });
        }
        if scan[p] != 0xFF {
            p += 1;
            continue;
        }
        let m = scan[p + 1];
        if m == 0x00 {
            p += 2; // stuffed data byte
            continue;
        }
        if !marker::is_rst(m) {
            return Err(CodecError::InvalidMarker {
                marker: m,
                context: "restart boundary",
            });
        }
        let expected = marker::RST0 + (segments.len() as u8 & 7);
        if m != expected {
            return Err(CodecError::MalformedSegment {
                detail: format!(
                    "restart marker out of order: got {m:02X}, expected {expected:02X}"
                ),
            });
        }
        segments.push((seg_start, p));
        p += 2;
        seg_start = p;
    }
    // Final segment: everything up to the trailing marker (EOI) or end of
    // data; the bit reader stops at markers on its own.
    segments.push((seg_start, scan.len()));
    Ok(segments)
}

// ---------------------------------------------------------------------------
// Scan decoding
// ---------------------------------------------------------------------------

/// A component's reconstruction plane (padded to whole MCUs).
struct OutPlane {
    data: Vec<u8>,
    width: usize,
    height: usize,
}

/// Per-component decode context: resolved tables plus the AAN-folded
/// dequantisation multipliers (computed once per scan).
struct CompCtx<'t> {
    spec: ComponentSpec,
    q: &'t QuantTable,
    dc: &'t HuffTable,
    ac: &'t HuffTable,
    idct_scale: [f32; BLOCK_LEN],
}

/// One decoded 8×8 block parked by a parallel segment task until the
/// serial scatter writes it into its plane: component index, pixel
/// coordinates of the block's top-left corner in the (padded) plane, and
/// the clamped level-shifted samples.
struct SegBlock {
    ci: u8,
    bx: u32,
    by: u32,
    samples: [u8; BLOCK_LEN],
}

/// Statistics accumulated while decoding one restart segment.
#[derive(Default)]
struct SegStats {
    mcus: u64,
    blocks: u64,
    entropy_bits: u64,
    nonzero_coeffs: u64,
    huffman_ns: u64,
    idct_ns: u64,
}

impl SegStats {
    fn merge_into(&self, total: &mut DecodeStats) {
        total.mcus += self.mcus;
        total.blocks += self.blocks;
        total.entropy_bits += self.entropy_bits;
        total.nonzero_coeffs += self.nonzero_coeffs;
        total.huffman_ns += self.huffman_ns;
        total.idct_ns += self.idct_ns;
    }

    fn add(&mut self, other: &SegStats) {
        self.mcus += other.mcus;
        self.blocks += other.blocks;
        self.entropy_bits += other.entropy_bits;
        self.nonzero_coeffs += other.nonzero_coeffs;
        self.huffman_ns += other.huffman_ns;
        self.idct_ns += other.idct_ns;
    }
}

/// Block sink shared by the segment decoders: receives
/// (component index, block x px, block y px, reconstructed samples).
type BlockSink<'a> = dyn FnMut(usize, u32, u32, &[u8; BLOCK_LEN]) + 'a;

/// Entropy-decodes the MCUs `[mcu_start, mcu_start + mcu_count)` from one
/// restart segment's bytes, emitting every reconstructed block through
/// `sink(ci, bx, by, samples)`. Shared by the sequential path (sink
/// writes straight into the planes) and the parallel path (sink parks
/// blocks for the scatter) — which is what makes the two bit-exact.
/// Dispatches between the reservoir fast path and the reference
/// bit-at-a-time decoder.
fn decode_segment(
    seg: &[u8],
    ctx: &[CompCtx<'_>],
    mcu_cols: u64,
    mcu_start: u64,
    mcu_count: u64,
    dec: &JpegDecoder,
    sink: &mut BlockSink<'_>,
) -> CodecResult<SegStats> {
    if dec.reference_entropy || dec.reference_idct {
        decode_segment_ref(seg, ctx, mcu_cols, mcu_start, mcu_count, dec, sink)
    } else {
        decode_segment_fast(seg, ctx, mcu_cols, mcu_start, mcu_count, dec, sink)
    }
}

/// Fast path: 64-bit bit reservoir, table-driven Huffman resolution with
/// fused receive/extend, and the u8-producing iDCT (SIMD when available).
fn decode_segment_fast(
    seg: &[u8],
    ctx: &[CompCtx<'_>],
    mcu_cols: u64,
    mcu_start: u64,
    mcu_count: u64,
    dec: &JpegDecoder,
    sink: &mut BlockSink<'_>,
) -> CodecResult<SegStats> {
    let mut cursor = BitCursor::new(seg);
    let mut dc_pred = [0i32; MAX_COMPONENTS];
    let mut stats = SegStats::default();
    let mut quantized = [0i16; BLOCK_LEN];
    let mut out = [0u8; BLOCK_LEN];

    for mcu_index in mcu_start..mcu_start + mcu_count {
        let my = (mcu_index / mcu_cols) as u32;
        let mx = (mcu_index % mcu_cols) as u32;
        for (ci, c) in ctx.iter().enumerate() {
            for vy in 0..c.spec.v {
                for hx in 0..c.spec.h {
                    let t0 = dec.collect_timing.then(Instant::now);
                    decode_block_fast(
                        &mut cursor,
                        c.dc,
                        c.ac,
                        &mut dc_pred[ci],
                        &mut quantized,
                        &mut stats.nonzero_coeffs,
                    )?;
                    let t1 = dec.collect_timing.then(Instant::now);
                    if let (Some(t0), Some(t1)) = (t0, t1) {
                        stats.huffman_ns += (t1 - t0).as_nanos() as u64;
                    }
                    idct_8x8_dequant_u8(&quantized, &c.idct_scale, &mut out);
                    if let Some(t1) = t1 {
                        stats.idct_ns += t1.elapsed().as_nanos() as u64;
                    }
                    let bx = (mx * c.spec.h as u32 + hx as u32) * 8;
                    let by = (my * c.spec.v as u32 + vy as u32) * 8;
                    sink(ci, bx, by, &out);
                    stats.blocks += 1;
                }
            }
        }
        stats.mcus += 1;
    }
    stats.entropy_bits = cursor.byte_pos() as u64 * 8;
    Ok(stats)
}

/// Reference path: the original bit-at-a-time decoder, also used when the
/// basis-matrix iDCT is requested.
fn decode_segment_ref(
    seg: &[u8],
    ctx: &[CompCtx<'_>],
    mcu_cols: u64,
    mcu_start: u64,
    mcu_count: u64,
    dec: &JpegDecoder,
    sink: &mut BlockSink<'_>,
) -> CodecResult<SegStats> {
    let mut reader = BitReader::new(seg);
    let mut dc_pred = [0i32; MAX_COMPONENTS];
    let mut stats = SegStats::default();
    let mut quantized = [0i16; BLOCK_LEN];
    let mut coeffs = [0f32; BLOCK_LEN];
    let mut samples = [0f32; BLOCK_LEN];
    let mut out = [0u8; BLOCK_LEN];

    for mcu_index in mcu_start..mcu_start + mcu_count {
        let my = (mcu_index / mcu_cols) as u32;
        let mx = (mcu_index % mcu_cols) as u32;
        for (ci, c) in ctx.iter().enumerate() {
            for vy in 0..c.spec.v {
                for hx in 0..c.spec.h {
                    let t0 = dec.collect_timing.then(Instant::now);
                    decode_block(
                        &mut reader,
                        c.dc,
                        c.ac,
                        &mut dc_pred[ci],
                        &mut quantized,
                        &mut stats.nonzero_coeffs,
                    )?;
                    let t1 = dec.collect_timing.then(Instant::now);
                    if let (Some(t0), Some(t1)) = (t0, t1) {
                        stats.huffman_ns += (t1 - t0).as_nanos() as u64;
                    }
                    if dec.reference_idct {
                        c.q.dequantize(&quantized, &mut coeffs);
                        idct_8x8(&coeffs, &mut samples);
                        for (o, &s) in out.iter_mut().zip(samples.iter()) {
                            *o = clamp_u8(s + 128.0);
                        }
                    } else {
                        idct_8x8_dequant(&quantized, &c.idct_scale, &mut samples);
                        for (o, &s) in out.iter_mut().zip(samples.iter()) {
                            *o = clamp_u8(s + 128.0);
                        }
                    }
                    if let Some(t1) = t1 {
                        stats.idct_ns += t1.elapsed().as_nanos() as u64;
                    }
                    let bx = (mx * c.spec.h as u32 + hx as u32) * 8;
                    let by = (my * c.spec.v as u32 + vy as u32) * 8;
                    sink(ci, bx, by, &out);
                    stats.blocks += 1;
                }
            }
        }
        stats.mcus += 1;
    }
    stats.entropy_bits = reader.byte_pos() as u64 * 8;
    Ok(stats)
}

/// Writes one reconstructed block into its component plane.
#[inline]
fn write_block(plane: &mut OutPlane, bx: u32, by: u32, samples: &[u8; BLOCK_LEN]) {
    for y in 0..8 {
        let row = (by as usize + y) * plane.width + bx as usize;
        plane.data[row..row + 8].copy_from_slice(&samples[y * 8..y * 8 + 8]);
    }
}

fn decode_scan(
    data: &[u8],
    headers: &Headers,
    dec: &JpegDecoder,
    parallel: bool,
) -> CodecResult<(Image, DecodeStats)> {
    let frame = &headers.frame;
    let (grid_cols, grid_rows) = frame.mcu_grid();
    let mcu_cols = grid_cols as u64;
    let total_mcus = frame.mcu_count();
    let ri = frame.restart_interval as u64;

    // Resolve tables per component once.
    let mut ctx = Vec::with_capacity(frame.components.len());
    for c in &frame.components {
        let q = headers.qtables[c.qtable as usize].as_ref().ok_or_else(|| {
            CodecError::MalformedSegment {
                detail: format!("missing DQT slot {}", c.qtable),
            }
        })?;
        let dc = headers.dc_tables[c.dc_table as usize]
            .as_ref()
            .ok_or_else(|| CodecError::MalformedSegment {
                detail: format!("missing DC DHT slot {}", c.dc_table),
            })?;
        let ac = headers.ac_tables[c.ac_table as usize]
            .as_ref()
            .ok_or_else(|| CodecError::MalformedSegment {
                detail: format!("missing AC DHT slot {}", c.ac_table),
            })?;
        ctx.push(CompCtx {
            spec: *c,
            q,
            dc,
            ac,
            idct_scale: q.idct_scale(),
        });
    }

    // Output planes padded to MCU coverage.
    let mut planes: Vec<OutPlane> = ctx
        .iter()
        .map(|c| {
            let w = grid_cols as usize * c.spec.h as usize * 8;
            let h = grid_rows as usize * c.spec.v as usize * 8;
            OutPlane {
                data: vec![0u8; w * h],
                width: w,
                height: h,
            }
        })
        .collect();

    let scan = &data[headers.scan_start..];

    // One-pass restart-segment index (a single trivial segment when the
    // stream has no restart interval).
    let segments = if ri > 0 {
        let expected = total_mcus.div_ceil(ri) as usize;
        index_restart_segments(scan, expected)?
    } else {
        vec![(0usize, scan.len())]
    };
    // MCU range covered by segment `si`.
    let seg_mcus = |si: usize| -> (u64, u64) {
        if ri == 0 {
            (0, total_mcus)
        } else {
            let start = si as u64 * ri;
            (start, ri.min(total_mcus - start))
        }
    };

    let mut stats = DecodeStats {
        restart_segments: segments.len() as u32,
        ..DecodeStats::default()
    };

    // Coalesce adjacent segments into chunks of at least
    // MIN_PARALLEL_CHUNK_MCUS so a tiny restart interval (ri=1: one MCU per
    // segment) doesn't drown the pool in sub-millisecond tasks. Each chunk
    // is one pool task with one parked-block list; restart state still
    // resets per segment inside the chunk, so bit-exactness is untouched.
    let chunks: Vec<(usize, usize)> = {
        let mut chunks = Vec::new();
        let mut start = 0usize;
        let mut mcus = 0u64;
        for si in 0..segments.len() {
            mcus += seg_mcus(si).1;
            if mcus >= MIN_PARALLEL_CHUNK_MCUS {
                chunks.push((start, si + 1));
                start = si + 1;
                mcus = 0;
            }
        }
        if start < segments.len() {
            chunks.push((start, segments.len()));
        }
        chunks
    };

    let go_parallel = parallel && chunks.len() >= 2 && rayon::current_num_threads() > 1;
    if go_parallel {
        // Decode chunks concurrently into parked block lists, then scatter
        // serially. Collection is index-ordered, so the first failing
        // segment's error is returned — matching the sequential walk.
        let ctx = &ctx;
        let segments = &segments;
        let results: Vec<CodecResult<(Vec<SegBlock>, SegStats)>> = chunks
            .into_par_iter()
            .map(|(cs, ce)| {
                let chunk_mcus: u64 = (cs..ce).map(|si| seg_mcus(si).1).sum();
                let mut blocks =
                    Vec::with_capacity(chunk_mcus as usize * frame.blocks_per_mcu() as usize);
                let mut chunk_stats = SegStats::default();
                for si in cs..ce {
                    let (s, e) = segments[si];
                    if si + 1 < ce {
                        // Overlap the next segment's entropy bytes with this
                        // segment's arithmetic.
                        crate::simd::prefetch_read(scan, segments[si + 1].0);
                    }
                    let (mcu_start, mcu_count) = seg_mcus(si);
                    let seg_stats = decode_segment(
                        &scan[s..e],
                        ctx,
                        mcu_cols,
                        mcu_start,
                        mcu_count,
                        dec,
                        &mut |ci, bx, by, samples| {
                            blocks.push(SegBlock {
                                ci: ci as u8,
                                bx,
                                by,
                                samples: *samples,
                            });
                        },
                    )?;
                    chunk_stats.add(&seg_stats);
                }
                Ok((blocks, chunk_stats))
            })
            .collect();
        for result in results {
            let (blocks, chunk_stats) = result?;
            chunk_stats.merge_into(&mut stats);
            for b in &blocks {
                write_block(&mut planes[b.ci as usize], b.bx, b.by, &b.samples);
            }
        }
    } else {
        for (si, &(s, e)) in segments.iter().enumerate() {
            if si + 1 < segments.len() {
                crate::simd::prefetch_read(scan, segments[si + 1].0);
            }
            let (mcu_start, mcu_count) = seg_mcus(si);
            let planes = &mut planes;
            let seg_stats = decode_segment(
                &scan[s..e],
                &ctx,
                mcu_cols,
                mcu_start,
                mcu_count,
                dec,
                &mut |ci, bx, by, samples| write_block(&mut planes[ci], bx, by, samples),
            )?;
            seg_stats.merge_into(&mut stats);
        }
    }

    let t0 = dec.collect_timing.then(Instant::now);
    let image = assemble_image(
        frame,
        &ctx.iter().map(|c| c.spec).collect::<Vec<_>>(),
        &planes,
    )?;
    if let Some(t0) = t0 {
        stats.color_ns = t0.elapsed().as_nanos() as u64;
    }
    Ok((image, stats))
}

/// Decodes one 8×8 block into raster-order quantized coefficients.
fn decode_block(
    r: &mut BitReader<'_>,
    dc_table: &HuffTable,
    ac_table: &HuffTable,
    dc_pred: &mut i32,
    out: &mut [i16; BLOCK_LEN],
    nonzero_coeffs: &mut u64,
) -> CodecResult<()> {
    out.fill(0);
    // DC.
    let ssss = dc_table.decode(r)? as u32;
    if ssss > 11 {
        return Err(CodecError::MalformedSegment {
            detail: format!("DC category {ssss}"),
        });
    }
    let diff = if ssss > 0 {
        decode_magnitude(r.get_bits(ssss)?, ssss)
    } else {
        0
    };
    *dc_pred += diff;
    out[0] = *dc_pred as i16;
    if *dc_pred != 0 {
        *nonzero_coeffs += 1;
    }

    // AC.
    let mut k = 1usize;
    while k < BLOCK_LEN {
        let rs = ac_table.decode(r)?;
        let run = (rs >> 4) as usize;
        let size = (rs & 0x0F) as u32;
        if size == 0 {
            if run == 15 {
                k += 16; // ZRL
                continue;
            }
            break; // EOB
        }
        k += run;
        if k >= BLOCK_LEN {
            return Err(CodecError::MalformedSegment {
                detail: format!("AC run overflows block at k={k}"),
            });
        }
        let v = decode_magnitude(r.get_bits(size)?, size);
        out[ZIGZAG[k]] = v as i16;
        *nonzero_coeffs += 1;
        k += 1;
    }
    Ok(())
}

/// Fast-path block decode: one [`BitCursor::refill`] per symbol covers the
/// longest possible code (16 bits) *and* its magnitude bits (≤11 for DC,
/// ≤10 for AC), so code resolution and receive/extend happen on a single
/// peeked word with a single bounds check. Produces identical coefficients,
/// `nonzero_coeffs` accounting and error classes as [`decode_block`].
fn decode_block_fast(
    cur: &mut BitCursor<'_>,
    dc_table: &HuffTable,
    ac_table: &HuffTable,
    dc_pred: &mut i32,
    out: &mut [i16; BLOCK_LEN],
    nonzero_coeffs: &mut u64,
) -> CodecResult<()> {
    out.fill(0);
    // DC.
    cur.refill();
    let peeked = cur.peek();
    let (sym, len) = dc_table.resolve(peeked)?;
    let ssss = sym as u32;
    if ssss > 11 {
        return Err(CodecError::MalformedSegment {
            detail: format!("DC category {ssss}"),
        });
    }
    let diff = if ssss > 0 {
        // Magnitude bits sit right after the code in the same peeked word.
        let bits = ((peeked << len) >> (64 - ssss)) as u32;
        cur.consume(len + ssss)?;
        extend_magnitude(bits, ssss)
    } else {
        cur.consume(len)?;
        0
    };
    *dc_pred += diff;
    out[0] = *dc_pred as i16;
    if *dc_pred != 0 {
        *nonzero_coeffs += 1;
    }

    // AC.
    let mut k = 1usize;
    while k < BLOCK_LEN {
        cur.refill();
        let peeked = cur.peek();
        let (rs, len) = ac_table.resolve(peeked)?;
        let run = (rs >> 4) as usize;
        let size = (rs & 0x0F) as u32;
        if size == 0 {
            cur.consume(len)?;
            if run == 15 {
                k += 16; // ZRL
                continue;
            }
            break; // EOB
        }
        k += run;
        if k >= BLOCK_LEN {
            return Err(CodecError::MalformedSegment {
                detail: format!("AC run overflows block at k={k}"),
            });
        }
        let bits = ((peeked << len) >> (64 - size)) as u32;
        cur.consume(len + size)?;
        out[ZIGZAG[k]] = extend_magnitude(bits, size) as i16;
        *nonzero_coeffs += 1;
        k += 1;
    }
    Ok(())
}

/// Upsamples chroma planes and interleaves the final image.
fn assemble_image(
    frame: &FrameInfo,
    specs: &[ComponentSpec],
    planes: &[OutPlane],
) -> CodecResult<Image> {
    let w = frame.width as usize;
    let h = frame.height as usize;
    let (h_max, v_max) = frame.max_sampling();

    if specs.len() == 1 {
        let plane = &planes[0];
        let mut data = vec![0u8; w * h];
        for y in 0..h {
            data[y * w..(y + 1) * w]
                .copy_from_slice(&plane.data[y * plane.width..y * plane.width + w]);
        }
        return Image::from_vec(frame.width, frame.height, ColorSpace::Gray, data);
    }

    // Row-based assembly: full-resolution components hand their plane rows
    // to the converter directly; 2×-subsampled ones are expanded once per
    // row with the duplicating upsampler (`out[x] = src[x/2]`, the same
    // nearest-neighbour mapping `x·h/h_max` evaluated without a per-pixel
    // division). Vertical subsampling is just row selection.
    let mut data = vec![0u8; w * h * 3];
    let mut upsampled: Vec<Vec<u8>> = specs
        .iter()
        .map(|s| {
            if (s.h as usize) < h_max as usize {
                vec![0u8; w]
            } else {
                Vec::new()
            }
        })
        .collect();
    for y in 0..h {
        for (ci, spec) in specs.iter().enumerate() {
            if (spec.h as usize) < h_max as usize {
                let plane = &planes[ci];
                let sy = (y * spec.v as usize / v_max as usize).min(plane.height - 1);
                let src = &plane.data[sy * plane.width..(sy + 1) * plane.width];
                upsample_dup2_row(src, &mut upsampled[ci]);
            }
        }
        let row_of = |ci: usize| -> &[u8] {
            let spec = &specs[ci];
            if (spec.h as usize) < h_max as usize {
                &upsampled[ci]
            } else {
                let plane = &planes[ci];
                let sy = (y * spec.v as usize / v_max as usize).min(plane.height - 1);
                &plane.data[sy * plane.width..sy * plane.width + w]
            }
        };
        ycbcr_rows_to_rgb(
            row_of(0),
            row_of(1),
            row_of(2),
            &mut data[y * w * 3..(y + 1) * w * 3],
        );
    }
    Image::from_vec(frame.width, frame.height, ColorSpace::Rgb, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpeg::encoder::JpegEncoder;
    use crate::jpeg::ChromaMode;

    fn psnr(a: &Image, b: &Image) -> f64 {
        assert_eq!(a.byte_len(), b.byte_len());
        let mse: f64 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            / a.byte_len() as f64;
        if mse == 0.0 {
            return f64::INFINITY;
        }
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }

    fn test_image(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h, ColorSpace::Rgb).unwrap();
        for y in 0..h {
            for x in 0..w {
                // Smooth content plus mild structure: JPEG-friendly.
                let r = (128.0 + 100.0 * ((x as f32) * 0.07).sin()) as u8;
                let g = (128.0 + 100.0 * ((y as f32) * 0.05).cos()) as u8;
                let b = ((x + y) / 2 % 256) as u8;
                img.set_pixel(x, y, [r, g, b]);
            }
        }
        img
    }

    #[test]
    fn roundtrip_420_high_quality() {
        let img = test_image(64, 48);
        let bytes = JpegEncoder::new(92).unwrap().encode(&img).unwrap();
        let out = JpegDecoder::new().decode(&bytes).unwrap();
        assert_eq!(out.width(), 64);
        assert_eq!(out.height(), 48);
        assert_eq!(out.color(), ColorSpace::Rgb);
        let p = psnr(&img, &out);
        assert!(p > 28.0, "PSNR {p:.1} dB too low for q92 4:2:0");
    }

    #[test]
    fn roundtrip_444_is_sharper_than_420() {
        let img = test_image(48, 48);
        let enc444 = JpegEncoder::new(90)
            .unwrap()
            .with_mode(ChromaMode::Yuv444)
            .encode(&img)
            .unwrap();
        let enc420 = JpegEncoder::new(90).unwrap().encode(&img).unwrap();
        let dec = JpegDecoder::new();
        let p444 = psnr(&img, &dec.decode(&enc444).unwrap());
        let p420 = psnr(&img, &dec.decode(&enc420).unwrap());
        assert!(p444 >= p420 - 0.5, "444 {p444:.1} vs 420 {p420:.1}");
    }

    #[test]
    fn roundtrip_grayscale() {
        let img = test_image(40, 40).to_gray();
        let bytes = JpegEncoder::new(90).unwrap().encode(&img).unwrap();
        let out = JpegDecoder::new().decode(&bytes).unwrap();
        assert_eq!(out.color(), ColorSpace::Gray);
        let p = psnr(&img, &out);
        assert!(p > 30.0, "grayscale PSNR {p:.1}");
    }

    #[test]
    fn roundtrip_nonmultiple_dimensions() {
        for (w, h) in [(17, 13), (15, 9), (31, 33), (8, 8), (1, 1), (3, 50)] {
            let img = test_image(w, h);
            let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
            let out = JpegDecoder::new().decode(&bytes).unwrap();
            assert_eq!((out.width(), out.height()), (w, h), "{w}x{h}");
        }
    }

    #[test]
    fn roundtrip_with_restart_intervals() {
        let img = test_image(64, 64);
        let plain = JpegEncoder::new(88).unwrap().encode(&img).unwrap();
        let restarts = JpegEncoder::new(88)
            .unwrap()
            .with_restart_interval(2)
            .encode(&img)
            .unwrap();
        let dec = JpegDecoder::new();
        let a = dec.decode(&plain).unwrap();
        let b = dec.decode(&restarts).unwrap();
        // Restart intervals change framing, not pixels.
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn header_decode_reports_geometry() {
        let img = test_image(100, 60);
        let bytes = JpegEncoder::new(80)
            .unwrap()
            .with_restart_interval(5)
            .encode(&img)
            .unwrap();
        let info = JpegDecoder::new().decode_header(&bytes).unwrap();
        assert_eq!(info.width, 100);
        assert_eq!(info.height, 60);
        assert_eq!(info.restart_interval, 5);
        assert_eq!(info.components.len(), 3);
        assert_eq!(info.chroma_mode().unwrap(), ChromaMode::Yuv420);
    }

    #[test]
    fn stats_are_plausible() {
        let img = test_image(64, 48);
        let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
        let (_, stats) = JpegDecoder::new().decode_with_stats(&bytes).unwrap();
        // 64x48 at 4:2:0 → 4x3 MCUs, 6 blocks each.
        assert_eq!(stats.mcus, 12);
        assert_eq!(stats.blocks, 72);
        assert!(stats.entropy_bits > 0);
        assert!(stats.nonzero_coeffs > stats.blocks); // DC + some AC
        assert_eq!(stats.restart_segments, 1);
    }

    #[test]
    fn rejects_garbage() {
        let dec = JpegDecoder::new();
        assert!(dec.decode(&[]).is_err());
        assert!(dec.decode(&[0x00, 0x01, 0x02]).is_err());
        assert!(dec.decode(&[0xFF, 0xD8, 0xFF, 0xD9]).is_err()); // EOI before SOS
    }

    #[test]
    fn rejects_progressive() {
        // Fake a SOF2 (progressive) frame.
        let mut bytes = vec![
            0xFF, 0xD8, 0xFF, 0xC2, 0x00, 0x0B, 8, 0, 8, 0, 8, 1, 1, 0x11, 0,
        ];
        bytes.extend_from_slice(&[0xFF, 0xD9]);
        let err = JpegDecoder::new().decode(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn truncated_scan_errors() {
        let img = test_image(64, 64);
        let mut bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(JpegDecoder::new().decode(&bytes).is_err());
    }

    #[test]
    fn corrupted_entropy_detected_or_contained() {
        // Flipping bytes mid-scan must never panic; it may decode to garbage
        // pixels or error, both acceptable.
        let img = test_image(48, 48);
        let clean = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
        for step in [3usize, 7, 11] {
            let mut bytes = clean.clone();
            let start = bytes.len() / 2;
            let mut i = start;
            while i < bytes.len() - 2 {
                bytes[i] ^= 0x55;
                i += step;
            }
            let _ = JpegDecoder::new().decode(&bytes);
        }
    }

    #[test]
    fn segment_index_handles_stuffed_bytes() {
        // Entropy data containing a stuffed 0xFF (encoded as FF 00)
        // immediately before a restart marker — the old per-boundary hunt
        // could misread this; the one-pass index must not.
        let scan = [
            0xAB, 0xFF, 0x00, 0xCD, // segment 0, incl. stuffed byte
            0xFF, 0xD0, // RST0
            0xFF, 0x00, 0xFF, 0xD1, // segment 1 ends with stuffing, RST1
            0x12, 0x34, // segment 2
        ];
        let segs = index_restart_segments(&scan, 3).unwrap();
        assert_eq!(segs, vec![(0, 4), (6, 8), (10, 12)]);
    }

    #[test]
    fn segment_index_rejects_out_of_order_markers() {
        let scan = [0xAB, 0xFF, 0xD3, 0x12]; // RST3 where RST0 is expected
        let err = index_restart_segments(&scan, 2).unwrap_err();
        assert!(matches!(err, CodecError::MalformedSegment { .. }), "{err}");
    }

    #[test]
    fn segment_index_rejects_non_restart_marker() {
        let scan = [0xAB, 0xFF, 0xD9, 0x12]; // EOI where a RST is expected
        let err = index_restart_segments(&scan, 2).unwrap_err();
        assert!(matches!(err, CodecError::InvalidMarker { .. }), "{err}");
    }

    #[test]
    fn segment_index_eof_when_markers_missing() {
        let scan = [0xAB, 0xCD, 0x12, 0x34]; // no markers at all
        let err = index_restart_segments(&scan, 2).unwrap_err();
        assert!(matches!(err, CodecError::UnexpectedEof { .. }), "{err}");
    }

    #[test]
    fn parallel_decode_bit_exact_with_sequential() {
        let img = test_image(96, 80);
        let dec = JpegDecoder::new();
        for ri in [0u16, 1, 3, 8] {
            let bytes = JpegEncoder::new(85)
                .unwrap()
                .with_restart_interval(ri)
                .encode(&img)
                .unwrap();
            let (seq, seq_stats) = dec.decode_with_stats(&bytes).unwrap();
            let (par, par_stats) = dec.decode_parallel_with_stats(&bytes).unwrap();
            assert_eq!(seq.data(), par.data(), "ri={ri}");
            assert_eq!(seq_stats.work(), par_stats.work(), "ri={ri}");
        }
    }

    #[test]
    fn fast_and_reference_idct_agree_on_pixels() {
        // The AAN path runs inside the accuracy contract of the reference
        // transform: after quantisation and u8 clamping the reconstructions
        // should differ by at most 1 LSB on a small minority of pixels.
        let img = test_image(64, 64);
        let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
        let fast = JpegDecoder::new().decode(&bytes).unwrap();
        let reference = JpegDecoder::new()
            .with_reference_idct(true)
            .decode(&bytes)
            .unwrap();
        let mut diff = 0usize;
        for (&a, &b) in fast.data().iter().zip(reference.data()) {
            let d = (a as i32 - b as i32).unsigned_abs();
            assert!(d <= 1, "pixel differs by {d}");
            diff += (d != 0) as usize;
        }
        assert!(
            diff * 20 < fast.byte_len(),
            "{diff} of {} pixels off by one",
            fast.byte_len()
        );
    }

    #[test]
    fn stage_timing_populates_counters() {
        let img = test_image(64, 48);
        let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
        let (_, stats) = JpegDecoder::new()
            .with_stage_timing(true)
            .decode_with_stats(&bytes)
            .unwrap();
        assert!(stats.huffman_ns > 0);
        assert!(stats.idct_ns > 0);
        assert!(stats.color_ns > 0);
        // Untimed decode leaves them zero.
        let (_, bare) = JpegDecoder::new().decode_with_stats(&bytes).unwrap();
        assert_eq!(bare.huffman_ns, 0);
        assert_eq!(bare.idct_ns, 0);
        assert_eq!(bare.color_ns, 0);
    }

    #[test]
    fn fast_and_reference_entropy_are_bit_exact() {
        // The reservoir/LUT decoder must reproduce the bit-at-a-time
        // decoder's pixels and work counters exactly. `entropy_bits` is
        // excluded: it reports the reader's byte position, and the two
        // readers buffer ahead differently at segment ends.
        let fast = JpegDecoder::new();
        let reference = JpegDecoder::new().with_reference_entropy(true);
        for mode in [ChromaMode::Yuv444, ChromaMode::Yuv422, ChromaMode::Yuv420] {
            for ri in [0u16, 1, 4] {
                let img = test_image(49, 37);
                let bytes = JpegEncoder::new(85)
                    .unwrap()
                    .with_mode(mode)
                    .with_restart_interval(ri)
                    .encode(&img)
                    .unwrap();
                let (a, sa) = fast.decode_with_stats(&bytes).unwrap();
                let (b, sb) = reference.decode_with_stats(&bytes).unwrap();
                assert_eq!(a.data(), b.data(), "{mode:?} ri={ri}");
                assert_eq!(sa.mcus, sb.mcus, "{mode:?} ri={ri}");
                assert_eq!(sa.blocks, sb.blocks, "{mode:?} ri={ri}");
                assert_eq!(sa.nonzero_coeffs, sb.nonzero_coeffs, "{mode:?} ri={ri}");
                assert_eq!(sa.restart_segments, sb.restart_segments, "{mode:?} ri={ri}");
            }
        }
    }

    #[test]
    fn fast_entropy_rejects_malformed_streams_like_reference() {
        // Corrupted scans must fail (or succeed) without panicking on both
        // entropy decoders; when the reference path errors on a truncation,
        // the fast path must too.
        let img = test_image(48, 48);
        let clean = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
        let fast = JpegDecoder::new();
        let reference = JpegDecoder::new().with_reference_entropy(true);
        for cut in [clean.len() / 3, clean.len() / 2, clean.len() - 4] {
            let mut bytes = clean.clone();
            bytes.truncate(cut);
            assert!(fast.decode(&bytes).is_err(), "cut={cut}");
            assert!(reference.decode(&bytes).is_err(), "cut={cut}");
        }
        for step in [3usize, 7, 11] {
            let mut bytes = clean.clone();
            let mut i = bytes.len() / 2;
            while i < bytes.len() - 2 {
                bytes[i] ^= 0x55;
                i += step;
            }
            let _ = fast.decode(&bytes);
            let _ = reference.decode(&bytes);
        }
    }

    #[test]
    fn roundtrip_422() {
        let img = test_image(50, 38);
        let bytes = JpegEncoder::new(90)
            .unwrap()
            .with_mode(ChromaMode::Yuv422)
            .encode(&img)
            .unwrap();
        let info = JpegDecoder::new().decode_header(&bytes).unwrap();
        assert_eq!(info.chroma_mode().unwrap(), ChromaMode::Yuv422);
        let out = JpegDecoder::new().decode(&bytes).unwrap();
        assert_eq!((out.width(), out.height()), (50, 38));
        let p = psnr(&img, &out);
        assert!(p > 28.0, "PSNR {p:.1} dB too low for q90 4:2:2");
    }

    #[test]
    fn parallel_chunking_coalesces_small_segments() {
        // 96x80 at 4:2:0 → 6x5 = 30 MCUs. ri=1 gives 30 one-MCU segments,
        // which must coalesce into 32-MCU-minimum chunks (here: one chunk →
        // sequential fallback) rather than 30 pool tasks; pixels stay
        // bit-exact either way (checked in
        // parallel_decode_bit_exact_with_sequential).
        let img = test_image(96, 80);
        let bytes = JpegEncoder::new(85)
            .unwrap()
            .with_restart_interval(1)
            .encode(&img)
            .unwrap();
        let dec = JpegDecoder::new();
        let (seq, ss) = dec.decode_with_stats(&bytes).unwrap();
        let (par, ps) = dec.decode_parallel_with_stats(&bytes).unwrap();
        assert_eq!(seq.data(), par.data());
        assert_eq!(ss.restart_segments, 30);
        assert_eq!(ss.work(), ps.work());
    }

    #[test]
    fn decode_batch_preserves_order_and_isolates_failures() {
        let dec = JpegDecoder::new();
        let a = JpegEncoder::new(85)
            .unwrap()
            .encode(&test_image(24, 16))
            .unwrap();
        let b = JpegEncoder::new(85)
            .unwrap()
            .encode(&test_image(40, 40))
            .unwrap();
        let bad = vec![0u8; 16];
        let batch: Vec<&[u8]> = vec![&a, &bad, &b];
        let out = dec.decode_batch(&batch);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].as_ref().unwrap().width(), 24);
        assert!(out[1].is_err());
        assert_eq!(out[2].as_ref().unwrap().height(), 40);
    }
}

//! Baseline JPEG decoder.
//!
//! This is the exact computation DLBooster's FPGA decoder performs (paper
//! Fig. 4): marker/metadata parsing, Huffman entropy decode, dequantisation,
//! inverse DCT, chroma upsampling and YCbCr→RGB conversion. The simulated
//! FPGA lanes in `dlb-fpga` run this code in functional mode; the CPU
//! baseline backend in `dlb-backends` runs it on worker threads.
//!
//! Beyond the decoded [`Image`], the decoder reports [`DecodeStats`] — MCU
//! counts and entropy-bit totals — which the discrete-event timing model uses
//! to charge cycle-accurate costs to the Huffman / iDCT / resize pipeline
//! stages without re-running the arithmetic.

use super::{marker, ComponentSpec, FrameInfo};
use crate::dct::{idct_8x8, BLOCK_LEN, ZIGZAG};
use crate::error::{CodecError, CodecResult};
use crate::huffman::{decode_magnitude, BitReader, HuffTable};
use crate::pixel::{clamp_u8, ycbcr_to_rgb, ColorSpace, Image};
use crate::quant::QuantTable;

/// Work statistics gathered during a decode, consumed by the FPGA timing
/// model (`dlb-fpga::timing`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeStats {
    /// Number of MCUs in the scan.
    pub mcus: u64,
    /// Total 8×8 blocks entropy-decoded.
    pub blocks: u64,
    /// Total bits consumed from the entropy-coded segment.
    pub entropy_bits: u64,
    /// Non-zero coefficients reconstructed (drives iDCT sparsity models).
    pub nonzero_coeffs: u64,
    /// Restart segments encountered (1 if no DRI).
    pub restart_segments: u32,
}

/// Baseline JPEG decoder with reusable internal scratch space.
///
/// The decoder is cheap to construct; reusing one instance across images
/// avoids re-allocating the coefficient scratch (a hot-loop concern for the
/// CPU baseline, which decodes hundreds of images per second per core).
#[derive(Debug, Default)]
pub struct JpegDecoder {
    _private: (),
}

/// Everything parsed from the header section (before the entropy scan).
#[derive(Debug)]
struct Headers {
    frame: FrameInfo,
    qtables: [Option<QuantTable>; 4],
    dc_tables: [Option<HuffTable>; 4],
    ac_tables: [Option<HuffTable>; 4],
    /// Offset of the first entropy-coded byte.
    scan_start: usize,
}

impl JpegDecoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses only the JFIF headers, returning the frame geometry. This is
    /// what DLBooster's `DataCollector` calls to build decode cmds without
    /// touching the entropy-coded payload.
    pub fn decode_header(&self, data: &[u8]) -> CodecResult<FrameInfo> {
        parse_headers(data).map(|h| h.frame)
    }

    /// Decodes a complete JFIF stream to an interleaved [`Image`]
    /// (RGB for colour scans, grayscale for single-component scans).
    pub fn decode(&self, data: &[u8]) -> CodecResult<Image> {
        self.decode_with_stats(data).map(|(img, _)| img)
    }

    /// Decodes and additionally reports workload statistics.
    pub fn decode_with_stats(&self, data: &[u8]) -> CodecResult<(Image, DecodeStats)> {
        let headers = parse_headers(data)?;
        decode_scan(data, &headers)
    }
}

// ---------------------------------------------------------------------------
// Header parsing
// ---------------------------------------------------------------------------

fn read_u16(data: &[u8], pos: usize, context: &'static str) -> CodecResult<u16> {
    data.get(pos..pos + 2)
        .map(|b| u16::from_be_bytes([b[0], b[1]]))
        .ok_or(CodecError::UnexpectedEof { context })
}

fn parse_headers(data: &[u8]) -> CodecResult<Headers> {
    if data.len() < 4 || data[0] != 0xFF || data[1] != marker::SOI {
        return Err(CodecError::MalformedSegment {
            detail: "missing SOI".into(),
        });
    }
    let mut pos = 2usize;
    let mut qtables: [Option<QuantTable>; 4] = [None, None, None, None];
    let mut dc_tables: [Option<HuffTable>; 4] = [None, None, None, None];
    let mut ac_tables: [Option<HuffTable>; 4] = [None, None, None, None];
    let mut frame: Option<FrameInfo> = None;
    let mut restart_interval = 0u16;

    loop {
        // Seek to the next marker, tolerating fill bytes (0xFF runs).
        while pos < data.len() && data[pos] != 0xFF {
            pos += 1;
        }
        while pos < data.len() && data[pos] == 0xFF {
            pos += 1;
        }
        if pos >= data.len() {
            return Err(CodecError::UnexpectedEof {
                context: "marker stream",
            });
        }
        let m = data[pos];
        pos += 1;
        match m {
            marker::EOI => {
                return Err(CodecError::MalformedSegment {
                    detail: "EOI before SOS".into(),
                })
            }
            marker::SOS => {
                let len = read_u16(data, pos, "SOS length")? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(CodecError::UnexpectedEof {
                        context: "SOS payload",
                    })?;
                let mut frame = frame.ok_or_else(|| CodecError::MalformedSegment {
                    detail: "SOS before SOF0".into(),
                })?;
                parse_sos(seg, &mut frame)?;
                frame.restart_interval = restart_interval;
                return Ok(Headers {
                    frame,
                    qtables,
                    dc_tables,
                    ac_tables,
                    scan_start: pos + len,
                });
            }
            marker::SOF0 => {
                let len = read_u16(data, pos, "SOF0 length")? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(CodecError::UnexpectedEof {
                        context: "SOF0 payload",
                    })?;
                frame = Some(parse_sof0(seg)?);
                pos += len;
            }
            0xC1..=0xCF if m != marker::DHT && m != 0xC8 => {
                return Err(CodecError::Unsupported {
                    feature: format!("non-baseline frame marker 0xFF{m:02X}"),
                });
            }
            marker::DQT => {
                let len = read_u16(data, pos, "DQT length")? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(CodecError::UnexpectedEof {
                        context: "DQT payload",
                    })?;
                parse_dqt(seg, &mut qtables)?;
                pos += len;
            }
            marker::DHT => {
                let len = read_u16(data, pos, "DHT length")? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(CodecError::UnexpectedEof {
                        context: "DHT payload",
                    })?;
                parse_dht(seg, &mut dc_tables, &mut ac_tables)?;
                pos += len;
            }
            marker::DRI => {
                let len = read_u16(data, pos, "DRI length")? as usize;
                restart_interval = read_u16(data, pos + 2, "DRI interval")?;
                pos += len;
            }
            // APPn / COM and any other length-prefixed segment: skip.
            0xE0..=0xEF | marker::COM | 0xF0..=0xFD => {
                let len = read_u16(data, pos, "segment length")? as usize;
                pos += len;
            }
            other => {
                return Err(CodecError::InvalidMarker {
                    marker: other,
                    context: "header section",
                });
            }
        }
    }
}

fn parse_sof0(seg: &[u8]) -> CodecResult<FrameInfo> {
    if seg.len() < 6 {
        return Err(CodecError::MalformedSegment {
            detail: "SOF0 too short".into(),
        });
    }
    let precision = seg[0];
    if precision != 8 {
        return Err(CodecError::Unsupported {
            feature: format!("{precision}-bit precision"),
        });
    }
    let height = u16::from_be_bytes([seg[1], seg[2]]) as u32;
    let width = u16::from_be_bytes([seg[3], seg[4]]) as u32;
    let ncomp = seg[5] as usize;
    if !(1..=3).contains(&ncomp) {
        return Err(CodecError::Unsupported {
            feature: format!("{ncomp}-component frame"),
        });
    }
    if seg.len() < 6 + 3 * ncomp {
        return Err(CodecError::MalformedSegment {
            detail: "SOF0 component list truncated".into(),
        });
    }
    if width == 0 || height == 0 {
        return Err(CodecError::UnsupportedDimensions { width, height });
    }
    let mut components = Vec::with_capacity(ncomp);
    for i in 0..ncomp {
        let b = &seg[6 + 3 * i..9 + 3 * i];
        let h = b[1] >> 4;
        let v = b[1] & 0x0F;
        if !(1..=2).contains(&h) || !(1..=2).contains(&v) {
            return Err(CodecError::Unsupported {
                feature: format!("sampling factors {h}x{v}"),
            });
        }
        if b[2] > 3 {
            return Err(CodecError::MalformedSegment {
                detail: format!("component quant slot {}", b[2]),
            });
        }
        components.push(ComponentSpec {
            id: b[0],
            h,
            v,
            qtable: b[2],
            dc_table: 0,
            ac_table: 0,
        });
    }
    Ok(FrameInfo {
        width,
        height,
        components,
        restart_interval: 0,
    })
}

fn parse_sos(seg: &[u8], frame: &mut FrameInfo) -> CodecResult<()> {
    if seg.is_empty() {
        return Err(CodecError::MalformedSegment {
            detail: "empty SOS".into(),
        });
    }
    let ncomp = seg[0] as usize;
    if ncomp != frame.components.len() {
        return Err(CodecError::MalformedSegment {
            detail: format!(
                "SOS has {ncomp} components, frame has {}",
                frame.components.len()
            ),
        });
    }
    if seg.len() < 1 + 2 * ncomp + 3 {
        return Err(CodecError::MalformedSegment {
            detail: "SOS truncated".into(),
        });
    }
    for i in 0..ncomp {
        let id = seg[1 + 2 * i];
        let tables = seg[2 + 2 * i];
        let comp = frame
            .components
            .iter_mut()
            .find(|c| c.id == id)
            .ok_or_else(|| CodecError::MalformedSegment {
                detail: format!("SOS references unknown component id {id}"),
            })?;
        comp.dc_table = tables >> 4;
        comp.ac_table = tables & 0x0F;
        if comp.dc_table > 3 || comp.ac_table > 3 {
            return Err(CodecError::MalformedSegment {
                detail: format!(
                    "SOS table slots dc={} ac={} out of range",
                    comp.dc_table, comp.ac_table
                ),
            });
        }
    }
    Ok(())
}

fn parse_dqt(mut seg: &[u8], qtables: &mut [Option<QuantTable>; 4]) -> CodecResult<()> {
    while !seg.is_empty() {
        let pq = seg[0] >> 4;
        let tq = (seg[0] & 0x0F) as usize;
        if pq != 0 {
            return Err(CodecError::Unsupported {
                feature: "16-bit quantization tables".into(),
            });
        }
        if tq > 3 {
            return Err(CodecError::MalformedSegment {
                detail: format!("DQT slot {tq}"),
            });
        }
        if seg.len() < 65 {
            return Err(CodecError::MalformedSegment {
                detail: "DQT table truncated".into(),
            });
        }
        // Values arrive in zigzag order; store raster order.
        let mut vals = [0u16; BLOCK_LEN];
        for (zz, &raster) in ZIGZAG.iter().enumerate() {
            vals[raster] = seg[1 + zz] as u16;
        }
        qtables[tq] = Some(QuantTable::new(vals)?);
        seg = &seg[65..];
    }
    Ok(())
}

fn parse_dht(
    mut seg: &[u8],
    dc_tables: &mut [Option<HuffTable>; 4],
    ac_tables: &mut [Option<HuffTable>; 4],
) -> CodecResult<()> {
    while !seg.is_empty() {
        if seg.len() < 17 {
            return Err(CodecError::MalformedSegment {
                detail: "DHT header truncated".into(),
            });
        }
        let class = seg[0] >> 4;
        let slot = (seg[0] & 0x0F) as usize;
        if class > 1 || slot > 3 {
            return Err(CodecError::MalformedSegment {
                detail: format!("DHT class {class} slot {slot}"),
            });
        }
        let mut counts = [0u8; 16];
        counts.copy_from_slice(&seg[1..17]);
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        if seg.len() < 17 + total {
            return Err(CodecError::MalformedSegment {
                detail: "DHT symbols truncated".into(),
            });
        }
        let table = HuffTable::new(counts, &seg[17..17 + total])?;
        if class == 0 {
            dc_tables[slot] = Some(table);
        } else {
            ac_tables[slot] = Some(table);
        }
        seg = &seg[17 + total..];
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scan decoding
// ---------------------------------------------------------------------------

/// A component's reconstruction plane (padded to whole MCUs).
struct OutPlane {
    data: Vec<u8>,
    width: usize,
    height: usize,
}

fn decode_scan(data: &[u8], headers: &Headers) -> CodecResult<(Image, DecodeStats)> {
    let frame = &headers.frame;
    let (mcu_cols, mcu_rows) = frame.mcu_grid();
    let total_mcus = frame.mcu_count();
    let ri = frame.restart_interval as u64;

    // Resolve tables per component once.
    struct CompCtx<'t> {
        spec: ComponentSpec,
        q: &'t QuantTable,
        dc: &'t HuffTable,
        ac: &'t HuffTable,
    }
    let mut ctx = Vec::with_capacity(frame.components.len());
    for c in &frame.components {
        let q = headers.qtables[c.qtable as usize].as_ref().ok_or_else(|| {
            CodecError::MalformedSegment {
                detail: format!("missing DQT slot {}", c.qtable),
            }
        })?;
        let dc = headers.dc_tables[c.dc_table as usize]
            .as_ref()
            .ok_or_else(|| CodecError::MalformedSegment {
                detail: format!("missing DC DHT slot {}", c.dc_table),
            })?;
        let ac = headers.ac_tables[c.ac_table as usize]
            .as_ref()
            .ok_or_else(|| CodecError::MalformedSegment {
                detail: format!("missing AC DHT slot {}", c.ac_table),
            })?;
        ctx.push(CompCtx {
            spec: *c,
            q,
            dc,
            ac,
        });
    }

    // Output planes padded to MCU coverage.
    let mut planes: Vec<OutPlane> = ctx
        .iter()
        .map(|c| {
            let w = mcu_cols as usize * c.spec.h as usize * 8;
            let h = mcu_rows as usize * c.spec.v as usize * 8;
            OutPlane {
                data: vec![0u8; w * h],
                width: w,
                height: h,
            }
        })
        .collect();

    let scan = &data[headers.scan_start..];
    let mut reader = BitReader::new(scan);
    let mut dc_pred = vec![0i32; ctx.len()];
    let mut stats = DecodeStats {
        restart_segments: 1,
        ..DecodeStats::default()
    };

    let mut quantized = [0i16; BLOCK_LEN];
    let mut coeffs = [0f32; BLOCK_LEN];
    let mut samples = [0f32; BLOCK_LEN];
    let mut segment_base = 0usize; // offset into `scan` of current segment
    let mut expected_rst: u8 = 0;

    for mcu_index in 0..total_mcus {
        // Handle restart boundaries.
        if ri > 0 && mcu_index > 0 && mcu_index % ri == 0 {
            // The entropy segment ends at a marker; locate and verify it.
            let consumed = reader.byte_pos();
            let mut p = segment_base + consumed;
            // Skip pad bits already handled by byte_pos; find the marker.
            while p + 1 < scan.len() && !(scan[p] == 0xFF && scan[p + 1] != 0x00) {
                p += 1;
            }
            if p + 1 >= scan.len() {
                return Err(CodecError::UnexpectedEof {
                    context: "restart marker",
                });
            }
            let m = scan[p + 1];
            if !marker::is_rst(m) {
                return Err(CodecError::InvalidMarker {
                    marker: m,
                    context: "restart boundary",
                });
            }
            if m != marker::RST0 + (expected_rst & 7) {
                return Err(CodecError::MalformedSegment {
                    detail: format!(
                        "restart marker out of order: got {m:02X}, expected {:02X}",
                        marker::RST0 + (expected_rst & 7)
                    ),
                });
            }
            expected_rst = expected_rst.wrapping_add(1);
            stats.entropy_bits += consumed as u64 * 8;
            segment_base = p + 2;
            reader = BitReader::new(&scan[segment_base..]);
            dc_pred.iter_mut().for_each(|v| *v = 0);
            stats.restart_segments += 1;
        }

        let my = (mcu_index / mcu_cols as u64) as u32;
        let mx = (mcu_index % mcu_cols as u64) as u32;
        for (ci, c) in ctx.iter().enumerate() {
            for vy in 0..c.spec.v {
                for hx in 0..c.spec.h {
                    decode_block(
                        &mut reader,
                        c.dc,
                        c.ac,
                        &mut dc_pred[ci],
                        &mut quantized,
                        &mut stats,
                    )?;
                    c.q.dequantize(&quantized, &mut coeffs);
                    idct_8x8(&coeffs, &mut samples);
                    // Write the level-shifted samples into the plane.
                    let plane = &mut planes[ci];
                    let bx = (mx * c.spec.h as u32 + hx as u32) as usize * 8;
                    let by = (my * c.spec.v as u32 + vy as u32) as usize * 8;
                    for y in 0..8 {
                        let row = (by + y) * plane.width + bx;
                        for x in 0..8 {
                            plane.data[row + x] = clamp_u8(samples[y * 8 + x] + 128.0);
                        }
                    }
                    stats.blocks += 1;
                }
            }
        }
        stats.mcus += 1;
    }
    stats.entropy_bits += reader.byte_pos() as u64 * 8;

    let image = assemble_image(
        frame,
        &ctx.iter().map(|c| c.spec).collect::<Vec<_>>(),
        &planes,
    )?;
    Ok((image, stats))
}

/// Decodes one 8×8 block into raster-order quantized coefficients.
fn decode_block(
    r: &mut BitReader<'_>,
    dc_table: &HuffTable,
    ac_table: &HuffTable,
    dc_pred: &mut i32,
    out: &mut [i16; BLOCK_LEN],
    stats: &mut DecodeStats,
) -> CodecResult<()> {
    out.fill(0);
    // DC.
    let ssss = dc_table.decode(r)? as u32;
    if ssss > 11 {
        return Err(CodecError::MalformedSegment {
            detail: format!("DC category {ssss}"),
        });
    }
    let diff = if ssss > 0 {
        decode_magnitude(r.get_bits(ssss)?, ssss)
    } else {
        0
    };
    *dc_pred += diff;
    out[0] = *dc_pred as i16;
    if *dc_pred != 0 {
        stats.nonzero_coeffs += 1;
    }

    // AC.
    let mut k = 1usize;
    while k < BLOCK_LEN {
        let rs = ac_table.decode(r)?;
        let run = (rs >> 4) as usize;
        let size = (rs & 0x0F) as u32;
        if size == 0 {
            if run == 15 {
                k += 16; // ZRL
                continue;
            }
            break; // EOB
        }
        k += run;
        if k >= BLOCK_LEN {
            return Err(CodecError::MalformedSegment {
                detail: format!("AC run overflows block at k={k}"),
            });
        }
        let v = decode_magnitude(r.get_bits(size)?, size);
        out[ZIGZAG[k]] = v as i16;
        stats.nonzero_coeffs += 1;
        k += 1;
    }
    Ok(())
}

/// Upsamples chroma planes and interleaves the final image.
fn assemble_image(
    frame: &FrameInfo,
    specs: &[ComponentSpec],
    planes: &[OutPlane],
) -> CodecResult<Image> {
    let w = frame.width as usize;
    let h = frame.height as usize;
    let (h_max, v_max) = frame.max_sampling();

    if specs.len() == 1 {
        let plane = &planes[0];
        let mut data = vec![0u8; w * h];
        for y in 0..h {
            data[y * w..(y + 1) * w]
                .copy_from_slice(&plane.data[y * plane.width..y * plane.width + w]);
        }
        return Image::from_vec(frame.width, frame.height, ColorSpace::Gray, data);
    }

    let mut data = vec![0u8; w * h * 3];
    for y in 0..h {
        for x in 0..w {
            let mut ycc = [0u8; 3];
            for (ci, spec) in specs.iter().enumerate() {
                let plane = &planes[ci];
                // Nearest-neighbour upsample by the sampling ratio.
                let sx = x * spec.h as usize / h_max as usize;
                let sy = y * spec.v as usize / v_max as usize;
                let sx = sx.min(plane.width - 1);
                let sy = sy.min(plane.height - 1);
                ycc[ci] = plane.data[sy * plane.width + sx];
            }
            let [r, g, b] = ycbcr_to_rgb(ycc[0], ycc[1], ycc[2]);
            let o = (y * w + x) * 3;
            data[o] = r;
            data[o + 1] = g;
            data[o + 2] = b;
        }
    }
    Image::from_vec(frame.width, frame.height, ColorSpace::Rgb, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpeg::encoder::JpegEncoder;
    use crate::jpeg::ChromaMode;

    fn psnr(a: &Image, b: &Image) -> f64 {
        assert_eq!(a.byte_len(), b.byte_len());
        let mse: f64 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            / a.byte_len() as f64;
        if mse == 0.0 {
            return f64::INFINITY;
        }
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }

    fn test_image(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h, ColorSpace::Rgb).unwrap();
        for y in 0..h {
            for x in 0..w {
                // Smooth content plus mild structure: JPEG-friendly.
                let r = (128.0 + 100.0 * ((x as f32) * 0.07).sin()) as u8;
                let g = (128.0 + 100.0 * ((y as f32) * 0.05).cos()) as u8;
                let b = ((x + y) / 2 % 256) as u8;
                img.set_pixel(x, y, [r, g, b]);
            }
        }
        img
    }

    #[test]
    fn roundtrip_420_high_quality() {
        let img = test_image(64, 48);
        let bytes = JpegEncoder::new(92).unwrap().encode(&img).unwrap();
        let out = JpegDecoder::new().decode(&bytes).unwrap();
        assert_eq!(out.width(), 64);
        assert_eq!(out.height(), 48);
        assert_eq!(out.color(), ColorSpace::Rgb);
        let p = psnr(&img, &out);
        assert!(p > 28.0, "PSNR {p:.1} dB too low for q92 4:2:0");
    }

    #[test]
    fn roundtrip_444_is_sharper_than_420() {
        let img = test_image(48, 48);
        let enc444 = JpegEncoder::new(90)
            .unwrap()
            .with_mode(ChromaMode::Yuv444)
            .encode(&img)
            .unwrap();
        let enc420 = JpegEncoder::new(90).unwrap().encode(&img).unwrap();
        let dec = JpegDecoder::new();
        let p444 = psnr(&img, &dec.decode(&enc444).unwrap());
        let p420 = psnr(&img, &dec.decode(&enc420).unwrap());
        assert!(p444 >= p420 - 0.5, "444 {p444:.1} vs 420 {p420:.1}");
    }

    #[test]
    fn roundtrip_grayscale() {
        let img = test_image(40, 40).to_gray();
        let bytes = JpegEncoder::new(90).unwrap().encode(&img).unwrap();
        let out = JpegDecoder::new().decode(&bytes).unwrap();
        assert_eq!(out.color(), ColorSpace::Gray);
        let p = psnr(&img, &out);
        assert!(p > 30.0, "grayscale PSNR {p:.1}");
    }

    #[test]
    fn roundtrip_nonmultiple_dimensions() {
        for (w, h) in [(17, 13), (15, 9), (31, 33), (8, 8), (1, 1), (3, 50)] {
            let img = test_image(w, h);
            let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
            let out = JpegDecoder::new().decode(&bytes).unwrap();
            assert_eq!((out.width(), out.height()), (w, h), "{w}x{h}");
        }
    }

    #[test]
    fn roundtrip_with_restart_intervals() {
        let img = test_image(64, 64);
        let plain = JpegEncoder::new(88).unwrap().encode(&img).unwrap();
        let restarts = JpegEncoder::new(88)
            .unwrap()
            .with_restart_interval(2)
            .encode(&img)
            .unwrap();
        let dec = JpegDecoder::new();
        let a = dec.decode(&plain).unwrap();
        let b = dec.decode(&restarts).unwrap();
        // Restart intervals change framing, not pixels.
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn header_decode_reports_geometry() {
        let img = test_image(100, 60);
        let bytes = JpegEncoder::new(80)
            .unwrap()
            .with_restart_interval(5)
            .encode(&img)
            .unwrap();
        let info = JpegDecoder::new().decode_header(&bytes).unwrap();
        assert_eq!(info.width, 100);
        assert_eq!(info.height, 60);
        assert_eq!(info.restart_interval, 5);
        assert_eq!(info.components.len(), 3);
        assert_eq!(info.chroma_mode().unwrap(), ChromaMode::Yuv420);
    }

    #[test]
    fn stats_are_plausible() {
        let img = test_image(64, 48);
        let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
        let (_, stats) = JpegDecoder::new().decode_with_stats(&bytes).unwrap();
        // 64x48 at 4:2:0 → 4x3 MCUs, 6 blocks each.
        assert_eq!(stats.mcus, 12);
        assert_eq!(stats.blocks, 72);
        assert!(stats.entropy_bits > 0);
        assert!(stats.nonzero_coeffs > stats.blocks); // DC + some AC
        assert_eq!(stats.restart_segments, 1);
    }

    #[test]
    fn rejects_garbage() {
        let dec = JpegDecoder::new();
        assert!(dec.decode(&[]).is_err());
        assert!(dec.decode(&[0x00, 0x01, 0x02]).is_err());
        assert!(dec.decode(&[0xFF, 0xD8, 0xFF, 0xD9]).is_err()); // EOI before SOS
    }

    #[test]
    fn rejects_progressive() {
        // Fake a SOF2 (progressive) frame.
        let mut bytes = vec![
            0xFF, 0xD8, 0xFF, 0xC2, 0x00, 0x0B, 8, 0, 8, 0, 8, 1, 1, 0x11, 0,
        ];
        bytes.extend_from_slice(&[0xFF, 0xD9]);
        let err = JpegDecoder::new().decode(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn truncated_scan_errors() {
        let img = test_image(64, 64);
        let mut bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(JpegDecoder::new().decode(&bytes).is_err());
    }

    #[test]
    fn corrupted_entropy_detected_or_contained() {
        // Flipping bytes mid-scan must never panic; it may decode to garbage
        // pixels or error, both acceptable.
        let img = test_image(48, 48);
        let clean = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
        for step in [3usize, 7, 11] {
            let mut bytes = clean.clone();
            let start = bytes.len() / 2;
            let mut i = start;
            while i < bytes.len() - 2 {
                bytes[i] ^= 0x55;
                i += step;
            }
            let _ = JpegDecoder::new().decode(&bytes);
        }
    }
}

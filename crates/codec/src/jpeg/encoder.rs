//! Baseline JPEG encoder.
//!
//! Used by `dlb-storage` to synthesise the ILSVRC-like and MNIST-like
//! datasets: every byte the decoders (CPU baseline and simulated FPGA) chew
//! on was produced here, so the decode workload is realistic end to end.

use super::{component_layout, marker, ChromaMode, ComponentSpec};
use crate::dct::{fdct_8x8, BLOCK_LEN, ZIGZAG};
use crate::error::{CodecError, CodecResult};
use crate::huffman::{
    encode_magnitude, magnitude_category, std_ac_chroma, std_ac_luma, std_dc_chroma, std_dc_luma,
    BitWriter, HuffTable,
};
use crate::pixel::{rgb_to_ycbcr, ColorSpace, Image};
use crate::quant::QuantTable;

/// Configurable baseline JPEG encoder.
///
/// ```
/// use dlb_codec::{Image, ColorSpace, JpegEncoder, JpegDecoder};
/// let img = Image::new(32, 24, ColorSpace::Rgb).unwrap();
/// let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
/// let decoded = JpegDecoder::new().decode(&bytes).unwrap();
/// assert_eq!(decoded.width(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct JpegEncoder {
    quality: u8,
    mode: ChromaMode,
    restart_interval: u16,
}

impl JpegEncoder {
    /// Creates an encoder with libjpeg-style `quality` in `[1, 100]` and
    /// 4:2:0 chroma subsampling for colour inputs.
    pub fn new(quality: u8) -> CodecResult<Self> {
        if quality == 0 || quality > 100 {
            return Err(CodecError::InvalidArgument {
                detail: format!("quality {quality} out of [1, 100]"),
            });
        }
        Ok(Self {
            quality,
            mode: ChromaMode::Yuv420,
            restart_interval: 0,
        })
    }

    /// Overrides the chroma mode used for RGB inputs (grayscale inputs always
    /// encode as single-component scans).
    pub fn with_mode(mut self, mode: ChromaMode) -> Self {
        self.mode = mode;
        self
    }

    /// Emits a DRI segment and RSTn markers every `interval` MCUs
    /// (0 disables). Restart segments are what let a multi-way hardware
    /// Huffman unit split one image across lanes.
    pub fn with_restart_interval(mut self, interval: u16) -> Self {
        self.restart_interval = interval;
        self
    }

    /// Encoder quality setting.
    pub fn quality(&self) -> u8 {
        self.quality
    }

    /// Encodes `img` into a complete JFIF byte stream.
    pub fn encode(&self, img: &Image) -> CodecResult<Vec<u8>> {
        let mode = match img.color() {
            ColorSpace::Gray => ChromaMode::Grayscale,
            ColorSpace::Rgb => match self.mode {
                ChromaMode::Grayscale => ChromaMode::Yuv444,
                m => m,
            },
        };
        let components = component_layout(mode);
        let qtables = [
            QuantTable::luma(self.quality)?,
            QuantTable::chroma(self.quality)?,
        ];
        let planes = build_planes(img, mode, &components);

        let mut out = Vec::with_capacity(img.byte_len() / 4 + 1024);
        write_headers(
            &mut out,
            img.width(),
            img.height(),
            &components,
            &qtables,
            self.restart_interval,
            mode,
        );
        self.encode_scan(&mut out, img, mode, &components, &qtables, &planes)?;
        out.extend_from_slice(&[0xFF, marker::EOI]);
        Ok(out)
    }

    fn encode_scan(
        &self,
        out: &mut Vec<u8>,
        img: &Image,
        mode: ChromaMode,
        components: &[ComponentSpec],
        qtables: &[QuantTable; 2],
        planes: &[Plane],
    ) -> CodecResult<()> {
        let (dc_tables, ac_tables) = standard_tables(mode);
        let (mcu_w, mcu_h) = mode.mcu_size();
        let mcu_cols = img.width().div_ceil(mcu_w);
        let mcu_rows = img.height().div_ceil(mcu_h);
        let total_mcus = mcu_cols as u64 * mcu_rows as u64;

        let mut dc_pred = vec![0i32; components.len()];
        let mut writer = BitWriter::new();
        let mut mcus_in_segment: u64 = 0;
        let mut rst_index: u8 = 0;

        let mut samples = [0f32; BLOCK_LEN];
        let mut coeffs = [0f32; BLOCK_LEN];
        let mut quantized = [0i16; BLOCK_LEN];

        for mcu_index in 0..total_mcus {
            let my = (mcu_index / mcu_cols as u64) as u32;
            let mx = (mcu_index % mcu_cols as u64) as u32;
            for (ci, comp) in components.iter().enumerate() {
                let plane = &planes[ci];
                for vy in 0..comp.v {
                    for hx in 0..comp.h {
                        let bx = mx * comp.h as u32 + hx as u32;
                        let by = my * comp.v as u32 + vy as u32;
                        plane.extract_block(bx, by, &mut samples);
                        fdct_8x8(&samples, &mut coeffs);
                        qtables[comp.qtable as usize].quantize(&coeffs, &mut quantized);
                        encode_block(
                            &mut writer,
                            &quantized,
                            &mut dc_pred[ci],
                            &dc_tables[comp.dc_table as usize],
                            &ac_tables[comp.ac_table as usize],
                        )?;
                    }
                }
            }
            mcus_in_segment += 1;
            let last = mcu_index + 1 == total_mcus;
            if self.restart_interval > 0 && mcus_in_segment == self.restart_interval as u64 && !last
            {
                // Close the segment: byte-align with 1-padding, then emit the
                // restart marker unstuffed and reset the DC predictors.
                let seg = std::mem::take(&mut writer).finish();
                out.extend_from_slice(&seg);
                out.extend_from_slice(&[0xFF, marker::RST0 + (rst_index & 7)]);
                rst_index = rst_index.wrapping_add(1);
                dc_pred.iter_mut().for_each(|p| *p = 0);
                mcus_in_segment = 0;
            }
        }
        out.extend_from_slice(&writer.finish());
        Ok(())
    }
}

/// One padded component plane, in whole 8×8 blocks covering the MCU grid.
struct Plane {
    /// Plane samples, `width_px` × `height_px`, edge-replicated padding.
    data: Vec<u8>,
    width_px: usize,
}

impl Plane {
    fn extract_block(&self, bx: u32, by: u32, out: &mut [f32; BLOCK_LEN]) {
        let x0 = bx as usize * 8;
        let y0 = by as usize * 8;
        for y in 0..8 {
            let row = (y0 + y) * self.width_px + x0;
            for x in 0..8 {
                // Level shift to [-128, 127].
                out[y * 8 + x] = self.data[row + x] as f32 - 128.0;
            }
        }
    }
}

/// Converts the image into padded per-component planes (Y / Cb / Cr or Gray).
fn build_planes(img: &Image, mode: ChromaMode, components: &[ComponentSpec]) -> Vec<Plane> {
    let (mcu_w, mcu_h) = mode.mcu_size();
    let mcu_cols = img.width().div_ceil(mcu_w) as usize;
    let mcu_rows = img.height().div_ceil(mcu_h) as usize;
    let w = img.width() as usize;
    let h = img.height() as usize;

    // Full-resolution Y/Cb/Cr (or a single gray plane).
    let (y_full, cb_full, cr_full) = match img.color() {
        ColorSpace::Gray => (img.data().to_vec(), Vec::new(), Vec::new()),
        ColorSpace::Rgb => {
            let mut y = vec![0u8; w * h];
            let mut cb = vec![0u8; w * h];
            let mut cr = vec![0u8; w * h];
            for (i, px) in img.data().chunks_exact(3).enumerate() {
                let [yy, cbb, crr] = rgb_to_ycbcr(px[0], px[1], px[2]);
                y[i] = yy;
                cb[i] = cbb;
                cr[i] = crr;
            }
            (y, cb, cr)
        }
    };

    components
        .iter()
        .enumerate()
        .map(|(ci, comp)| {
            // Component resolution before padding.
            let (h_max, v_max) = mode.luma_sampling();
            let cw = (w * comp.h as usize).div_ceil(h_max as usize);
            let ch = (h * comp.v as usize).div_ceil(v_max as usize);
            let src: Vec<u8> = if ci == 0 {
                y_full.clone()
            } else if comp.h == h_max && comp.v == v_max {
                if ci == 1 {
                    cb_full.clone()
                } else {
                    cr_full.clone()
                }
            } else {
                // Box-filter downsample (2×2 average for 4:2:0).
                let full = if ci == 1 { &cb_full } else { &cr_full };
                downsample_box(full, w, h, cw, ch)
            };
            // Pad to the MCU block coverage with edge replication.
            let pw = mcu_cols * comp.h as usize * 8;
            let ph = mcu_rows * comp.v as usize * 8;
            let mut data = vec![0u8; pw * ph];
            for py in 0..ph {
                let sy = py.min(ch - 1);
                for px in 0..pw {
                    let sx = px.min(cw - 1);
                    data[py * pw + px] = src[sy * cw + sx];
                }
            }
            Plane { data, width_px: pw }
        })
        .collect()
}

/// 2×2 (or ratio-matched) box downsample with edge replication.
fn downsample_box(src: &[u8], sw: usize, sh: usize, dw: usize, dh: usize) -> Vec<u8> {
    let fx = sw.div_ceil(dw).max(1);
    let fy = sh.div_ceil(dh).max(1);
    let mut out = vec![0u8; dw * dh];
    for dy in 0..dh {
        for dx in 0..dw {
            let mut acc = 0u32;
            let mut n = 0u32;
            for oy in 0..fy {
                for ox in 0..fx {
                    let sx = (dx * fx + ox).min(sw - 1);
                    let sy = (dy * fy + oy).min(sh - 1);
                    acc += src[sy * sw + sx] as u32;
                    n += 1;
                }
            }
            out[dy * dw + dx] = ((acc + n / 2) / n) as u8;
        }
    }
    out
}

/// Encodes one quantized raster-order block (DC diff + AC run-length).
fn encode_block(
    w: &mut BitWriter,
    block: &[i16; BLOCK_LEN],
    dc_pred: &mut i32,
    dc_table: &HuffTable,
    ac_table: &HuffTable,
) -> CodecResult<()> {
    // DC coefficient: difference from predictor, category-coded.
    let dc = block[0] as i32;
    let diff = dc - *dc_pred;
    *dc_pred = dc;
    let ssss = magnitude_category(diff);
    dc_table.encode(w, ssss as u8)?;
    if ssss > 0 {
        w.put_bits(encode_magnitude(diff, ssss), ssss);
    }

    // AC coefficients in zigzag order with (run, size) symbols.
    let mut run = 0u32;
    for &raster in ZIGZAG.iter().skip(1) {
        let v = block[raster] as i32;
        if v == 0 {
            run += 1;
            continue;
        }
        while run > 15 {
            ac_table.encode(w, 0xF0)?; // ZRL: 16 zeros
            run -= 16;
        }
        let ssss = magnitude_category(v);
        debug_assert!(ssss <= 10, "baseline AC magnitude {ssss}");
        ac_table.encode(w, ((run << 4) | ssss) as u8)?;
        w.put_bits(encode_magnitude(v, ssss), ssss);
        run = 0;
    }
    if run > 0 {
        ac_table.encode(w, 0x00)?; // EOB
    }
    Ok(())
}

/// DC/AC tables per slot for the given mode (slot 0 = luma, slot 1 = chroma).
fn standard_tables(mode: ChromaMode) -> (Vec<HuffTable>, Vec<HuffTable>) {
    match mode {
        ChromaMode::Grayscale => (vec![std_dc_luma()], vec![std_ac_luma()]),
        _ => (
            vec![std_dc_luma(), std_dc_chroma()],
            vec![std_ac_luma(), std_ac_chroma()],
        ),
    }
}

// ---------------------------------------------------------------------------
// Header writing
// ---------------------------------------------------------------------------

fn push_segment(out: &mut Vec<u8>, m: u8, payload: &[u8]) {
    out.extend_from_slice(&[0xFF, m]);
    let len = (payload.len() + 2) as u16;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
}

fn write_headers(
    out: &mut Vec<u8>,
    width: u32,
    height: u32,
    components: &[ComponentSpec],
    qtables: &[QuantTable; 2],
    restart_interval: u16,
    mode: ChromaMode,
) {
    out.extend_from_slice(&[0xFF, marker::SOI]);

    // APP0 / JFIF 1.02, no thumbnail.
    let mut app0 = Vec::new();
    app0.extend_from_slice(b"JFIF\0");
    app0.extend_from_slice(&[1, 2, 0]); // version, aspect-ratio units
    app0.extend_from_slice(&1u16.to_be_bytes()); // x density
    app0.extend_from_slice(&1u16.to_be_bytes()); // y density
    app0.extend_from_slice(&[0, 0]); // no thumbnail
    push_segment(out, marker::APP0, &app0);

    // DQT per used slot, 8-bit precision, zigzag order.
    let slots: &[u8] = if mode == ChromaMode::Grayscale {
        &[0]
    } else {
        &[0, 1]
    };
    for &slot in slots {
        let mut dqt = Vec::with_capacity(65);
        dqt.push(slot); // precision 0 (8-bit) in high nibble
        let vals = qtables[slot as usize].values();
        for &raster in ZIGZAG.iter() {
            dqt.push(vals[raster] as u8);
        }
        push_segment(out, marker::DQT, &dqt);
    }

    // SOF0.
    let mut sof = Vec::new();
    sof.push(8); // precision
    sof.extend_from_slice(&(height as u16).to_be_bytes());
    sof.extend_from_slice(&(width as u16).to_be_bytes());
    sof.push(components.len() as u8);
    for c in components {
        sof.push(c.id);
        sof.push((c.h << 4) | c.v);
        sof.push(c.qtable);
    }
    push_segment(out, marker::SOF0, &sof);

    // DHT for each table in use.
    let (dc_tables, ac_tables) = standard_tables(mode);
    for (slot, t) in dc_tables.iter().enumerate() {
        let mut dht = Vec::new();
        dht.push(slot as u8); // class 0 (DC) in high nibble
        dht.extend_from_slice(t.counts());
        dht.extend_from_slice(t.symbols());
        push_segment(out, marker::DHT, &dht);
    }
    for (slot, t) in ac_tables.iter().enumerate() {
        let mut dht = Vec::new();
        dht.push(0x10 | slot as u8); // class 1 (AC)
        dht.extend_from_slice(t.counts());
        dht.extend_from_slice(t.symbols());
        push_segment(out, marker::DHT, &dht);
    }

    if restart_interval > 0 {
        push_segment(out, marker::DRI, &restart_interval.to_be_bytes());
    }

    // SOS.
    let mut sos = Vec::new();
    sos.push(components.len() as u8);
    for c in components {
        sos.push(c.id);
        sos.push((c.dc_table << 4) | c.ac_table);
    }
    sos.extend_from_slice(&[0, 63, 0]); // spectral selection for baseline
    push_segment(out, marker::SOS, &sos);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_rgb(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h, ColorSpace::Rgb).unwrap();
        for y in 0..h {
            for x in 0..w {
                img.set_pixel(
                    x,
                    y,
                    [
                        (x * 255 / w.max(1)) as u8,
                        (y * 255 / h.max(1)) as u8,
                        ((x + y) % 256) as u8,
                    ],
                );
            }
        }
        img
    }

    #[test]
    fn encode_produces_valid_framing() {
        let img = gradient_rgb(32, 24);
        let bytes = JpegEncoder::new(80).unwrap().encode(&img).unwrap();
        assert_eq!(&bytes[..2], &[0xFF, marker::SOI]);
        assert_eq!(&bytes[bytes.len() - 2..], &[0xFF, marker::EOI]);
        // Must contain SOF0, DHT, DQT, SOS markers.
        let has = |m: u8| bytes.windows(2).any(|w| w[0] == 0xFF && w[1] == m);
        assert!(has(marker::SOF0));
        assert!(has(marker::DHT));
        assert!(has(marker::DQT));
        assert!(has(marker::SOS));
    }

    #[test]
    fn grayscale_encoding_has_one_component() {
        let img = gradient_rgb(16, 16).to_gray();
        let bytes = JpegEncoder::new(80).unwrap().encode(&img).unwrap();
        // Find SOF0 and check the component count byte.
        let pos = bytes
            .windows(2)
            .position(|w| w == [0xFF, marker::SOF0])
            .unwrap();
        let ncomp = bytes[pos + 2 + 2 + 5];
        assert_eq!(ncomp, 1);
    }

    #[test]
    fn restart_markers_emitted() {
        let img = gradient_rgb(64, 64); // 16 MCUs at 4:2:0
        let bytes = JpegEncoder::new(80)
            .unwrap()
            .with_restart_interval(4)
            .encode(&img)
            .unwrap();
        let rst_count = bytes
            .windows(2)
            .filter(|w| w[0] == 0xFF && marker::is_rst(w[1]))
            .count();
        // 16 MCUs, interval 4 → 3 internal restarts (none after the last).
        assert_eq!(rst_count, 3);
        // DRI segment present.
        assert!(bytes.windows(2).any(|w| w == [0xFF, marker::DRI]));
    }

    #[test]
    fn quality_monotonically_affects_size() {
        let img = gradient_rgb(64, 48);
        let low = JpegEncoder::new(20).unwrap().encode(&img).unwrap();
        let high = JpegEncoder::new(95).unwrap().encode(&img).unwrap();
        assert!(
            high.len() > low.len(),
            "q95 ({}) should out-size q20 ({})",
            high.len(),
            low.len()
        );
    }

    #[test]
    fn yuv444_encodes_nonmultiple_dims() {
        let img = gradient_rgb(13, 7);
        let bytes = JpegEncoder::new(75)
            .unwrap()
            .with_mode(ChromaMode::Yuv444)
            .encode(&img)
            .unwrap();
        assert!(bytes.len() > 100);
    }

    #[test]
    fn downsample_preserves_constants() {
        let src = vec![77u8; 8 * 6];
        let out = downsample_box(&src, 8, 6, 4, 3);
        assert_eq!(out, vec![77u8; 12]);
    }

    #[test]
    fn rejects_bad_quality() {
        assert!(JpegEncoder::new(0).is_err());
        assert!(JpegEncoder::new(101).is_err());
    }
}

//! Baseline sequential JPEG (ITU-T T.81) over a JFIF container.
//!
//! Supported subset — deliberately matching what image DL datasets use and
//! what the paper's FPGA decoder implements:
//!
//! * 8-bit baseline DCT (SOF0), Huffman entropy coding,
//! * grayscale, YCbCr 4:4:4 and YCbCr 4:2:0,
//! * optional restart intervals (DRI / RSTn) — these are what allow the
//!   simulated FPGA's multi-way Huffman unit to decode one image with
//!   segment-level parallelism.

pub mod decoder;
pub mod encoder;

use crate::error::{CodecError, CodecResult};

/// JPEG marker bytes (the byte following `0xFF`).
pub mod marker {
    /// Start of image.
    pub const SOI: u8 = 0xD8;
    /// End of image.
    pub const EOI: u8 = 0xD9;
    /// Baseline DCT frame header.
    pub const SOF0: u8 = 0xC0;
    /// Define Huffman table(s).
    pub const DHT: u8 = 0xC4;
    /// Define quantization table(s).
    pub const DQT: u8 = 0xDB;
    /// Define restart interval.
    pub const DRI: u8 = 0xDD;
    /// Start of scan.
    pub const SOS: u8 = 0xDA;
    /// JFIF application segment.
    pub const APP0: u8 = 0xE0;
    /// Comment.
    pub const COM: u8 = 0xFE;
    /// First restart marker; RSTn = RST0 + (n mod 8).
    pub const RST0: u8 = 0xD0;

    /// Whether `m` is one of the eight restart markers.
    #[inline]
    pub fn is_rst(m: u8) -> bool {
        (RST0..RST0 + 8).contains(&m)
    }
}

/// Chroma handling selected at encode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChromaMode {
    /// Single-component grayscale scan.
    Grayscale,
    /// Three components, no subsampling (1×1,1×1,1×1).
    Yuv444,
    /// Three components, 2×1 luma sampling (horizontal-only chroma
    /// subsampling, common in video-derived stills).
    Yuv422,
    /// Three components, 2×2 luma sampling (the common photographic mode and
    /// the paper's dataset format).
    Yuv420,
}

impl ChromaMode {
    /// Number of scan components.
    pub fn components(self) -> usize {
        match self {
            ChromaMode::Grayscale => 1,
            _ => 3,
        }
    }

    /// (h, v) sampling factors of the luma component.
    pub fn luma_sampling(self) -> (u8, u8) {
        match self {
            ChromaMode::Yuv420 => (2, 2),
            ChromaMode::Yuv422 => (2, 1),
            _ => (1, 1),
        }
    }

    /// MCU size in pixels.
    pub fn mcu_size(self) -> (u32, u32) {
        let (h, v) = self.luma_sampling();
        (8 * h as u32, 8 * v as u32)
    }
}

/// Per-component layout information shared by encoder and decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentSpec {
    /// Component identifier as written in SOF0/SOS (1 = Y, 2 = Cb, 3 = Cr).
    pub id: u8,
    /// Horizontal sampling factor (1 or 2).
    pub h: u8,
    /// Vertical sampling factor (1 or 2).
    pub v: u8,
    /// Quantization table slot (0 = luma, 1 = chroma).
    pub qtable: u8,
    /// DC Huffman table slot.
    pub dc_table: u8,
    /// AC Huffman table slot.
    pub ac_table: u8,
}

/// Frame-level metadata parsed from (or written to) the JFIF headers.
///
/// The DLBooster `DataCollector` exposes exactly this kind of metadata to the
/// cmd generator so the FPGA parser knows the geometry before the scan starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInfo {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Scan components in order.
    pub components: Vec<ComponentSpec>,
    /// Restart interval in MCUs (0 = none).
    pub restart_interval: u16,
}

impl FrameInfo {
    /// (h_max, v_max) across components.
    pub fn max_sampling(&self) -> (u8, u8) {
        let h = self.components.iter().map(|c| c.h).max().unwrap_or(1);
        let v = self.components.iter().map(|c| c.v).max().unwrap_or(1);
        (h, v)
    }

    /// MCU grid dimensions (columns, rows).
    pub fn mcu_grid(&self) -> (u32, u32) {
        let (h, v) = self.max_sampling();
        let mcu_w = 8 * h as u32;
        let mcu_h = 8 * v as u32;
        (self.width.div_ceil(mcu_w), self.height.div_ceil(mcu_h))
    }

    /// Total number of MCUs in the scan.
    pub fn mcu_count(&self) -> u64 {
        let (c, r) = self.mcu_grid();
        c as u64 * r as u64
    }

    /// 8×8 blocks per MCU across all components.
    pub fn blocks_per_mcu(&self) -> u32 {
        self.components
            .iter()
            .map(|c| c.h as u32 * c.v as u32)
            .sum()
    }

    /// Chroma mode implied by the component layout, when recognisable.
    pub fn chroma_mode(&self) -> CodecResult<ChromaMode> {
        match self.components.len() {
            1 => Ok(ChromaMode::Grayscale),
            3 => {
                let y = &self.components[0];
                match (y.h, y.v) {
                    (1, 1) => Ok(ChromaMode::Yuv444),
                    (2, 1) => Ok(ChromaMode::Yuv422),
                    (2, 2) => Ok(ChromaMode::Yuv420),
                    (h, v) => Err(CodecError::Unsupported {
                        feature: format!("luma sampling {h}x{v}"),
                    }),
                }
            }
            n => Err(CodecError::Unsupported {
                feature: format!("{n}-component scan"),
            }),
        }
    }
}

/// Standard component layouts for each [`ChromaMode`].
pub fn component_layout(mode: ChromaMode) -> Vec<ComponentSpec> {
    match mode {
        ChromaMode::Grayscale => vec![ComponentSpec {
            id: 1,
            h: 1,
            v: 1,
            qtable: 0,
            dc_table: 0,
            ac_table: 0,
        }],
        ChromaMode::Yuv444 | ChromaMode::Yuv422 | ChromaMode::Yuv420 => {
            let (h, v) = mode.luma_sampling();
            vec![
                ComponentSpec {
                    id: 1,
                    h,
                    v,
                    qtable: 0,
                    dc_table: 0,
                    ac_table: 0,
                },
                ComponentSpec {
                    id: 2,
                    h: 1,
                    v: 1,
                    qtable: 1,
                    dc_table: 1,
                    ac_table: 1,
                },
                ComponentSpec {
                    id: 3,
                    h: 1,
                    v: 1,
                    qtable: 1,
                    dc_table: 1,
                    ac_table: 1,
                },
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcu_geometry_444() {
        let info = FrameInfo {
            width: 17,
            height: 9,
            components: component_layout(ChromaMode::Yuv444),
            restart_interval: 0,
        };
        assert_eq!(info.max_sampling(), (1, 1));
        assert_eq!(info.mcu_grid(), (3, 2));
        assert_eq!(info.mcu_count(), 6);
        assert_eq!(info.blocks_per_mcu(), 3);
        assert_eq!(info.chroma_mode().unwrap(), ChromaMode::Yuv444);
    }

    #[test]
    fn mcu_geometry_422() {
        let info = FrameInfo {
            width: 33,
            height: 17,
            components: component_layout(ChromaMode::Yuv422),
            restart_interval: 0,
        };
        assert_eq!(info.max_sampling(), (2, 1));
        assert_eq!(info.mcu_grid(), (3, 3));
        assert_eq!(info.blocks_per_mcu(), 4);
        assert_eq!(info.chroma_mode().unwrap(), ChromaMode::Yuv422);
    }

    #[test]
    fn mcu_geometry_420() {
        let info = FrameInfo {
            width: 33,
            height: 17,
            components: component_layout(ChromaMode::Yuv420),
            restart_interval: 0,
        };
        assert_eq!(info.max_sampling(), (2, 2));
        assert_eq!(info.mcu_grid(), (3, 2));
        assert_eq!(info.blocks_per_mcu(), 6);
        assert_eq!(info.chroma_mode().unwrap(), ChromaMode::Yuv420);
    }

    #[test]
    fn grayscale_layout() {
        let info = FrameInfo {
            width: 8,
            height: 8,
            components: component_layout(ChromaMode::Grayscale),
            restart_interval: 0,
        };
        assert_eq!(info.blocks_per_mcu(), 1);
        assert_eq!(info.mcu_count(), 1);
        assert_eq!(info.chroma_mode().unwrap(), ChromaMode::Grayscale);
    }

    #[test]
    fn rst_marker_range() {
        assert!(marker::is_rst(0xD0));
        assert!(marker::is_rst(0xD7));
        assert!(!marker::is_rst(0xD8));
        assert!(!marker::is_rst(0xCF));
    }

    #[test]
    fn mcu_sizes() {
        assert_eq!(ChromaMode::Grayscale.mcu_size(), (8, 8));
        assert_eq!(ChromaMode::Yuv444.mcu_size(), (8, 8));
        assert_eq!(ChromaMode::Yuv422.mcu_size(), (16, 8));
        assert_eq!(ChromaMode::Yuv420.mcu_size(), (16, 16));
    }
}

//! 8×8 forward and inverse discrete cosine transforms.
//!
//! The FPGA decoder's iDCT unit (paper Fig. 4) is modelled functionally by
//! [`idct_8x8`]. Both directions use a separable direct float implementation:
//! exact enough that quantisation — not the transform — dominates the JPEG
//! roundtrip error, and simple enough to audit against the T.81 definition.

/// Side length of a DCT block.
pub const BLOCK_DIM: usize = 8;
/// Coefficients per block.
pub const BLOCK_LEN: usize = BLOCK_DIM * BLOCK_DIM;

/// Cosine basis: `COS[x][u] = cos((2x+1) u π / 16)`, premultiplied by the
/// normalisation factor `c(u) = 1/√2 for u = 0, else 1`, and by the global
/// 1/2 from the 2-D normalisation split across both passes.
fn basis() -> [[f32; BLOCK_DIM]; BLOCK_DIM] {
    let mut t = [[0f32; BLOCK_DIM]; BLOCK_DIM];
    for (x, row) in t.iter_mut().enumerate() {
        for (u, v) in row.iter_mut().enumerate() {
            let cu = if u == 0 { (0.5f32).sqrt() } else { 1.0 };
            *v = 0.5 * cu * ((2.0 * x as f32 + 1.0) * u as f32 * std::f32::consts::PI / 16.0).cos();
        }
    }
    t
}

fn basis_cached() -> &'static [[f32; BLOCK_DIM]; BLOCK_DIM] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f32; BLOCK_DIM]; BLOCK_DIM]> = OnceLock::new();
    TABLE.get_or_init(basis)
}

/// Forward 2-D DCT of one 8×8 block of level-shifted samples
/// (each in `[-128, 127]`), producing 64 frequency coefficients.
pub fn fdct_8x8(samples: &[f32; BLOCK_LEN], coeffs: &mut [f32; BLOCK_LEN]) {
    let b = basis_cached();
    // Row pass: tmp[y][u] = Σ_x samples[y][x] · COS[x][u]
    let mut tmp = [0f32; BLOCK_LEN];
    for y in 0..BLOCK_DIM {
        for u in 0..BLOCK_DIM {
            let mut acc = 0f32;
            for x in 0..BLOCK_DIM {
                acc += samples[y * BLOCK_DIM + x] * b[x][u];
            }
            tmp[y * BLOCK_DIM + u] = acc;
        }
    }
    // Column pass: coeffs[v][u] = Σ_y tmp[y][u] · COS[y][v]
    for v in 0..BLOCK_DIM {
        for u in 0..BLOCK_DIM {
            let mut acc = 0f32;
            for y in 0..BLOCK_DIM {
                acc += tmp[y * BLOCK_DIM + u] * b[y][v];
            }
            coeffs[v * BLOCK_DIM + u] = acc;
        }
    }
}

/// Inverse 2-D DCT of one 8×8 coefficient block back into level-shifted
/// spatial samples.
pub fn idct_8x8(coeffs: &[f32; BLOCK_LEN], samples: &mut [f32; BLOCK_LEN]) {
    let b = basis_cached();
    // Column pass: tmp[y][u] = Σ_v coeffs[v][u] · COS[y][v]
    let mut tmp = [0f32; BLOCK_LEN];
    for y in 0..BLOCK_DIM {
        for u in 0..BLOCK_DIM {
            let mut acc = 0f32;
            for v in 0..BLOCK_DIM {
                acc += coeffs[v * BLOCK_DIM + u] * b[y][v];
            }
            tmp[y * BLOCK_DIM + u] = acc;
        }
    }
    // Row pass: samples[y][x] = Σ_u tmp[y][u] · COS[x][u]
    for y in 0..BLOCK_DIM {
        for x in 0..BLOCK_DIM {
            let mut acc = 0f32;
            for u in 0..BLOCK_DIM {
                acc += tmp[y * BLOCK_DIM + u] * b[x][u];
            }
            samples[y * BLOCK_DIM + x] = acc;
        }
    }
}

/// Zigzag scan order mapping: `ZIGZAG[i]` is the raster index of the `i`-th
/// coefficient in zigzag order (T.81 Figure A.6).
pub const ZIGZAG: [usize; BLOCK_LEN] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Inverse of [`ZIGZAG`]: raster index → zigzag position.
pub fn zigzag_inverse() -> [usize; BLOCK_LEN] {
    let mut inv = [0usize; BLOCK_LEN];
    for (zz, &raster) in ZIGZAG.iter().enumerate() {
        inv[raster] = zz;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_error(samples: &[f32; BLOCK_LEN]) -> f32 {
        let mut coeffs = [0f32; BLOCK_LEN];
        let mut back = [0f32; BLOCK_LEN];
        fdct_8x8(samples, &mut coeffs);
        idct_8x8(&coeffs, &mut back);
        samples
            .iter()
            .zip(back.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max)
    }

    #[test]
    fn dct_of_constant_block_has_only_dc() {
        let samples = [100f32; BLOCK_LEN];
        let mut coeffs = [0f32; BLOCK_LEN];
        fdct_8x8(&samples, &mut coeffs);
        // DC of a constant block: 8 * value.
        assert!((coeffs[0] - 800.0).abs() < 1e-2, "dc = {}", coeffs[0]);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-3, "ac[{i}] = {c}");
        }
    }

    #[test]
    fn idct_of_dc_only_is_constant() {
        let mut coeffs = [0f32; BLOCK_LEN];
        coeffs[0] = 800.0;
        let mut samples = [0f32; BLOCK_LEN];
        idct_8x8(&coeffs, &mut samples);
        for &s in &samples {
            assert!((s - 100.0).abs() < 1e-2);
        }
    }

    #[test]
    fn roundtrip_is_near_exact() {
        // A deterministic pseudo-random block.
        let mut samples = [0f32; BLOCK_LEN];
        let mut state = 0x1234_5678u32;
        for s in samples.iter_mut() {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            *s = ((state >> 24) as f32) - 128.0;
        }
        assert!(roundtrip_error(&samples) < 1e-2);
    }

    #[test]
    fn roundtrip_extremes() {
        assert!(roundtrip_error(&[-128.0; BLOCK_LEN]) < 1e-2);
        assert!(roundtrip_error(&[127.0; BLOCK_LEN]) < 1e-2);
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_LEN];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_inverse_matches() {
        let inv = zigzag_inverse();
        for (zz, &raster) in ZIGZAG.iter().enumerate() {
            assert_eq!(inv[raster], zz);
        }
        // Spot-check documented positions.
        assert_eq!(ZIGZAG[0], 0);
        assert_eq!(ZIGZAG[1], 1);
        assert_eq!(ZIGZAG[2], 8);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut samples = [0f32; BLOCK_LEN];
        for (i, s) in samples.iter_mut().enumerate() {
            *s = ((i as f32) * 3.7).sin() * 100.0;
        }
        let mut coeffs = [0f32; BLOCK_LEN];
        fdct_8x8(&samples, &mut coeffs);
        let e_spatial: f32 = samples.iter().map(|s| s * s).sum();
        let e_freq: f32 = coeffs.iter().map(|c| c * c).sum();
        let rel = (e_spatial - e_freq).abs() / e_spatial.max(1.0);
        assert!(rel < 1e-4, "energy mismatch: {e_spatial} vs {e_freq}");
    }
}

//! 8×8 forward and inverse discrete cosine transforms.
//!
//! The FPGA decoder's iDCT unit (paper Fig. 4) is modelled functionally by
//! [`idct_8x8`]. Both directions use a separable direct float implementation:
//! exact enough that quantisation — not the transform — dominates the JPEG
//! roundtrip error, and simple enough to audit against the T.81 definition.

/// Side length of a DCT block.
pub const BLOCK_DIM: usize = 8;
/// Coefficients per block.
pub const BLOCK_LEN: usize = BLOCK_DIM * BLOCK_DIM;

/// Cosine basis: `COS[x][u] = cos((2x+1) u π / 16)`, premultiplied by the
/// normalisation factor `c(u) = 1/√2 for u = 0, else 1`, and by the global
/// 1/2 from the 2-D normalisation split across both passes.
fn basis() -> [[f32; BLOCK_DIM]; BLOCK_DIM] {
    let mut t = [[0f32; BLOCK_DIM]; BLOCK_DIM];
    for (x, row) in t.iter_mut().enumerate() {
        for (u, v) in row.iter_mut().enumerate() {
            let cu = if u == 0 { (0.5f32).sqrt() } else { 1.0 };
            *v = 0.5 * cu * ((2.0 * x as f32 + 1.0) * u as f32 * std::f32::consts::PI / 16.0).cos();
        }
    }
    t
}

fn basis_cached() -> &'static [[f32; BLOCK_DIM]; BLOCK_DIM] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f32; BLOCK_DIM]; BLOCK_DIM]> = OnceLock::new();
    TABLE.get_or_init(basis)
}

/// Forward 2-D DCT of one 8×8 block of level-shifted samples
/// (each in `[-128, 127]`), producing 64 frequency coefficients.
pub fn fdct_8x8(samples: &[f32; BLOCK_LEN], coeffs: &mut [f32; BLOCK_LEN]) {
    let b = basis_cached();
    // Row pass: tmp[y][u] = Σ_x samples[y][x] · COS[x][u]
    let mut tmp = [0f32; BLOCK_LEN];
    for y in 0..BLOCK_DIM {
        for u in 0..BLOCK_DIM {
            let mut acc = 0f32;
            for x in 0..BLOCK_DIM {
                acc += samples[y * BLOCK_DIM + x] * b[x][u];
            }
            tmp[y * BLOCK_DIM + u] = acc;
        }
    }
    // Column pass: coeffs[v][u] = Σ_y tmp[y][u] · COS[y][v]
    for v in 0..BLOCK_DIM {
        for u in 0..BLOCK_DIM {
            let mut acc = 0f32;
            for y in 0..BLOCK_DIM {
                acc += tmp[y * BLOCK_DIM + u] * b[y][v];
            }
            coeffs[v * BLOCK_DIM + u] = acc;
        }
    }
}

/// Inverse 2-D DCT of one 8×8 coefficient block back into level-shifted
/// spatial samples.
pub fn idct_8x8(coeffs: &[f32; BLOCK_LEN], samples: &mut [f32; BLOCK_LEN]) {
    let b = basis_cached();
    // Column pass: tmp[y][u] = Σ_v coeffs[v][u] · COS[y][v]
    let mut tmp = [0f32; BLOCK_LEN];
    for y in 0..BLOCK_DIM {
        for u in 0..BLOCK_DIM {
            let mut acc = 0f32;
            for v in 0..BLOCK_DIM {
                acc += coeffs[v * BLOCK_DIM + u] * b[y][v];
            }
            tmp[y * BLOCK_DIM + u] = acc;
        }
    }
    // Row pass: samples[y][x] = Σ_u tmp[y][u] · COS[x][u]
    for y in 0..BLOCK_DIM {
        for x in 0..BLOCK_DIM {
            let mut acc = 0f32;
            for u in 0..BLOCK_DIM {
                acc += tmp[y * BLOCK_DIM + u] * b[x][u];
            }
            samples[y * BLOCK_DIM + x] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Fast scaled iDCT (AAN)
// ---------------------------------------------------------------------------

/// AAN butterfly constant √2 (shared by the scalar and SIMD kernels so both
/// run the identical IEEE f32 operation sequence).
pub(crate) const SQRT2: f32 = std::f32::consts::SQRT_2;
/// 2·cos(π/8).
pub(crate) const C_A: f32 = 1.847_759_1;
/// 2·(cos(π/8) − cos(3π/8)).
pub(crate) const C_B: f32 = 1.082_392_2;
/// −2·(cos(π/8) + cos(3π/8)).
pub(crate) const C_C: f32 = -2.613_126;

/// AAN per-frequency scale factors: `1` for DC, `cos(k·π/16)·√2` for AC.
///
/// The AAN factorisation (Arai–Agui–Nakajima, the algorithm behind
/// libjpeg's float iDCT and the natural software mirror of the paper's
/// FPGA iDCT unit) pulls these constants out of the butterfly network;
/// they are folded into the dequantisation multipliers ahead of time, so
/// the per-block transform runs in ~80 multiplies instead of the O(8³)
/// basis-matrix products of [`idct_8x8`].
fn aan_scale_factors() -> [f32; BLOCK_DIM] {
    let mut s = [0f32; BLOCK_DIM];
    s[0] = 1.0;
    for (k, v) in s.iter_mut().enumerate().skip(1) {
        *v = (k as f32 * std::f32::consts::PI / 16.0).cos() * std::f32::consts::SQRT_2;
    }
    s
}

/// Folds a raster-order quantisation table into AAN iDCT multipliers:
/// `out[r·8+c] = q[r·8+c] · aan[r] · aan[c] / 8`. Feeding these to
/// [`idct_8x8_dequant`] performs dequantisation and the inverse transform
/// in one pass.
pub fn idct_scale_factors(q: &[u16; BLOCK_LEN]) -> [f32; BLOCK_LEN] {
    let aan = aan_scale_factors();
    let mut out = [0f32; BLOCK_LEN];
    for r in 0..BLOCK_DIM {
        for c in 0..BLOCK_DIM {
            out[r * BLOCK_DIM + c] = q[r * BLOCK_DIM + c] as f32 * aan[r] * aan[c] / 8.0;
        }
    }
    out
}

/// Fast inverse DCT of one quantised 8×8 block with dequantisation folded
/// into `scale` (from [`idct_scale_factors`]), writing level-shifted
/// spatial samples.
///
/// Matches the [`idct_8x8`] accuracy contract (the roundtrip error stays
/// dominated by quantisation, not the transform) while taking two sparse
/// fast paths the entropy-decoded coefficient statistics make common:
///
/// * **DC-only block** → a single multiply and a fill,
/// * **all-zero AC column** → that column's 1-D pass collapses to a copy.
pub fn idct_8x8_dequant(
    quantized: &[i16; BLOCK_LEN],
    scale: &[f32; BLOCK_LEN],
    samples: &mut [f32; BLOCK_LEN],
) {
    // DC-only shortcut: a constant block (very common for chroma and for
    // flat luma regions at ordinary qualities).
    if quantized[1..].iter().all(|&v| v == 0) {
        samples.fill(quantized[0] as f32 * scale[0]);
        return;
    }

    let mut ws = [0f32; BLOCK_LEN];

    // Column pass (dequantising on the fly).
    for c in 0..BLOCK_DIM {
        // Sparse column: all AC rows zero → the 1-D iDCT of this column is
        // a constant.
        if quantized[8 + c] == 0
            && quantized[16 + c] == 0
            && quantized[24 + c] == 0
            && quantized[32 + c] == 0
            && quantized[40 + c] == 0
            && quantized[48 + c] == 0
            && quantized[56 + c] == 0
        {
            let dc = quantized[c] as f32 * scale[c];
            for r in 0..BLOCK_DIM {
                ws[r * BLOCK_DIM + c] = dc;
            }
            continue;
        }

        // Even part.
        let tmp0 = quantized[c] as f32 * scale[c];
        let tmp1 = quantized[16 + c] as f32 * scale[16 + c];
        let tmp2 = quantized[32 + c] as f32 * scale[32 + c];
        let tmp3 = quantized[48 + c] as f32 * scale[48 + c];
        let tmp10 = tmp0 + tmp2;
        let tmp11 = tmp0 - tmp2;
        let tmp13 = tmp1 + tmp3;
        let tmp12 = (tmp1 - tmp3) * SQRT2 - tmp13;
        let e0 = tmp10 + tmp13;
        let e3 = tmp10 - tmp13;
        let e1 = tmp11 + tmp12;
        let e2 = tmp11 - tmp12;

        // Odd part.
        let tmp4 = quantized[8 + c] as f32 * scale[8 + c];
        let tmp5 = quantized[24 + c] as f32 * scale[24 + c];
        let tmp6 = quantized[40 + c] as f32 * scale[40 + c];
        let tmp7 = quantized[56 + c] as f32 * scale[56 + c];
        let z13 = tmp6 + tmp5;
        let z10 = tmp6 - tmp5;
        let z11 = tmp4 + tmp7;
        let z12 = tmp4 - tmp7;
        let o7 = z11 + z13;
        let z11_13 = (z11 - z13) * SQRT2;
        let z5 = (z10 + z12) * C_A;
        let o10 = C_B * z12 - z5;
        let o12 = C_C * z10 + z5;
        let o6 = o12 - o7;
        let o5 = z11_13 - o6;
        let o4 = o10 + o5;

        ws[c] = e0 + o7;
        ws[56 + c] = e0 - o7;
        ws[8 + c] = e1 + o6;
        ws[48 + c] = e1 - o6;
        ws[16 + c] = e2 + o5;
        ws[40 + c] = e2 - o5;
        ws[32 + c] = e3 + o4;
        ws[24 + c] = e3 - o4;
    }

    // Row pass.
    for r in 0..BLOCK_DIM {
        let row = &ws[r * BLOCK_DIM..r * BLOCK_DIM + BLOCK_DIM];
        let tmp10 = row[0] + row[4];
        let tmp11 = row[0] - row[4];
        let tmp13 = row[2] + row[6];
        let tmp12 = (row[2] - row[6]) * SQRT2 - tmp13;
        let e0 = tmp10 + tmp13;
        let e3 = tmp10 - tmp13;
        let e1 = tmp11 + tmp12;
        let e2 = tmp11 - tmp12;

        let z13 = row[5] + row[3];
        let z10 = row[5] - row[3];
        let z11 = row[1] + row[7];
        let z12 = row[1] - row[7];
        let o7 = z11 + z13;
        let z11_13 = (z11 - z13) * SQRT2;
        let z5 = (z10 + z12) * C_A;
        let o10 = C_B * z12 - z5;
        let o12 = C_C * z10 + z5;
        let o6 = o12 - o7;
        let o5 = z11_13 - o6;
        let o4 = o10 + o5;

        let out = &mut samples[r * BLOCK_DIM..r * BLOCK_DIM + BLOCK_DIM];
        out[0] = e0 + o7;
        out[7] = e0 - o7;
        out[1] = e1 + o6;
        out[6] = e1 - o6;
        out[2] = e2 + o5;
        out[5] = e2 - o5;
        out[4] = e3 + o4;
        out[3] = e3 - o4;
    }
}

/// [`idct_8x8_dequant`] fused with the level shift and u8 clamp, dispatching
/// to the AVX2 kernel when the host supports it (and
/// `DLB_CODEC_FORCE_SCALAR` is not set). Bit-exact with the scalar sequence
/// `idct_8x8_dequant` + `clamp_u8(s + 128.0)` — the SIMD lanes execute the
/// identical IEEE f32 operation order, which the codec proptests pin.
#[inline]
pub fn idct_8x8_dequant_u8(
    quantized: &[i16; BLOCK_LEN],
    scale: &[f32; BLOCK_LEN],
    out: &mut [u8; BLOCK_LEN],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_active() {
        // SAFETY: `simd_active` returns true only after runtime AVX2
        // detection succeeds.
        unsafe { crate::simd::idct_8x8_dequant_u8_avx2(quantized, scale, out) };
        return;
    }
    let mut samples = [0f32; BLOCK_LEN];
    idct_8x8_dequant(quantized, scale, &mut samples);
    for (o, &s) in out.iter_mut().zip(samples.iter()) {
        *o = crate::pixel::clamp_u8(s + 128.0);
    }
}

/// Zigzag scan order mapping: `ZIGZAG[i]` is the raster index of the `i`-th
/// coefficient in zigzag order (T.81 Figure A.6).
pub const ZIGZAG: [usize; BLOCK_LEN] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Inverse of [`ZIGZAG`]: raster index → zigzag position.
pub fn zigzag_inverse() -> [usize; BLOCK_LEN] {
    let mut inv = [0usize; BLOCK_LEN];
    for (zz, &raster) in ZIGZAG.iter().enumerate() {
        inv[raster] = zz;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_error(samples: &[f32; BLOCK_LEN]) -> f32 {
        let mut coeffs = [0f32; BLOCK_LEN];
        let mut back = [0f32; BLOCK_LEN];
        fdct_8x8(samples, &mut coeffs);
        idct_8x8(&coeffs, &mut back);
        samples
            .iter()
            .zip(back.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max)
    }

    #[test]
    fn dct_of_constant_block_has_only_dc() {
        let samples = [100f32; BLOCK_LEN];
        let mut coeffs = [0f32; BLOCK_LEN];
        fdct_8x8(&samples, &mut coeffs);
        // DC of a constant block: 8 * value.
        assert!((coeffs[0] - 800.0).abs() < 1e-2, "dc = {}", coeffs[0]);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-3, "ac[{i}] = {c}");
        }
    }

    #[test]
    fn idct_of_dc_only_is_constant() {
        let mut coeffs = [0f32; BLOCK_LEN];
        coeffs[0] = 800.0;
        let mut samples = [0f32; BLOCK_LEN];
        idct_8x8(&coeffs, &mut samples);
        for &s in &samples {
            assert!((s - 100.0).abs() < 1e-2);
        }
    }

    #[test]
    fn roundtrip_is_near_exact() {
        // A deterministic pseudo-random block.
        let mut samples = [0f32; BLOCK_LEN];
        let mut state = 0x1234_5678u32;
        for s in samples.iter_mut() {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            *s = ((state >> 24) as f32) - 128.0;
        }
        assert!(roundtrip_error(&samples) < 1e-2);
    }

    #[test]
    fn roundtrip_extremes() {
        assert!(roundtrip_error(&[-128.0; BLOCK_LEN]) < 1e-2);
        assert!(roundtrip_error(&[127.0; BLOCK_LEN]) < 1e-2);
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_LEN];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_inverse_matches() {
        let inv = zigzag_inverse();
        for (zz, &raster) in ZIGZAG.iter().enumerate() {
            assert_eq!(inv[raster], zz);
        }
        // Spot-check documented positions.
        assert_eq!(ZIGZAG[0], 0);
        assert_eq!(ZIGZAG[1], 1);
        assert_eq!(ZIGZAG[2], 8);
        assert_eq!(ZIGZAG[63], 63);
    }

    /// Reference: dequantize by plain multiplication then run the direct
    /// basis-matrix iDCT.
    fn reference_dequant_idct(
        quantized: &[i16; BLOCK_LEN],
        q: &[u16; BLOCK_LEN],
    ) -> [f32; BLOCK_LEN] {
        let mut coeffs = [0f32; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            coeffs[i] = quantized[i] as f32 * q[i] as f32;
        }
        let mut samples = [0f32; BLOCK_LEN];
        idct_8x8(&coeffs, &mut samples);
        samples
    }

    fn pseudo_random_block(seed: u32, density: u32) -> [i16; BLOCK_LEN] {
        let mut q = [0i16; BLOCK_LEN];
        let mut state = seed | 1;
        for v in q.iter_mut() {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            if state % 100 < density {
                *v = ((state >> 20) as i16 % 256) - 128;
            }
        }
        q
    }

    #[test]
    fn fast_idct_matches_reference_dense() {
        let qt: [u16; BLOCK_LEN] = std::array::from_fn(|i| 1 + (i as u16 % 13));
        let scale = idct_scale_factors(&qt);
        for seed in [1u32, 77, 4242, 0xDEAD] {
            let block = pseudo_random_block(seed, 100);
            let want = reference_dequant_idct(&block, &qt);
            let mut got = [0f32; BLOCK_LEN];
            idct_8x8_dequant(&block, &scale, &mut got);
            for i in 0..BLOCK_LEN {
                assert!(
                    (want[i] - got[i]).abs() < 0.02,
                    "seed {seed} idx {i}: ref {} vs fast {}",
                    want[i],
                    got[i]
                );
            }
        }
    }

    #[test]
    fn fast_idct_matches_reference_sparse() {
        // Typical post-quantisation blocks: most coefficients zero, which
        // exercises the DC-only and zero-column shortcuts.
        let qt = crate::quant::STD_LUMA_QTABLE;
        let scale = idct_scale_factors(&qt);
        for (seed, density) in [(3u32, 0), (9, 3), (11, 8), (23, 20)] {
            let mut block = pseudo_random_block(seed, density);
            block[0] = (seed as i16 % 64) - 32; // always some DC
            let want = reference_dequant_idct(&block, &qt);
            let mut got = [0f32; BLOCK_LEN];
            idct_8x8_dequant(&block, &scale, &mut got);
            for i in 0..BLOCK_LEN {
                assert!(
                    (want[i] - got[i]).abs() < 0.02,
                    "seed {seed} density {density} idx {i}: {} vs {}",
                    want[i],
                    got[i]
                );
            }
        }
    }

    #[test]
    fn fast_idct_dc_only_is_constant() {
        let qt: [u16; BLOCK_LEN] = [16; BLOCK_LEN];
        let scale = idct_scale_factors(&qt);
        let mut block = [0i16; BLOCK_LEN];
        block[0] = 50;
        let mut got = [0f32; BLOCK_LEN];
        idct_8x8_dequant(&block, &scale, &mut got);
        // DC scale: q·dc/8 = 16·50/8 = 100.
        for &s in &got {
            assert!((s - 100.0).abs() < 1e-3, "{s}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut samples = [0f32; BLOCK_LEN];
        for (i, s) in samples.iter_mut().enumerate() {
            *s = ((i as f32) * 3.7).sin() * 100.0;
        }
        let mut coeffs = [0f32; BLOCK_LEN];
        fdct_8x8(&samples, &mut coeffs);
        let e_spatial: f32 = samples.iter().map(|s| s * s).sum();
        let e_freq: f32 = coeffs.iter().map(|c| c * c).sum();
        let rel = (e_spatial - e_freq).abs() / e_spatial.max(1.0);
        assert!(rel < 1e-4, "energy mismatch: {e_spatial} vs {e_freq}");
    }
}

//! Audio preprocessing: framed DCT-II spectrogram extraction.
//!
//! Paper §2.1: "As for speech learning tasks, audio samples undergo a
//! discrete cosine transform to obtain the spectra data", and §3.1 promises
//! pluggable decoders for "speech models". This module is the functional
//! kernel behind the `AudioSpectrogram` mirror: 16-bit PCM in, log-magnitude
//! DCT coefficients out.

use crate::error::{CodecError, CodecResult};

/// Spectrogram extraction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpectrogramConfig {
    /// Samples per analysis frame (power of two keeps the hardware simple).
    pub frame_size: usize,
    /// Hop between frame starts.
    pub hop: usize,
    /// DCT coefficients kept per frame.
    pub coefficients: usize,
}

impl SpectrogramConfig {
    /// A speech-recognition-ish default: 25 ms frames at 16 kHz with 10 ms
    /// hop, 40 coefficients.
    pub fn speech_16k() -> Self {
        Self {
            frame_size: 400,
            hop: 160,
            coefficients: 40,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> CodecResult<()> {
        if self.frame_size == 0 || self.hop == 0 || self.coefficients == 0 {
            return Err(CodecError::InvalidArgument {
                detail: "frame_size, hop and coefficients must be positive".into(),
            });
        }
        if self.coefficients > self.frame_size {
            return Err(CodecError::InvalidArgument {
                detail: format!(
                    "coefficients {} exceed frame size {}",
                    self.coefficients, self.frame_size
                ),
            });
        }
        Ok(())
    }

    /// Number of frames extracted from `n_samples`.
    pub fn frames(&self, n_samples: usize) -> usize {
        if n_samples < self.frame_size {
            return 0;
        }
        (n_samples - self.frame_size) / self.hop + 1
    }
}

/// Parses little-endian 16-bit PCM.
pub fn pcm_from_le_bytes(bytes: &[u8]) -> CodecResult<Vec<i16>> {
    if !bytes.len().is_multiple_of(2) {
        return Err(CodecError::MalformedSegment {
            detail: format!("PCM byte length {} is odd", bytes.len()),
        });
    }
    Ok(bytes
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]))
        .collect())
}

/// Serialises PCM samples to little-endian bytes.
pub fn pcm_to_le_bytes(samples: &[i16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 2);
    for s in samples {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Extracts a log-magnitude DCT-II spectrogram: `frames × coefficients`
/// f32 values in row-major order.
pub fn spectrogram(samples: &[i16], config: &SpectrogramConfig) -> CodecResult<Vec<f32>> {
    config.validate()?;
    let n_frames = config.frames(samples.len());
    if n_frames == 0 {
        return Err(CodecError::InvalidArgument {
            detail: format!(
                "{} samples cannot fill one {}-sample frame",
                samples.len(),
                config.frame_size
            ),
        });
    }
    let n = config.frame_size;
    let mut out = Vec::with_capacity(n_frames * config.coefficients);
    // Hann window, precomputed.
    let window: Vec<f32> = (0..n)
        .map(|i| 0.5 - 0.5 * (2.0 * std::f32::consts::PI * i as f32 / (n as f32 - 1.0)).cos())
        .collect();
    // DCT-II basis rows for the kept coefficients.
    let mut windowed = vec![0f32; n];
    for f in 0..n_frames {
        let start = f * config.hop;
        for (i, w) in window.iter().enumerate() {
            windowed[i] = samples[start + i] as f32 / 32768.0 * w;
        }
        for k in 0..config.coefficients {
            let mut acc = 0f32;
            for (i, &x) in windowed.iter().enumerate() {
                acc += x * ((std::f32::consts::PI / n as f32) * (i as f32 + 0.5) * k as f32).cos();
            }
            // Log-magnitude with a floor, as speech front-ends do.
            out.push((acc.abs() + 1e-6).ln());
        }
    }
    Ok(out)
}

/// Deterministic synthetic speech-like PCM: a few harmonics with slow
/// amplitude modulation plus noise.
pub fn synth_pcm(n_samples: usize, seed: u64) -> Vec<i16> {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let f0 = 80.0 + (rng() % 200) as f32; // fundamental 80–280 Hz
    let harmonics: Vec<(f32, f32)> = (1..=4).map(|h| (f0 * h as f32, 1.0 / h as f32)).collect();
    (0..n_samples)
        .map(|i| {
            let t = i as f32 / 16_000.0;
            let env = 0.5 + 0.5 * (2.0 * std::f32::consts::PI * 3.0 * t).sin();
            let mut v = 0f32;
            for &(f, a) in &harmonics {
                v += a * (2.0 * std::f32::consts::PI * f * t).sin();
            }
            let noise = ((rng() >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.1;
            ((v * env * 0.4 + noise) * 20_000.0).clamp(-32768.0, 32767.0) as i16
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_roundtrip() {
        let samples: Vec<i16> = vec![0, 1, -1, 32767, -32768, 12345];
        let bytes = pcm_to_le_bytes(&samples);
        assert_eq!(pcm_from_le_bytes(&bytes).unwrap(), samples);
        assert!(pcm_from_le_bytes(&bytes[..3]).is_err());
    }

    #[test]
    fn frame_count_math() {
        let c = SpectrogramConfig::speech_16k();
        assert_eq!(c.frames(399), 0);
        assert_eq!(c.frames(400), 1);
        assert_eq!(c.frames(560), 2);
        assert_eq!(c.frames(16_000), (16_000 - 400) / 160 + 1);
    }

    #[test]
    fn spectrogram_shape_and_determinism() {
        let pcm = synth_pcm(16_000, 9);
        let c = SpectrogramConfig::speech_16k();
        let a = spectrogram(&pcm, &c).unwrap();
        let b = spectrogram(&pcm, &c).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), c.frames(16_000) * c.coefficients);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tonal_signal_concentrates_low_coefficients() {
        // A pure low-frequency tone puts more energy in low DCT bins than
        // white noise does, relatively.
        let c = SpectrogramConfig {
            frame_size: 256,
            hop: 128,
            coefficients: 64,
        };
        let tone: Vec<i16> = (0..4096)
            .map(|i| {
                ((2.0 * std::f32::consts::PI * 200.0 * i as f32 / 16_000.0).sin() * 16_000.0) as i16
            })
            .collect();
        let spec = spectrogram(&tone, &c).unwrap();
        // Average the first frame's low vs high halves (log domain).
        let lo: f32 = spec[..32].iter().sum::<f32>() / 32.0;
        let hi: f32 = spec[32..64].iter().sum::<f32>() / 32.0;
        assert!(lo > hi, "tonal energy must concentrate low: {lo} vs {hi}");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SpectrogramConfig::speech_16k();
        c.coefficients = 1000;
        assert!(spectrogram(&synth_pcm(1000, 1), &c).is_err());
        c = SpectrogramConfig {
            frame_size: 0,
            hop: 1,
            coefficients: 1,
        };
        assert!(c.validate().is_err());
        // Too few samples.
        assert!(spectrogram(&[0i16; 10], &SpectrogramConfig::speech_16k()).is_err());
    }

    #[test]
    fn synth_pcm_is_deterministic_and_nonsilent() {
        let a = synth_pcm(2000, 5);
        let b = synth_pcm(2000, 5);
        assert_eq!(a, b);
        assert_ne!(a, synth_pcm(2000, 6));
        let energy: f64 = a.iter().map(|&s| (s as f64).powi(2)).sum();
        assert!(energy > 1e6, "synthetic audio must carry signal");
    }
}

//! Image resampling.
//!
//! DLBooster's FPGA pipeline ends in a 2-way resizing unit (paper Fig. 4):
//! decoded frames are reshaped to the model input size (e.g. 256×256 before
//! the augmentation crop to 224×224) *on the device*, so the host only ever
//! sees fixed-size tensors. This module provides the same operation for the
//! functional pipeline and for the CPU baseline backend.

use crate::error::{CodecError, CodecResult};
use crate::pixel::{clamp_u8, Image};

/// Resampling filter selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResizeFilter {
    /// Nearest-neighbour: cheapest, used by the FPGA's low-area configuration.
    Nearest,
    /// Bilinear: the default, matching the paper's resizer unit.
    #[default]
    Bilinear,
    /// Box/area averaging: best for large downscales (offline conversion).
    Area,
}

/// Resizes `src` to `dst_w` × `dst_h` with the given filter.
pub fn resize(src: &Image, dst_w: u32, dst_h: u32, filter: ResizeFilter) -> CodecResult<Image> {
    if dst_w == 0 || dst_h == 0 || dst_w > Image::MAX_DIM || dst_h > Image::MAX_DIM {
        return Err(CodecError::UnsupportedDimensions {
            width: dst_w,
            height: dst_h,
        });
    }
    if dst_w == src.width() && dst_h == src.height() {
        return Ok(src.clone());
    }
    match filter {
        ResizeFilter::Nearest => Ok(resize_nearest(src, dst_w, dst_h)),
        ResizeFilter::Bilinear => Ok(resize_bilinear(src, dst_w, dst_h)),
        ResizeFilter::Area => Ok(resize_area(src, dst_w, dst_h)),
    }
}

fn resize_nearest(src: &Image, dst_w: u32, dst_h: u32) -> Image {
    let c = src.channels();
    let sw = src.width() as usize;
    let sh = src.height() as usize;
    let mut out = vec![0u8; dst_w as usize * dst_h as usize * c];
    let sdata = src.data();
    for dy in 0..dst_h as usize {
        let sy = (dy * sh / dst_h as usize).min(sh - 1);
        for dx in 0..dst_w as usize {
            let sx = (dx * sw / dst_w as usize).min(sw - 1);
            let s = (sy * sw + sx) * c;
            let d = (dy * dst_w as usize + dx) * c;
            out[d..d + c].copy_from_slice(&sdata[s..s + c]);
        }
    }
    Image::from_vec(dst_w, dst_h, src.color(), out).expect("dims validated")
}

/// One horizontal tap of the separable bilinear filter.
struct XTap {
    x0: usize,
    x1: usize,
    wx: f32,
}

/// Vertical bilinear blend of two horizontally-lerped rows into u8 output.
/// Bit-exact between the AVX2 kernel and the scalar loop.
#[inline]
fn lerp_rows_to_u8(top: &[f32], bot: &[f32], wy: f32, out: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_active() {
        // SAFETY: `simd_active` returns true only after runtime AVX2
        // detection succeeds; callers pass equal-length slices.
        unsafe { crate::simd::lerp_rows_to_u8_avx2(top, bot, wy, out) };
        return;
    }
    for ((o, &t), &b) in out.iter_mut().zip(top).zip(bot) {
        *o = clamp_u8(t + (b - t) * wy);
    }
}

fn resize_bilinear(src: &Image, dst_w: u32, dst_h: u32) -> Image {
    let c = src.channels();
    let sw = src.width() as usize;
    let sh = src.height() as usize;
    let sdata = src.data();
    let row_len = dst_w as usize * c;
    let mut out = vec![0u8; row_len * dst_h as usize];
    // Pixel-centre mapping: d+0.5 in dst ↔ (d+0.5)·scale in src.
    let x_scale = sw as f32 / dst_w as f32;
    let y_scale = sh as f32 / dst_h as f32;
    let taps: Vec<XTap> = (0..dst_w as usize)
        .map(|dx| {
            let fx = ((dx as f32 + 0.5) * x_scale - 0.5).max(0.0);
            let x0 = fx as usize;
            XTap {
                x0,
                x1: (x0 + 1).min(sw - 1),
                wx: fx - x0 as f32,
            }
        })
        .collect();
    // Horizontal lerp of one source row into f32, shared by every output
    // row that samples it: `p0 + (p1 − p0)·wx` — the same expression the
    // per-pixel loop evaluated as `top`/`bot`.
    let fill = |buf: &mut [f32], y: usize| {
        let base = y * sw * c;
        for (dx, t) in taps.iter().enumerate() {
            for ch in 0..c {
                let p0 = sdata[base + t.x0 * c + ch] as f32;
                let p1 = sdata[base + t.x1 * c + ch] as f32;
                buf[dx * c + ch] = p0 + (p1 - p0) * t.wx;
            }
        }
    };
    // Two-slot row cache keyed by source-row parity: `y0` and `y1` differ
    // by at most one, so parity separates them, and because `y0` is
    // nondecreasing in `dy` an evicted row is never needed again. Upscales
    // lerp each source row once instead of once per output row.
    let mut row_even = vec![0f32; row_len];
    let mut row_odd = vec![0f32; row_len];
    let mut idx_even = usize::MAX;
    let mut idx_odd = usize::MAX;
    for dy in 0..dst_h as usize {
        let fy = ((dy as f32 + 0.5) * y_scale - 0.5).max(0.0);
        let y0 = fy as usize;
        let y1 = (y0 + 1).min(sh - 1);
        let wy = fy - y0 as f32;
        for y in [y0, y1] {
            let (buf, idx) = if y.is_multiple_of(2) {
                (&mut row_even, &mut idx_even)
            } else {
                (&mut row_odd, &mut idx_odd)
            };
            if *idx != y {
                fill(buf, y);
                *idx = y;
            }
        }
        let top = if y0.is_multiple_of(2) {
            &row_even
        } else {
            &row_odd
        };
        let bot = if y1.is_multiple_of(2) {
            &row_even
        } else {
            &row_odd
        };
        lerp_rows_to_u8(top, bot, wy, &mut out[dy * row_len..][..row_len]);
    }
    Image::from_vec(dst_w, dst_h, src.color(), out).expect("dims validated")
}

fn resize_area(src: &Image, dst_w: u32, dst_h: u32) -> Image {
    let c = src.channels();
    let sw = src.width() as usize;
    let sh = src.height() as usize;
    let sdata = src.data();
    let mut out = vec![0u8; dst_w as usize * dst_h as usize * c];
    for dy in 0..dst_h as usize {
        // Source row span covered by this destination row.
        let y_lo = dy * sh / dst_h as usize;
        let y_hi = (((dy + 1) * sh).div_ceil(dst_h as usize))
            .min(sh)
            .max(y_lo + 1);
        for dx in 0..dst_w as usize {
            let x_lo = dx * sw / dst_w as usize;
            let x_hi = (((dx + 1) * sw).div_ceil(dst_w as usize))
                .min(sw)
                .max(x_lo + 1);
            let d = (dy * dst_w as usize + dx) * c;
            for ch in 0..c {
                let mut acc = 0u32;
                let mut n = 0u32;
                for sy in y_lo..y_hi {
                    for sx in x_lo..x_hi {
                        acc += sdata[(sy * sw + sx) * c + ch] as u32;
                        n += 1;
                    }
                }
                out[d + ch] = ((acc + n / 2) / n) as u8;
            }
        }
    }
    Image::from_vec(dst_w, dst_h, src.color(), out).expect("dims validated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::ColorSpace;

    fn solid(w: u32, h: u32, v: u8) -> Image {
        Image::from_vec(w, h, ColorSpace::Rgb, vec![v; (w * h * 3) as usize]).unwrap()
    }

    #[test]
    fn identity_resize_is_noop() {
        let img = solid(10, 10, 42);
        for f in [
            ResizeFilter::Nearest,
            ResizeFilter::Bilinear,
            ResizeFilter::Area,
        ] {
            let out = resize(&img, 10, 10, f).unwrap();
            assert_eq!(out.data(), img.data());
        }
    }

    #[test]
    fn constant_images_stay_constant() {
        let img = solid(37, 23, 99);
        for f in [
            ResizeFilter::Nearest,
            ResizeFilter::Bilinear,
            ResizeFilter::Area,
        ] {
            for (w, h) in [(10, 10), (64, 64), (5, 40)] {
                let out = resize(&img, w, h, f).unwrap();
                assert!(
                    out.data().iter().all(|&v| v == 99),
                    "{f:?} {w}x{h} broke constancy"
                );
            }
        }
    }

    #[test]
    fn upscale_dimensions() {
        let img = solid(8, 8, 1);
        let out = resize(&img, 32, 16, ResizeFilter::Bilinear).unwrap();
        assert_eq!(out.width(), 32);
        assert_eq!(out.height(), 16);
        assert_eq!(out.channels(), 3);
    }

    #[test]
    fn rejects_zero_target() {
        let img = solid(8, 8, 1);
        assert!(resize(&img, 0, 8, ResizeFilter::Nearest).is_err());
        assert!(resize(&img, 8, 0, ResizeFilter::Area).is_err());
    }

    #[test]
    fn bilinear_preserves_horizontal_gradient_monotonicity() {
        let mut img = Image::new(64, 4, ColorSpace::Gray).unwrap();
        for y in 0..4 {
            for x in 0..64 {
                img.set_pixel(x, y, [(x * 4) as u8, 0, 0]);
            }
        }
        let out = resize(&img, 16, 4, ResizeFilter::Bilinear).unwrap();
        for x in 1..16 {
            assert!(out.pixel(x, 0)[0] >= out.pixel(x - 1, 0)[0]);
        }
    }

    /// The original per-pixel bilinear loop, kept as the reference the
    /// row-based/SIMD implementation must match byte-for-byte.
    fn bilinear_reference(src: &Image, dst_w: u32, dst_h: u32) -> Vec<u8> {
        let c = src.channels();
        let sw = src.width() as usize;
        let sh = src.height() as usize;
        let sdata = src.data();
        let mut out = vec![0u8; dst_w as usize * dst_h as usize * c];
        let x_scale = sw as f32 / dst_w as f32;
        let y_scale = sh as f32 / dst_h as f32;
        for dy in 0..dst_h as usize {
            let fy = ((dy as f32 + 0.5) * y_scale - 0.5).max(0.0);
            let y0 = fy as usize;
            let y1 = (y0 + 1).min(sh - 1);
            let wy = fy - y0 as f32;
            for dx in 0..dst_w as usize {
                let fx = ((dx as f32 + 0.5) * x_scale - 0.5).max(0.0);
                let x0 = fx as usize;
                let x1 = (x0 + 1).min(sw - 1);
                let wx = fx - x0 as f32;
                let d = (dy * dst_w as usize + dx) * c;
                for ch in 0..c {
                    let p00 = sdata[(y0 * sw + x0) * c + ch] as f32;
                    let p01 = sdata[(y0 * sw + x1) * c + ch] as f32;
                    let p10 = sdata[(y1 * sw + x0) * c + ch] as f32;
                    let p11 = sdata[(y1 * sw + x1) * c + ch] as f32;
                    let top = p00 + (p01 - p00) * wx;
                    let bot = p10 + (p11 - p10) * wx;
                    out[d + ch] = clamp_u8(top + (bot - top) * wy);
                }
            }
        }
        out
    }

    #[test]
    fn bilinear_matches_per_pixel_reference() {
        let mut state = 0x1234_5678u32;
        let mut rng = || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 24) as u8
        };
        for (sw, sh) in [(17, 13), (32, 32), (5, 40)] {
            let data: Vec<u8> = (0..sw * sh * 3).map(|_| rng()).collect();
            let img = Image::from_vec(sw, sh, ColorSpace::Rgb, data).unwrap();
            for (dw, dh) in [(8, 8), (40, 9), (64, 64), (sw, 2 * sh)] {
                let got = resize(&img, dw, dh, ResizeFilter::Bilinear).unwrap();
                let want = bilinear_reference(&img, dw, dh);
                assert_eq!(got.data(), &want[..], "{sw}x{sh} -> {dw}x{dh}");
            }
        }
    }

    #[test]
    fn area_downscale_averages() {
        // 2x2 blocks of 0 and 200 average to 100.
        let mut img = Image::new(2, 2, ColorSpace::Gray).unwrap();
        img.set_pixel(0, 0, [0, 0, 0]);
        img.set_pixel(1, 0, [200, 0, 0]);
        img.set_pixel(0, 1, [200, 0, 0]);
        img.set_pixel(1, 1, [0, 0, 0]);
        let out = resize(&img, 1, 1, ResizeFilter::Area).unwrap();
        assert_eq!(out.pixel(0, 0)[0], 100);
    }

    #[test]
    fn gray_resize_keeps_colorspace() {
        let img = solid(12, 12, 5).to_gray();
        let out = resize(&img, 6, 6, ResizeFilter::Bilinear).unwrap();
        assert_eq!(out.color(), ColorSpace::Gray);
    }
}

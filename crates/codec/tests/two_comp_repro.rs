use dlb_codec::JpegDecoder;

// Hand-built minimal baseline JPEG with TWO components (parser allows 1..=3).
#[test]
fn two_component_frame_does_not_panic() {
    let mut b: Vec<u8> = Vec::new();
    b.extend_from_slice(&[0xFF, 0xD8]); // SOI

    // DQT: table 0, all ones
    b.extend_from_slice(&[0xFF, 0xDB, 0x00, 0x43, 0x00]);
    b.extend_from_slice(&[1u8; 64]);

    // SOF0: 8-bit, 8x8, 2 components, both 1x1 sampling, qtable 0
    b.extend_from_slice(&[0xFF, 0xC0, 0x00, 0x0E, 0x08, 0x00, 0x08, 0x00, 0x08, 0x02]);
    b.extend_from_slice(&[0x01, 0x11, 0x00]);
    b.extend_from_slice(&[0x02, 0x11, 0x00]);

    // DHT: DC table 0, single symbol 0x00 with a 1-bit code
    let mut dht_counts = [0u8; 16];
    dht_counts[0] = 1;
    b.extend_from_slice(&[0xFF, 0xC4, 0x00, 0x14, 0x00]);
    b.extend_from_slice(&dht_counts);
    b.push(0x00);
    // DHT: AC table 0, same shape
    b.extend_from_slice(&[0xFF, 0xC4, 0x00, 0x14, 0x10]);
    b.extend_from_slice(&dht_counts);
    b.push(0x00);

    // SOS: 2 components, both using DC/AC table 0
    b.extend_from_slice(&[0xFF, 0xDA, 0x00, 0x0A, 0x02]);
    b.extend_from_slice(&[0x01, 0x00]);
    b.extend_from_slice(&[0x02, 0x00]);
    b.extend_from_slice(&[0x00, 0x3F, 0x00]);

    // Entropy data: each block is DC code "0" (ssss=0) + AC EOB "0" = 2 bits;
    // 2 blocks = 4 bits, padded with 1s.
    b.push(0x0F);

    b.extend_from_slice(&[0xFF, 0xD9]); // EOI

    // Must not panic: Ok or Err are both acceptable.
    let _ = JpegDecoder::new().decode(&b);
}

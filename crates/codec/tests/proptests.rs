//! Property-based tests for the codec's core invariants.

use dlb_codec::dct::{fdct_8x8, idct_8x8, BLOCK_LEN};
use dlb_codec::huffman::{
    decode_magnitude, encode_magnitude, magnitude_category, BitReader, BitWriter, HuffTable,
};
use dlb_codec::jpeg::ChromaMode;
use dlb_codec::pixel::{rgb_to_ycbcr, ycbcr_to_rgb};
use dlb_codec::resize::{resize, ResizeFilter};
use dlb_codec::simd::{force_scalar, simd_active};
use dlb_codec::synth::{generate, SynthStyle};
use dlb_codec::{ColorSpace, Image, JpegDecoder, JpegEncoder};
use proptest::prelude::*;

fn psnr(a: &[u8], b: &[u8]) -> f64 {
    let mse: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_io_roundtrips(values in prop::collection::vec((0u32..=0xFFFF, 1u32..=16), 1..200)) {
        let mut w = BitWriter::new();
        let normalized: Vec<(u32, u32)> = values
            .iter()
            .map(|&(v, l)| (v & ((1u32 << l) - 1), l))
            .collect();
        for &(v, l) in &normalized {
            w.put_bits(v, l);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, l) in &normalized {
            prop_assert_eq!(r.get_bits(l).unwrap(), v);
        }
    }

    #[test]
    fn magnitude_coding_roundtrips(v in -32767i32..=32767) {
        let ssss = magnitude_category(v);
        let bits = encode_magnitude(v, ssss);
        prop_assert_eq!(decode_magnitude(bits, ssss), v);
    }

    #[test]
    fn dct_roundtrip_bounded(samples in prop::collection::vec(-128f32..=127f32, BLOCK_LEN)) {
        let mut arr = [0f32; BLOCK_LEN];
        arr.copy_from_slice(&samples);
        let mut coeffs = [0f32; BLOCK_LEN];
        let mut back = [0f32; BLOCK_LEN];
        fdct_8x8(&arr, &mut coeffs);
        idct_8x8(&coeffs, &mut back);
        for i in 0..BLOCK_LEN {
            prop_assert!((arr[i] - back[i]).abs() < 0.05, "idx {}: {} vs {}", i, arr[i], back[i]);
        }
    }

    #[test]
    fn ycbcr_roundtrip_close(r in 0u8..=255, g in 0u8..=255, b in 0u8..=255) {
        let [y, cb, cr] = rgb_to_ycbcr(r, g, b);
        let [r2, g2, b2] = ycbcr_to_rgb(y, cb, cr);
        prop_assert!((r as i16 - r2 as i16).abs() <= 2);
        prop_assert!((g as i16 - g2 as i16).abs() <= 2);
        prop_assert!((b as i16 - b2 as i16).abs() <= 2);
    }

    #[test]
    fn huffman_roundtrip_on_random_tables(
        lens in prop::collection::vec(2u8..=8, 4..16),
        seed in any::<u64>()
    ) {
        // Build a valid canonical table from random code lengths using the
        // Kraft inequality: assign as many codes per length as fit.
        let mut counts = [0u8; 16];
        let mut budget = 1.0f64;
        let mut symbols = Vec::new();
        let mut next_sym = 0u8;
        for &l in &lens {
            let cost = 0.5f64.powi(l as i32);
            if budget - cost > 1e-12 && counts[l as usize - 1] < 255 && symbols.len() < 255 {
                counts[l as usize - 1] += 1;
                symbols.push(next_sym);
                next_sym = next_sym.wrapping_add(1);
                budget -= cost;
            }
        }
        prop_assume!(!symbols.is_empty());
        // Canonical construction requires symbols sorted by length: re-sort.
        let mut by_len: Vec<(u8, u8)> = Vec::new();
        let mut k = 0;
        for l in 1..=16u8 {
            for _ in 0..counts[l as usize - 1] {
                by_len.push((l, symbols[k]));
                k += 1;
            }
        }
        by_len.sort_by_key(|&(l, _)| l);
        let sorted_symbols: Vec<u8> = by_len.iter().map(|&(_, s)| s).collect();
        let table = HuffTable::new(counts, &sorted_symbols).unwrap();

        // Encode a pseudo-random symbol sequence and decode it back.
        let mut rngstate = seed | 1;
        let seq: Vec<u8> = (0..100)
            .map(|_| {
                rngstate = rngstate.wrapping_mul(6364136223846793005).wrapping_add(1);
                sorted_symbols[(rngstate >> 33) as usize % sorted_symbols.len()]
            })
            .collect();
        let mut w = BitWriter::new();
        for &s in &seq {
            table.encode(&mut w, s).unwrap();
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &seq {
            prop_assert_eq!(table.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn jpeg_roundtrip_any_dims(
        w in 1u32..=80,
        h in 1u32..=80,
        quality in 60u8..=95,
        seed in any::<u64>(),
    ) {
        let img = generate(w, h, SynthStyle::Smooth, seed);
        let bytes = JpegEncoder::new(quality).unwrap().encode(&img).unwrap();
        let out = JpegDecoder::new().decode(&bytes).unwrap();
        prop_assert_eq!(out.width(), w);
        prop_assert_eq!(out.height(), h);
        prop_assert_eq!(out.color(), ColorSpace::Rgb);
        // Smooth content at q>=60 must be recognisable.
        let p = psnr(img.data(), out.data());
        prop_assert!(p > 20.0, "PSNR {} for {}x{} q{}", p, w, h, quality);
    }

    #[test]
    fn jpeg_restart_framing_is_pixel_invariant(
        w in 16u32..=64,
        h in 16u32..=64,
        interval in 1u16..=8,
        seed in any::<u64>(),
    ) {
        let img = generate(w, h, SynthStyle::Photo, seed);
        let enc = JpegEncoder::new(85).unwrap();
        let plain = enc.encode(&img).unwrap();
        let framed = enc.clone().with_restart_interval(interval).encode(&img).unwrap();
        let dec = JpegDecoder::new();
        let a = dec.decode(&plain).unwrap();
        let b = dec.decode(&framed).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }

    #[test]
    fn jpeg_444_roundtrip(w in 1u32..=48, h in 1u32..=48, seed in any::<u64>()) {
        let img = generate(w, h, SynthStyle::Smooth, seed);
        let bytes = JpegEncoder::new(90)
            .unwrap()
            .with_mode(ChromaMode::Yuv444)
            .encode(&img)
            .unwrap();
        let out = JpegDecoder::new().decode(&bytes).unwrap();
        prop_assert_eq!((out.width(), out.height()), (w, h));
    }

    #[test]
    fn resize_output_dims_always_match(
        sw in 1u32..=64, sh in 1u32..=64,
        dw in 1u32..=64, dh in 1u32..=64,
        filter in prop::sample::select(vec![
            ResizeFilter::Nearest,
            ResizeFilter::Bilinear,
            ResizeFilter::Area,
        ]),
        seed in any::<u64>(),
    ) {
        let img = generate(sw, sh, SynthStyle::Photo, seed);
        let out = resize(&img, dw, dh, filter).unwrap();
        prop_assert_eq!((out.width(), out.height()), (dw, dh));
        prop_assert_eq!(out.color(), img.color());
    }

    #[test]
    fn resize_respects_value_range(
        seed in any::<u64>(),
        dw in 1u32..=32,
        dh in 1u32..=32,
    ) {
        // All filters must interpolate within the source min/max per channel.
        let img = generate(24, 24, SynthStyle::Photo, seed);
        let lo = *img.data().iter().min().unwrap();
        let hi = *img.data().iter().max().unwrap();
        for f in [ResizeFilter::Nearest, ResizeFilter::Area] {
            let out = resize(&img, dw, dh, f).unwrap();
            for &v in out.data() {
                prop_assert!(v >= lo && v <= hi, "{:?}: {} outside [{}, {}]", f, v, lo, hi);
            }
        }
    }

    #[test]
    fn decoder_never_panics_on_mutations(
        seed in any::<u64>(),
        flips in prop::collection::vec((0usize..4096, 0u8..=255), 1..20),
    ) {
        let img = generate(32, 32, SynthStyle::Photo, seed);
        let mut bytes = JpegEncoder::new(80).unwrap().encode(&img).unwrap();
        for &(pos, val) in &flips {
            let idx = pos % bytes.len();
            bytes[idx] = val;
        }
        // Must return (Ok or Err) without panicking.
        let _ = JpegDecoder::new().decode(&bytes);
    }

    #[test]
    fn gray_jpeg_roundtrip(w in 8u32..=40, h in 8u32..=40, seed in any::<u64>()) {
        let img = generate(w, h, SynthStyle::Digit, seed);
        let bytes = JpegEncoder::new(90).unwrap().encode(&img).unwrap();
        let out = JpegDecoder::new().decode(&bytes).unwrap();
        prop_assert_eq!(out.color(), ColorSpace::Gray);
        prop_assert_eq!((out.width(), out.height()), (w, h));
    }

    #[test]
    fn parallel_decode_bit_exact_any_stream(
        w in 16u32..=96,
        h in 16u32..=96,
        interval in prop::sample::select(vec![0u16, 1, 7, 64]),
        mode in prop::sample::select(vec![
            ChromaMode::Yuv420,
            ChromaMode::Yuv422,
            ChromaMode::Yuv444,
        ]),
        seed in any::<u64>(),
    ) {
        let img = generate(w, h, SynthStyle::Photo, seed);
        let bytes = JpegEncoder::new(85)
            .unwrap()
            .with_mode(mode)
            .with_restart_interval(interval)
            .encode(&img)
            .unwrap();
        let dec = JpegDecoder::new();
        let (seq, seq_stats) = dec.decode_with_stats(&bytes).unwrap();
        let (par, par_stats) = dec.decode_parallel_with_stats(&bytes).unwrap();
        prop_assert_eq!(seq.data(), par.data());
        prop_assert_eq!(seq_stats.work(), par_stats.work());
    }

    #[test]
    fn parallel_decode_bit_exact_across_thread_counts(
        interval in prop::sample::select(vec![1u16, 3, 7]),
        threads in prop::sample::select(vec![1usize, 2, 4, 8]),
        seed in any::<u64>(),
    ) {
        let img = generate(64, 64, SynthStyle::Photo, seed);
        let bytes = JpegEncoder::new(85)
            .unwrap()
            .with_restart_interval(interval)
            .encode(&img)
            .unwrap();
        let dec = JpegDecoder::new();
        let seq = dec.decode(&bytes).unwrap();
        let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
        rayon::set_num_threads(Some(threads));
        let par = dec.decode_parallel(&bytes);
        rayon::set_num_threads(None);
        let par = par.unwrap();
        prop_assert_eq!(seq.data(), par.data());
    }

    #[test]
    fn simd_and_scalar_decode_bit_exact(
        w in 9u32..=80,
        h in 9u32..=80,
        quality in 60u8..=95,
        mode in prop::sample::select(vec![
            ChromaMode::Yuv444,
            ChromaMode::Yuv422,
            ChromaMode::Yuv420,
        ]),
        seed in any::<u64>(),
    ) {
        // The decode pipeline (iDCT, upsample, colour convert) must produce
        // identical bytes with the AVX2 kernels and the scalar fallback, on
        // every subsampling mode. On hosts without AVX2 both runs take the
        // scalar path and the test degenerates to determinism.
        let img = generate(w, h, SynthStyle::Photo, seed);
        let bytes = JpegEncoder::new(quality)
            .unwrap()
            .with_mode(mode)
            .encode(&img)
            .unwrap();
        let dec = JpegDecoder::new();
        let _guard = SIMD_MODE_LOCK.lock().unwrap();
        force_scalar(false);
        let native = dec.decode(&bytes).unwrap();
        force_scalar(true);
        let scalar = dec.decode(&bytes);
        force_scalar(false);
        let scalar = scalar.unwrap();
        prop_assert_eq!(native.data(), scalar.data());
    }

    #[test]
    fn simd_and_scalar_resize_bit_exact(
        sw in 2u32..=64, sh in 2u32..=64,
        dw in 1u32..=64, dh in 1u32..=64,
        seed in any::<u64>(),
    ) {
        let img = generate(sw, sh, SynthStyle::Photo, seed);
        let _guard = SIMD_MODE_LOCK.lock().unwrap();
        force_scalar(false);
        let native = resize(&img, dw, dh, ResizeFilter::Bilinear).unwrap();
        force_scalar(true);
        let scalar = resize(&img, dw, dh, ResizeFilter::Bilinear);
        force_scalar(false);
        let scalar = scalar.unwrap();
        prop_assert_eq!(native.data(), scalar.data());
    }

    #[test]
    fn fast_and_reference_entropy_bit_exact_any_stream(
        w in 9u32..=80,
        h in 9u32..=80,
        interval in prop::sample::select(vec![0u16, 1, 5]),
        mode in prop::sample::select(vec![
            ChromaMode::Yuv444,
            ChromaMode::Yuv422,
            ChromaMode::Yuv420,
        ]),
        seed in any::<u64>(),
    ) {
        // The reservoir/LUT Huffman decoder against the bit-at-a-time
        // reference: identical pixels and work counters (entropy_bits is a
        // reader-position artefact and is excluded).
        let img = generate(w, h, SynthStyle::Photo, seed);
        let bytes = JpegEncoder::new(85)
            .unwrap()
            .with_mode(mode)
            .with_restart_interval(interval)
            .encode(&img)
            .unwrap();
        let (a, sa) = JpegDecoder::new().decode_with_stats(&bytes).unwrap();
        let (b, sb) = JpegDecoder::new()
            .with_reference_entropy(true)
            .decode_with_stats(&bytes)
            .unwrap();
        prop_assert_eq!(a.data(), b.data());
        prop_assert_eq!(
            (sa.mcus, sa.blocks, sa.nonzero_coeffs, sa.restart_segments),
            (sb.mcus, sb.blocks, sb.nonzero_coeffs, sb.restart_segments)
        );
    }

    #[test]
    fn fast_and_reference_entropy_agree_on_malformed_streams(
        flips in prop::collection::vec((0usize..4096, 0u8..=255), 1..12),
        seed in any::<u64>(),
    ) {
        // Corrupted streams: both entropy decoders must agree on
        // success/failure, and on the pixels when both succeed.
        let img = generate(48, 48, SynthStyle::Photo, seed);
        let mut bytes = JpegEncoder::new(80).unwrap().encode(&img).unwrap();
        for &(pos, val) in &flips {
            let idx = pos % bytes.len();
            bytes[idx] = val;
        }
        let fast = JpegDecoder::new().decode(&bytes);
        let reference = JpegDecoder::new()
            .with_reference_entropy(true)
            .decode(&bytes);
        match (fast, reference) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.data(), b.data()),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "entropy decoder disagreement: fast {:?} reference {:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }

    #[test]
    fn parallel_decode_error_equivalent_on_malformed_streams(
        interval in prop::sample::select(vec![2u16, 5]),
        flips in prop::collection::vec((0usize..4096, 0u8..=255), 1..12),
        seed in any::<u64>(),
    ) {
        let img = generate(48, 48, SynthStyle::Photo, seed);
        let mut bytes = JpegEncoder::new(80)
            .unwrap()
            .with_restart_interval(interval)
            .encode(&img)
            .unwrap();
        for &(pos, val) in &flips {
            let idx = pos % bytes.len();
            bytes[idx] = val;
        }
        let dec = JpegDecoder::new();
        let seq = dec.decode(&bytes);
        let par = dec.decode_parallel(&bytes);
        // Both paths pre-scan the same segment index and run the same
        // per-segment core: they must agree on success, and on the pixels
        // when they do succeed. (Error *values* are also equal today, but
        // the contract is outcome equivalence.)
        match (seq, par) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.data(), b.data()),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "decode disagreement: seq {:?} par {:?}", a.is_ok(), b.is_ok()),
        }
    }
}

/// Serialises tests that mutate the global rayon thread override.
static THREAD_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Serialises tests that flip the global SIMD dispatch mode. Flips are
/// harmless to concurrent decodes (SIMD and scalar outputs are bit-exact);
/// the lock only keeps the comparing tests from racing each other.
static SIMD_MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn force_scalar_env_override_disables_simd() {
    let _guard = SIMD_MODE_LOCK.lock().unwrap();
    std::env::set_var("DLB_CODEC_FORCE_SCALAR", "1");
    force_scalar(false); // re-run detection with the env var set
    assert!(!simd_active());
    std::env::remove_var("DLB_CODEC_FORCE_SCALAR");
    force_scalar(false);
    // Whatever detection now reports, a decode must still work.
    let img = generate(24, 24, SynthStyle::Photo, 7);
    let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
    JpegDecoder::new().decode(&bytes).unwrap();
}

#[test]
fn stuffed_ff_bytes_near_restart_boundaries_decode_identically() {
    // Regression for the old per-boundary marker hunt, which scanned raw
    // bytes for `0xFF` and could stop inside stuffed entropy data. Search
    // seeds for encoded streams that actually contain a stuffed `FF 00`
    // immediately before a restart marker, then require parallel decode to
    // be bit-exact with sequential there.
    let enc = JpegEncoder::new(95).unwrap().with_restart_interval(1);
    let dec = JpegDecoder::new();
    let mut exercised = 0;
    for seed in 0..500u64 {
        let img = generate(32, 32, SynthStyle::Photo, seed);
        let bytes = enc.clone().encode(&img).unwrap();
        let stuffed_before_rst = bytes
            .windows(4)
            .any(|w| w[0] == 0xFF && w[1] == 0x00 && w[2] == 0xFF && (0xD0..=0xD7).contains(&w[3]));
        if !stuffed_before_rst {
            continue;
        }
        exercised += 1;
        let seq = dec.decode(&bytes).unwrap();
        let par = dec.decode_parallel(&bytes).unwrap();
        assert_eq!(seq.data(), par.data(), "seed {seed}");
        if exercised >= 8 {
            break;
        }
    }
    assert!(
        exercised > 0,
        "no seed produced FF00 stuffing adjacent to a restart marker"
    );
}

#[test]
fn image_equality_across_decode_calls() {
    // Decoding the same bytes twice must be bit-identical (determinism
    // property relied on by backend-equivalence integration tests).
    let img = generate(100, 75, SynthStyle::Photo, 99);
    let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
    let dec = JpegDecoder::new();
    let a = dec.decode(&bytes).unwrap();
    let b = dec.decode(&bytes).unwrap();
    assert_eq!(a, b);
    assert_eq!(
        a.data(),
        Image::from_vec(100, 75, ColorSpace::Rgb, b.clone().into_vec())
            .unwrap()
            .data()
    );
}

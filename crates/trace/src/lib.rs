//! # dlb-trace — per-batch span tracing for the DLBooster pipeline
//!
//! A zero-external-dependency span/event plane. Each pipeline stage records
//! [`SpanRecord`]s keyed by a **batch ordinal** (allocated once by the
//! producing stage via [`Tracer::next_batch_id`] and carried alongside the
//! batch through every hand-off), so a whole run can later be folded into
//! per-batch latency attribution ([`analysis`]) or exported as a
//! Chrome/Perfetto `trace_event` JSON dump ([`perfetto`]).
//!
//! ## Design
//!
//! * **Per-thread bounded rings.** Every recording thread owns a private
//!   ring buffer (drop-oldest on overflow; drops are counted and exported
//!   via [`Tracer::dropped`]). The hot path is a thread-local lookup plus an
//!   uncontended mutex — no cross-thread contention, no allocation after the
//!   ring warms up.
//! * **Pay for what you use.** A [`Tracer`] is only consulted by stages when
//!   one has been installed; an uninstalled tracer costs exactly one branch
//!   per record site. Recording never perturbs pipeline control flow, RNG
//!   state, or batch payloads, so output is bitwise identical with tracing
//!   on or off.
//! * **Identity propagation.** Batch ordinals start at
//!   [`BATCH_ORDINAL_BASE`] so they can never collide with pipeline sequence
//!   numbers; duplicated work (cluster hedges, failover re-decodes) links the
//!   duplicate's ordinal to the winner's with [`Tracer::link`], letting the
//!   analyzer re-key duplicate spans onto the surviving copy.
//!
//! ## Quickstart
//!
//! ```
//! use dlb_trace::{SpanKind, Tracer};
//!
//! let tracer = Tracer::new();
//! let batch = tracer.next_batch_id();
//! let t0 = tracer.now();
//! // ... do the decode ...
//! tracer.span(batch, dlb_trace::stages::CPU_DECODE, SpanKind::Service, t0, tracer.now());
//! let snap = tracer.snapshot();
//! assert_eq!(snap.events.len(), 1);
//! let report = snap.critical_path();
//! assert_eq!(report.batches.len(), 1);
//! println!("{}", snap.to_perfetto());
//! ```

pub mod analysis;
pub mod perfetto;

pub use analysis::{AttributedPart, BatchAttribution, CriticalPathReport, StageLoad};

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// First value handed out by [`Tracer::next_batch_id`].
///
/// Batch ordinals live in their own namespace far above any pipeline
/// sequence number, so a `trace` field of `0` (or any raw sequence) can
/// never be mistaken for a traced identity.
pub const BATCH_ORDINAL_BASE: u64 = 1 << 48;

/// Default per-thread ring capacity (spans per recording thread).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Canonical stage names used by the pipeline's record sites.
///
/// Keeping these in one place means the analyzer, the figures, and the tests
/// all agree on spelling; record sites must not invent ad-hoc strings.
pub mod stages {
    /// Reader/worker waiting to lease a `BatchUnit` from the memory pool.
    pub const POOL_LEASE: &str = "pool.lease";
    /// FPGA decode: command submit to last completion of the batch.
    pub const FPGA_DECODE: &str = "fpga.decode";
    /// CPU baseline JPEG decode of a batch.
    pub const CPU_DECODE: &str = "cpu.decode";
    /// CPU baseline fetch of encoded bytes from storage.
    pub const FETCH: &str = "storage.fetch";
    /// CPU baseline resize of decoded samples.
    pub const RESIZE: &str = "cpu.resize";
    /// Seeded augmentation pass over a decoded batch.
    pub const AUGMENT: &str = "augment";
    /// Whole batch served from the decoded-sample cache (decode bypassed).
    pub const CACHE_BYPASS: &str = "cache.bypass";
    /// Router replaying a cached batch in a later epoch.
    pub const CACHE_REPLAY: &str = "cache.replay";
    /// Decoded batch waiting between ready and consumer pick-up
    /// (full queue + slot queue residency).
    pub const QUEUE_DELIVER: &str = "queue.deliver";
    /// Dispatcher host-to-device copy of a batch.
    pub const DISPATCH_H2D: &str = "dispatch.h2d";
    /// Failover event: primary declared dead, fallback takes over.
    pub const FAILOVER: &str = "failover";
    /// Reader resubmitted a timed-out decode under fresh cmd ids (the
    /// batch keeps its ordinal across the retry).
    pub const RETRY_RESUBMIT: &str = "retry.resubmit";
    /// Cluster hedge duplicate completion (linked to the winning copy).
    pub const HEDGE_DUP: &str = "cluster.hedge_dup";
    /// Synthetic stage name used for [`super::SpanKind::Link`] records.
    pub const LINK: &str = "link";
}

/// What a recorded interval represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Time spent waiting (queue residency, lease waits, backpressure).
    Queue,
    /// Time spent doing work (decode, resize, augment, copies).
    Service,
    /// A zero-length point event.
    Mark,
    /// Identity link: `batch` is an alias of `link` (hedge dup → winner).
    Link,
}

impl SpanKind {
    /// Short lowercase label, used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Queue => "queue",
            SpanKind::Service => "service",
            SpanKind::Mark => "mark",
            SpanKind::Link => "link",
        }
    }
}

/// One recorded span or event.
///
/// Times are nanoseconds since the owning tracer's epoch (its creation
/// instant), so records from different threads share one clock.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Batch ordinal this span belongs to (see [`Tracer::next_batch_id`]);
    /// for [`SpanKind::Link`] this is the *duplicate* ordinal.
    pub batch: u64,
    /// Unique span id: `thread << 32 | per-thread sequence`.
    pub span: u64,
    /// Canonical stage name (see [`stages`]).
    pub stage: &'static str,
    /// Queue wait, service time, point event, or identity link.
    pub kind: SpanKind,
    /// Start, nanoseconds since tracer epoch.
    pub start_ns: u64,
    /// End, nanoseconds since tracer epoch (`== start_ns` for marks).
    pub end_ns: u64,
    /// For [`SpanKind::Link`]: the ordinal this batch aliases. Otherwise 0.
    pub link: u64,
    /// Ordinal of the recording thread (assigned at first record).
    pub thread: u32,
}

struct RingState {
    buf: VecDeque<SpanRecord>,
    dropped: u64,
    next_span: u32,
}

struct Ring {
    thread: u32,
    state: Mutex<RingState>,
}

struct Inner {
    epoch: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    next_thread: AtomicU32,
    next_batch: AtomicU64,
}

thread_local! {
    /// Per-thread cache of (tracer identity → ring). Keyed by a `Weak` to the
    /// tracer's inner so a dead tracer's entry can never alias a new one
    /// allocated at the same address (the `Weak` upgrade fails first).
    static LOCAL_RINGS: RefCell<Vec<(Weak<Inner>, Arc<Ring>)>> = const { RefCell::new(Vec::new()) };
}

/// The span recorder. Cheap to clone (an `Arc` internally); one tracer is
/// shared by every stage of a pipeline, typically via
/// `Telemetry::install_tracer`.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.inner.capacity)
            .field("threads", &self.inner.next_thread.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer with the default per-thread ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A tracer whose per-thread rings hold at most `capacity` spans each;
    /// the oldest span is dropped (and counted) when a ring is full.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                rings: Mutex::new(Vec::new()),
                next_thread: AtomicU32::new(0),
                next_batch: AtomicU64::new(BATCH_ORDINAL_BASE),
            }),
        }
    }

    /// Allocate the next batch ordinal. Called once per batch by the stage
    /// that creates it; the ordinal then rides with the batch through every
    /// hand-off (e.g. `HostBatch::trace`).
    pub fn next_batch_id(&self) -> u64 {
        self.inner.next_batch.fetch_add(1, Ordering::Relaxed)
    }

    /// Current instant, for bracketing a span at its record site.
    pub fn now(&self) -> Instant {
        Instant::now()
    }

    /// Nanoseconds between the tracer's epoch and `t` (saturating at 0 for
    /// instants that precede the epoch).
    pub fn ns_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.inner.epoch).as_nanos() as u64
    }

    /// Record a `[start, end]` interval for `batch` at `stage`.
    pub fn span(
        &self,
        batch: u64,
        stage: &'static str,
        kind: SpanKind,
        start: Instant,
        end: Instant,
    ) {
        self.push(batch, stage, kind, self.ns_of(start), self.ns_of(end), 0);
    }

    /// Record an interval with pre-converted epoch-relative nanoseconds.
    pub fn span_ns(
        &self,
        batch: u64,
        stage: &'static str,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
    ) {
        self.push(batch, stage, kind, start_ns, end_ns.max(start_ns), 0);
    }

    /// Record a zero-length point event for `batch` at `stage`.
    pub fn mark(&self, batch: u64, stage: &'static str) {
        let now = self.ns_of(Instant::now());
        self.push(batch, stage, SpanKind::Mark, now, now, 0);
    }

    /// Declare that ordinal `from` is a duplicate of ordinal `to` (e.g. a
    /// hedged copy that lost the race). The analyzer folds `from`'s spans
    /// into `to`'s attribution.
    pub fn link(&self, from: u64, to: u64) {
        let now = self.ns_of(Instant::now());
        self.push(from, stages::LINK, SpanKind::Link, now, now, to);
    }

    /// Total spans dropped so far across all per-thread rings.
    pub fn dropped(&self) -> u64 {
        let rings = self.inner.rings.lock().unwrap();
        rings.iter().map(|r| r.state.lock().unwrap().dropped).sum()
    }

    /// Copy out every retained span, sorted by start time then span id.
    pub fn snapshot(&self) -> TraceSnapshot {
        let rings = self.inner.rings.lock().unwrap();
        let mut events = Vec::new();
        let mut dropped = 0;
        for ring in rings.iter() {
            let st = ring.state.lock().unwrap();
            dropped += st.dropped;
            events.extend(st.buf.iter().copied());
        }
        drop(rings);
        events.sort_by_key(|e| (e.start_ns, e.span));
        TraceSnapshot { events, dropped }
    }

    fn push(
        &self,
        batch: u64,
        stage: &'static str,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
        link: u64,
    ) {
        let ring = self.ring();
        let mut st = ring.state.lock().unwrap();
        let span = (u64::from(ring.thread) << 32) | u64::from(st.next_span);
        st.next_span = st.next_span.wrapping_add(1);
        if st.buf.len() >= self.inner.capacity {
            st.buf.pop_front();
            st.dropped += 1;
        }
        st.buf.push_back(SpanRecord {
            batch,
            span,
            stage,
            kind,
            start_ns,
            end_ns,
            link,
            thread: ring.thread,
        });
    }

    fn ring(&self) -> Arc<Ring> {
        LOCAL_RINGS.with(|slot| {
            let mut cached = slot.borrow_mut();
            cached.retain(|(owner, _)| owner.strong_count() > 0);
            let me = Arc::as_ptr(&self.inner);
            if let Some((_, ring)) = cached.iter().find(|(owner, _)| owner.as_ptr() == me) {
                return Arc::clone(ring);
            }
            let ring = Arc::new(Ring {
                thread: self.inner.next_thread.fetch_add(1, Ordering::Relaxed),
                state: Mutex::new(RingState {
                    buf: VecDeque::with_capacity(self.inner.capacity.min(1024)),
                    dropped: 0,
                    next_span: 0,
                }),
            });
            self.inner.rings.lock().unwrap().push(Arc::clone(&ring));
            cached.push((Arc::downgrade(&self.inner), Arc::clone(&ring)));
            ring
        })
    }
}

/// An immutable copy of every span a tracer retained, plus the drop count.
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// Spans sorted by `(start_ns, span)`.
    pub events: Vec<SpanRecord>,
    /// Spans lost to ring overflow before this snapshot was taken.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn batch_ordinals_are_namespaced_and_unique() {
        let t = Tracer::new();
        let a = t.next_batch_id();
        let b = t.next_batch_id();
        assert_eq!(a, BATCH_ORDINAL_BASE);
        assert_eq!(b, BATCH_ORDINAL_BASE + 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            t.span_ns(i, stages::CPU_DECODE, SpanKind::Service, i, i + 1);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        assert_eq!(t.dropped(), 6);
        // Oldest were dropped: surviving batches are 6..10.
        let batches: Vec<u64> = snap.events.iter().map(|e| e.batch).collect();
        assert_eq!(batches, vec![6, 7, 8, 9]);
    }

    #[test]
    fn threads_get_distinct_rings_and_span_ids() {
        let t = Tracer::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        t.span_ns(1, stages::AUGMENT, SpanKind::Service, i, i + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 400);
        assert_eq!(snap.dropped, 0);
        let mut ids: Vec<u64> = snap.events.iter().map(|e| e.span).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400, "span ids must be unique across threads");
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_mix() {
        let a = Tracer::new();
        let b = Tracer::new();
        a.span_ns(1, stages::CPU_DECODE, SpanKind::Service, 0, 1);
        b.span_ns(2, stages::CPU_DECODE, SpanKind::Service, 0, 1);
        a.span_ns(3, stages::CPU_DECODE, SpanKind::Service, 1, 2);
        assert_eq!(a.snapshot().events.len(), 2);
        assert_eq!(b.snapshot().events.len(), 1);
    }

    #[test]
    fn dropped_tracer_does_not_alias_new_one() {
        let a = Tracer::new();
        a.span_ns(1, stages::CPU_DECODE, SpanKind::Service, 0, 1);
        drop(a);
        // Allocate fresh tracers until the TLS slot is exercised again; none
        // may inherit the dead tracer's ring.
        for _ in 0..8 {
            let b = Tracer::new();
            b.span_ns(9, stages::CPU_DECODE, SpanKind::Service, 0, 1);
            assert_eq!(b.snapshot().events.len(), 1);
        }
    }

    #[test]
    fn link_records_carry_target() {
        let t = Tracer::new();
        t.link(10, 20);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, SpanKind::Link);
        assert_eq!(snap.events[0].batch, 10);
        assert_eq!(snap.events[0].link, 20);
    }
}

//! Critical-path analysis: fold a [`TraceSnapshot`](crate::TraceSnapshot)
//! into per-batch latency attribution and a pipeline-level bottleneck report.
//!
//! ## Attribution model
//!
//! For one batch, its window is `[min start, max end]` over all of its
//! spans. The window is cut at every span boundary; each segment is charged
//! to exactly one covering span — service beats queue, and among equals the
//! latest-starting (innermost) span wins, so a decode nested inside a broad
//! queue wait is charged as decode. Segments no span covers go to an
//! explicit `unattributed` bucket. By construction
//! `sum(parts) + unattributed == end-to-end window` **exactly** — the
//! "sums to end-to-end within tolerance" acceptance criterion holds with
//! zero error.
//!
//! [`SpanKind::Link`](crate::SpanKind::Link) records re-key a duplicate
//! ordinal's spans onto the winning ordinal before attribution, so hedged
//! duplicates and re-decodes fold into the surviving copy's timeline.

use crate::{SpanKind, SpanRecord, TraceSnapshot};
use std::collections::{BTreeMap, HashMap};

/// Time charged to one `(stage, kind)` pair within a batch's window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributedPart {
    /// Canonical stage name.
    pub stage: &'static str,
    /// Whether this was queue wait or service time.
    pub kind: SpanKind,
    /// Nanoseconds charged.
    pub ns: u64,
}

/// Where one batch's end-to-end latency went.
#[derive(Clone, Debug)]
pub struct BatchAttribution {
    /// Batch ordinal (post link resolution: the winning copy's ordinal).
    pub batch: u64,
    /// Window start, nanoseconds since tracer epoch.
    pub start_ns: u64,
    /// Window end, nanoseconds since tracer epoch.
    pub end_ns: u64,
    /// Charged segments, largest first.
    pub parts: Vec<AttributedPart>,
    /// Window time no span covered.
    pub unattributed_ns: u64,
}

impl BatchAttribution {
    /// End-to-end window length.
    pub fn total_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Sum of all charged parts (excludes `unattributed_ns`).
    pub fn attributed_ns(&self) -> u64 {
        self.parts.iter().map(|p| p.ns).sum()
    }

    /// Nanoseconds charged to `stage` with `kind`, 0 if absent.
    pub fn part_ns(&self, stage: &str, kind: SpanKind) -> u64 {
        self.parts
            .iter()
            .filter(|p| p.stage == stage && p.kind == kind)
            .map(|p| p.ns)
            .sum()
    }
}

/// Aggregate service load of one stage over the whole run.
#[derive(Clone, Debug)]
pub struct StageLoad {
    /// Canonical stage name.
    pub stage: &'static str,
    /// Union of this stage's service intervals (overlaps merged), ns.
    pub busy_ns: u64,
    /// `busy_ns / wall_ns` — fraction of the run this stage was working.
    pub utilization: f64,
    /// Number of service spans recorded for the stage.
    pub spans: u64,
}

/// Whole-run critical-path report.
#[derive(Clone, Debug)]
pub struct CriticalPathReport {
    /// Wall-clock span of the run: `[first span start, last span end]`, ns.
    pub wall_ns: u64,
    /// Per-batch latency attribution, ordered by batch ordinal.
    pub batches: Vec<BatchAttribution>,
    /// Per-stage service load, highest utilization first.
    pub stages: Vec<StageLoad>,
    /// Spans lost to ring overflow (attribution is best-effort when > 0).
    pub dropped: u64,
}

impl CriticalPathReport {
    /// The binding stage: highest service utilization, if any stage
    /// recorded service time.
    pub fn bottleneck(&self) -> Option<&StageLoad> {
        self.stages.first()
    }

    /// Mean queue-wait vs service split across batches, as
    /// `(queue_ns, service_ns, unattributed_ns)` means.
    pub fn mean_split(&self) -> (f64, f64, f64) {
        if self.batches.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = self.batches.len() as f64;
        let mut queue = 0.0;
        let mut service = 0.0;
        let mut other = 0.0;
        for b in &self.batches {
            for p in &b.parts {
                match p.kind {
                    SpanKind::Queue => queue += p.ns as f64,
                    SpanKind::Service => service += p.ns as f64,
                    _ => {}
                }
            }
            other += b.unattributed_ns as f64;
        }
        (queue / n, service / n, other / n)
    }
}

impl TraceSnapshot {
    /// Resolve [`SpanKind::Link`] aliases: map each duplicate ordinal to its
    /// final winner (following chains up to a small bound).
    fn link_map(&self) -> HashMap<u64, u64> {
        let mut direct: HashMap<u64, u64> = HashMap::new();
        for e in &self.events {
            if e.kind == SpanKind::Link {
                direct.insert(e.batch, e.link);
            }
        }
        let mut resolved = HashMap::new();
        for (&from, &mut mut to) in direct.clone().iter_mut() {
            for _ in 0..4 {
                match direct.get(&to) {
                    Some(&next) if next != to => to = next,
                    _ => break,
                }
            }
            resolved.insert(from, to);
        }
        resolved
    }

    /// Per-batch latency attribution (see module docs for the model).
    pub fn attribution(&self) -> Vec<BatchAttribution> {
        let links = self.link_map();
        let mut by_batch: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for e in &self.events {
            if !matches!(e.kind, SpanKind::Queue | SpanKind::Service) {
                continue;
            }
            let key = *links.get(&e.batch).unwrap_or(&e.batch);
            by_batch.entry(key).or_default().push(e);
        }
        by_batch
            .into_iter()
            .map(|(batch, spans)| attribute_one(batch, &spans))
            .collect()
    }

    /// Fold the whole snapshot into a [`CriticalPathReport`].
    pub fn critical_path(&self) -> CriticalPathReport {
        let batches = self.attribution();
        let timed: Vec<&SpanRecord> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, SpanKind::Queue | SpanKind::Service))
            .collect();
        let wall_start = timed.iter().map(|e| e.start_ns).min().unwrap_or(0);
        let wall_end = timed.iter().map(|e| e.end_ns).max().unwrap_or(0);
        let wall_ns = wall_end.saturating_sub(wall_start);

        let mut per_stage: BTreeMap<&'static str, Vec<(u64, u64)>> = BTreeMap::new();
        let mut span_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in &timed {
            if e.kind == SpanKind::Service && e.end_ns > e.start_ns {
                per_stage
                    .entry(e.stage)
                    .or_default()
                    .push((e.start_ns, e.end_ns));
                *span_counts.entry(e.stage).or_default() += 1;
            }
        }
        let mut stages: Vec<StageLoad> = per_stage
            .into_iter()
            .map(|(stage, mut ivals)| {
                ivals.sort_unstable();
                let busy_ns = union_len(&ivals);
                StageLoad {
                    stage,
                    busy_ns,
                    utilization: if wall_ns > 0 {
                        busy_ns as f64 / wall_ns as f64
                    } else {
                        0.0
                    },
                    spans: span_counts.get(stage).copied().unwrap_or(0),
                }
            })
            .collect();
        stages.sort_by(|a, b| b.busy_ns.cmp(&a.busy_ns).then_with(|| a.stage.cmp(b.stage)));

        CriticalPathReport {
            wall_ns,
            batches,
            stages,
            dropped: self.dropped,
        }
    }
}

/// Total length of the union of sorted `(start, end)` intervals.
fn union_len(sorted: &[(u64, u64)]) -> u64 {
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for &(s, e) in sorted {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

fn attribute_one(batch: u64, spans: &[&SpanRecord]) -> BatchAttribution {
    let start_ns = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let end_ns = spans.iter().map(|s| s.end_ns).max().unwrap_or(0);

    // Cut the window at every span boundary.
    let mut cuts: Vec<u64> = Vec::with_capacity(spans.len() * 2);
    for s in spans.iter() {
        cuts.push(s.start_ns);
        cuts.push(s.end_ns);
    }
    cuts.sort_unstable();
    cuts.dedup();

    let mut charged: BTreeMap<(&'static str, SpanKind), u64> = BTreeMap::new();
    let mut unattributed_ns = 0u64;
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let len = b - a;
        if len == 0 {
            continue;
        }
        // Owner: any span covering [a, b); service beats queue, then the
        // latest-starting (innermost) span wins.
        let owner = spans
            .iter()
            .filter(|s| s.start_ns <= a && s.end_ns >= b && s.end_ns > s.start_ns)
            .max_by_key(|s| (s.kind == SpanKind::Service, s.start_ns, s.span));
        match owner {
            Some(s) => *charged.entry((s.stage, s.kind)).or_default() += len,
            None => unattributed_ns += len,
        }
    }

    let mut parts: Vec<AttributedPart> = charged
        .into_iter()
        .map(|((stage, kind), ns)| AttributedPart { stage, kind, ns })
        .collect();
    parts.sort_by(|a, b| b.ns.cmp(&a.ns).then_with(|| a.stage.cmp(b.stage)));

    BatchAttribution {
        batch,
        start_ns,
        end_ns,
        parts,
        unattributed_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stages, Tracer};

    #[test]
    fn attribution_sums_exactly_to_window() {
        let t = Tracer::new();
        let b = t.next_batch_id();
        // Queue 0..100, service 30..60 nested inside, gap 100..120, queue 120..150.
        t.span_ns(b, stages::QUEUE_DELIVER, SpanKind::Queue, 0, 100);
        t.span_ns(b, stages::CPU_DECODE, SpanKind::Service, 30, 60);
        t.span_ns(b, stages::POOL_LEASE, SpanKind::Queue, 120, 150);
        let attr = t.snapshot().attribution();
        assert_eq!(attr.len(), 1);
        let a = &attr[0];
        assert_eq!(a.total_ns(), 150);
        assert_eq!(a.attributed_ns() + a.unattributed_ns, a.total_ns());
        assert_eq!(a.unattributed_ns, 20);
        assert_eq!(a.part_ns(stages::CPU_DECODE, SpanKind::Service), 30);
        assert_eq!(a.part_ns(stages::QUEUE_DELIVER, SpanKind::Queue), 70);
        assert_eq!(a.part_ns(stages::POOL_LEASE, SpanKind::Queue), 30);
    }

    #[test]
    fn service_beats_queue_and_inner_beats_outer() {
        let t = Tracer::new();
        let b = t.next_batch_id();
        t.span_ns(b, stages::QUEUE_DELIVER, SpanKind::Queue, 0, 100);
        t.span_ns(b, stages::FPGA_DECODE, SpanKind::Service, 0, 100);
        t.span_ns(b, stages::AUGMENT, SpanKind::Service, 40, 50);
        let attr = t.snapshot().attribution();
        let a = &attr[0];
        assert_eq!(a.part_ns(stages::QUEUE_DELIVER, SpanKind::Queue), 0);
        assert_eq!(a.part_ns(stages::FPGA_DECODE, SpanKind::Service), 90);
        assert_eq!(a.part_ns(stages::AUGMENT, SpanKind::Service), 10);
    }

    #[test]
    fn links_fold_duplicates_into_winner() {
        let t = Tracer::new();
        let winner = t.next_batch_id();
        let dup = t.next_batch_id();
        t.span_ns(winner, stages::FPGA_DECODE, SpanKind::Service, 0, 50);
        t.span_ns(dup, stages::CPU_DECODE, SpanKind::Service, 60, 80);
        t.link(dup, winner);
        let attr = t.snapshot().attribution();
        assert_eq!(attr.len(), 1, "dup spans must fold into the winner");
        let a = &attr[0];
        assert_eq!(a.batch, winner);
        assert_eq!(a.part_ns(stages::CPU_DECODE, SpanKind::Service), 20);
        assert_eq!(a.part_ns(stages::FPGA_DECODE, SpanKind::Service), 50);
    }

    #[test]
    fn bottleneck_is_highest_busy_stage() {
        let t = Tracer::new();
        for i in 0..4u64 {
            let b = t.next_batch_id();
            t.span_ns(
                b,
                stages::CPU_DECODE,
                SpanKind::Service,
                i * 100,
                i * 100 + 80,
            );
            t.span_ns(
                b,
                stages::AUGMENT,
                SpanKind::Service,
                i * 100 + 80,
                i * 100 + 90,
            );
        }
        let report = t.snapshot().critical_path();
        let top = report.bottleneck().expect("has stages");
        assert_eq!(top.stage, stages::CPU_DECODE);
        assert_eq!(top.busy_ns, 320);
        assert!(
            top.utilization > 0.8,
            "decode should dominate: {}",
            top.utilization
        );
        assert_eq!(report.wall_ns, 390);
    }

    #[test]
    fn union_len_merges_overlaps() {
        assert_eq!(union_len(&[(0, 10), (5, 20), (30, 40)]), 30);
        assert_eq!(union_len(&[]), 0);
        assert_eq!(union_len(&[(3, 3)]), 0);
    }
}

//! Chrome/Perfetto `trace_event` JSON export.
//!
//! [`TraceSnapshot::to_perfetto`](crate::TraceSnapshot::to_perfetto) renders
//! a snapshot in the [Trace Event Format] consumed by `chrome://tracing` and
//! <https://ui.perfetto.dev>: load the emitted string as a `.json` file and
//! every stage span appears on a per-thread track, with the batch ordinal in
//! the event arguments for filtering.
//!
//! * Queue/Service spans become complete events (`"ph": "X"`) with
//!   microsecond `ts`/`dur`.
//! * Marks and links become instant events (`"ph": "i"`); links carry the
//!   winning ordinal as `args.link`.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{SpanKind, TraceSnapshot};
use std::fmt::Write as _;

impl TraceSnapshot {
    /// Render the snapshot as Chrome/Perfetto `trace_event` JSON.
    pub fn to_perfetto(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 128 + 64);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let ts_us = e.start_ns as f64 / 1_000.0;
            match e.kind {
                SpanKind::Queue | SpanKind::Service => {
                    let dur_us = e.end_ns.saturating_sub(e.start_ns) as f64 / 1_000.0;
                    let _ = write!(
                        out,
                        "{{\"name\":{name},\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{tid},\"args\":{{\"batch\":{batch}}}}}",
                        name = json_str(e.stage),
                        cat = e.kind.label(),
                        ts = ts_us,
                        dur = dur_us,
                        tid = e.thread,
                        batch = e.batch,
                    );
                }
                SpanKind::Mark | SpanKind::Link => {
                    let _ = write!(
                        out,
                        "{{\"name\":{name},\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{tid},\"args\":{{\"batch\":{batch},\"link\":{link}}}}}",
                        name = json_str(e.stage),
                        cat = e.kind.label(),
                        ts = ts_us,
                        tid = e.thread,
                        batch = e.batch,
                        link = e.link,
                    );
                }
            }
        }
        let _ = write!(out, "],\"otherData\":{{\"dropped\":{}}}}}", self.dropped);
        out
    }
}

/// Minimal JSON string literal escaping (stage names are static ASCII, but
/// stay safe for anything).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stages, Tracer};

    #[test]
    fn perfetto_dump_has_expected_shape() {
        let t = Tracer::new();
        let b = t.next_batch_id();
        t.span_ns(b, stages::FPGA_DECODE, SpanKind::Service, 1_000, 3_000);
        t.span_ns(b, stages::QUEUE_DELIVER, SpanKind::Queue, 3_000, 5_500);
        t.mark(b, stages::FAILOVER);
        t.link(b + 1, b);
        let json = t.snapshot().to_perfetto();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"fpga.decode\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"cat\":\"queue\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains(&format!("\"link\":{b}")));
        assert!(json.ends_with("\"otherData\":{\"dropped\":0}}"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("line\nbreak"), "\"line\\nbreak\"");
    }
}

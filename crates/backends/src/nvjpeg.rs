//! The nvJPEG GPU-decoding backend.
//!
//! NVIDIA's nvJPEG (paper §5.3 and [16]) moves JPEG decode onto the GPU.
//! Host CPU cost collapses (≈1.5 cores: kernel launches only), but the
//! decode kernels hold ≈30 % of the device, so the *inference engine's* own
//! kernels stretch — "the CUDA cores are competed between the inference
//! engine and nvJPEG", costing 30–40 % end-to-end throughput and the latency
//! growth of Fig. 8.
//!
//! Functionally the decode arithmetic still has to happen somewhere (this is
//! a simulation — there is no CUDA device), so worker threads run the real
//! codec; what distinguishes this backend from [`crate::cpu`] is its
//! *accounting contract*: only the per-image kernel-launch overhead is
//! charged to `cpu_busy_nanos`, and [`NvJpegBackend::gpu_background_share`]
//! advertises the device steal that compute engines must apply to their
//! kernel times.

use crate::common::PoolScaffold;
use dlb_codec::resize::{resize, ResizeFilter};
use dlb_codec::JpegDecoder;
use dlb_fpga::DataSourceResolver;
use dlb_gpu::NvJpegModel;
use dlb_membridge::BatchUnit;
use dlbooster_core::{BackendError, DataCollector, HostBatch, PreprocessBackend};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// nvJPEG backend parameters.
#[derive(Debug, Clone)]
pub struct NvJpegBackendConfig {
    /// Compute engines served.
    pub n_engines: usize,
    /// Images per batch.
    pub batch_size: usize,
    /// Output width.
    pub target_w: u32,
    /// Output height.
    pub target_h: u32,
    /// Host threads driving decode kernels (1–2 in practice, §5.3).
    pub launcher_threads: usize,
    /// Total batches to deliver.
    pub max_batches: Option<u64>,
    /// Device model (SM share, decode rate, launch cost).
    pub model: NvJpegModel,
}

impl NvJpegBackendConfig {
    /// Paper-calibrated defaults.
    pub fn paper_defaults(n_engines: usize, batch_size: usize, target: (u32, u32)) -> Self {
        Self {
            n_engines,
            batch_size,
            target_w: target.0,
            target_h: target.1,
            launcher_threads: 2,
            max_batches: None,
            model: NvJpegModel::paper_config(),
        }
    }

    fn unit_size(&self) -> usize {
        self.batch_size * self.target_w as usize * self.target_h as usize * 3
    }
}

/// The running nvJPEG backend.
pub struct NvJpegBackend {
    scaffold: Arc<PoolScaffold>,
    workers: Vec<JoinHandle<()>>,
    sm_share: f64,
}

impl NvJpegBackend {
    /// Starts the backend.
    pub fn start(
        collector: Arc<DataCollector>,
        resolver: Arc<dyn DataSourceResolver>,
        config: NvJpegBackendConfig,
    ) -> Result<Self, String> {
        if config.launcher_threads == 0 || config.batch_size == 0 || config.n_engines == 0 {
            return Err("launcher_threads, batch_size, n_engines must be positive".into());
        }
        let scaffold = Arc::new(PoolScaffold::new(
            config.n_engines,
            config.unit_size(),
            (config.n_engines * 3).max(config.launcher_threads + 2),
            config.max_batches,
        )?);
        let sm_share = config.model.sm_share;
        let mut workers = Vec::with_capacity(config.launcher_threads);
        for w in 0..config.launcher_threads {
            let collector = Arc::clone(&collector);
            let resolver = Arc::clone(&resolver);
            let scaffold = Arc::clone(&scaffold);
            let config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("nvjpeg-launcher-{w}"))
                    .spawn(move || nvjpeg_worker(collector, resolver, scaffold, config))
                    .expect("spawn nvjpeg worker"),
            );
        }
        Ok(Self {
            scaffold,
            workers,
            sm_share,
        })
    }

    /// Fraction of the GPU the decode kernels occupy — compute engines
    /// stretch their kernel times by `1 / (1 - share)` while this backend
    /// is active (§5.3's contention).
    pub fn gpu_background_share(&self) -> f64 {
        self.sm_share
    }

    /// Batches delivered.
    pub fn delivered(&self) -> u64 {
        self.scaffold.router.delivered()
    }
}

fn nvjpeg_worker(
    collector: Arc<DataCollector>,
    resolver: Arc<dyn DataSourceResolver>,
    scaffold: Arc<PoolScaffold>,
    config: NvJpegBackendConfig,
) {
    let decoder = JpegDecoder::new();
    'produce: while !scaffold.stop.load(Ordering::SeqCst) {
        if !scaffold.router.claim() {
            break;
        }
        let metas = loop {
            match collector.next_metas(config.batch_size) {
                None => break 'produce,
                Some(m) if m.is_empty() => {
                    if scaffold.stop.load(Ordering::SeqCst) {
                        break 'produce;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                Some(m) => break m,
            }
        };
        let Ok(mut unit) = scaffold.pool.get_item() else {
            break;
        };
        let mut arrivals = Vec::with_capacity(metas.len());
        for meta in &metas {
            arrivals.push(meta.arrival_nanos.unwrap_or(0));
            // "GPU decode": the arithmetic runs here (simulation), but the
            // host is only charged the launch overhead below.
            let decoded = resolver
                .fetch(&meta.src)
                .ok()
                .and_then(|bytes| decoder.decode(&bytes).ok())
                .and_then(|img| {
                    resize(
                        &img,
                        config.target_w,
                        config.target_h,
                        ResizeFilter::Bilinear,
                    )
                    .ok()
                })
                .map(|img| img.to_rgb());
            match decoded {
                Some(img) => {
                    unit.append(img.data(), meta.label, config.target_w, config.target_h, 3);
                }
                None => {
                    unit.reserve(
                        config.target_w as usize * config.target_h as usize * 3,
                        meta.label,
                        config.target_w,
                        config.target_h,
                        3,
                    );
                }
            }
        }
        // Host cost contract: launch overhead only (the 1–2 cores of §5.3).
        let launch = config.model.launch_cpu_time(metas.len() as u32);
        scaffold
            .cpu_busy_nanos
            .fetch_add(launch.as_nanos(), Ordering::Relaxed);
        if !scaffold.router.deliver(unit, arrivals) {
            break;
        }
    }
}

impl PreprocessBackend for NvJpegBackend {
    fn name(&self) -> &'static str {
        "nvJPEG"
    }

    fn next_batch(&self, slot: usize) -> Result<HostBatch, BackendError> {
        self.scaffold
            .router
            .queue(slot)
            .pop()
            .map_err(|_| BackendError::Exhausted)
    }

    fn recycle(&self, unit: BatchUnit) {
        let _ = self.scaffold.pool.recycle_item(unit);
    }

    fn max_batch_bytes(&self) -> usize {
        self.scaffold.pool.unit_size()
    }

    fn cpu_busy_nanos(&self) -> u64 {
        self.scaffold.cpu_busy_nanos.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        self.scaffold.stop.store(true, Ordering::SeqCst);
        self.scaffold.router.close();
        self.scaffold.pool.close();
    }
}

impl Drop for NvJpegBackend {
    fn drop(&mut self) {
        self.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};
    use dlbooster_core::CombinedResolver;

    fn backend(max: Option<u64>) -> NvJpegBackend {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(12, 6), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        let mut config = NvJpegBackendConfig::paper_defaults(1, 4, (32, 32));
        config.max_batches = max;
        NvJpegBackend::start(
            collector,
            Arc::new(CombinedResolver::disk_only(disk)),
            config,
        )
        .unwrap()
    }

    #[test]
    fn serves_batches_and_advertises_contention() {
        let b = backend(Some(3));
        assert!((b.gpu_background_share() - 0.30).abs() < 1e-12);
        let mut seen = 0;
        while let Ok(batch) = b.next_batch(0) {
            assert_eq!(batch.len(), 4);
            seen += 1;
            b.recycle(batch.unit);
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn cpu_cost_is_launch_overhead_only() {
        let b = backend(Some(5));
        while let Ok(batch) = b.next_batch(0) {
            b.recycle(batch.unit);
        }
        // 5 delivered batches × 4 images × 250 µs (modelled charge, not
        // wall time); each launcher thread may have decoded one extra batch
        // before the router refused it.
        let per_batch = 4 * 250_000;
        let charged = b.cpu_busy_nanos();
        assert!(
            (5 * per_batch..=7 * per_batch).contains(&charged),
            "charged {charged}"
        );
    }
}

//! The LMDB offline preprocessing backend.
//!
//! Caffe's classic path (§2.2): convert the dataset once (expensive), then
//! stream raw records at training time. Reads are cheap per-byte but (a)
//! every datum is copied out of the store individually, and (b) multiple
//! training processes share one DB — the contention that costs ≈30 % at two
//! GPUs (Figs. 2/5b; modelled in the DES layer via
//! [`dlb_storage::lmdb::LmdbContentionModel`]).

use crate::common::PoolScaffold;
use dlb_membridge::BatchUnit;
use dlb_storage::{Dataset, LmdbStore, NvmeDisk};
use dlbooster_core::{BackendError, HostBatch, PreprocessBackend};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// LMDB backend parameters.
#[derive(Debug, Clone)]
pub struct LmdbBackendConfig {
    /// Compute engines served.
    pub n_engines: usize,
    /// Images per batch.
    pub batch_size: usize,
    /// Record width (set at conversion time).
    pub target_w: u32,
    /// Record height.
    pub target_h: u32,
    /// Reader threads (Caffe uses one per solver).
    pub readers: usize,
    /// Total batches to deliver.
    pub max_batches: Option<u64>,
}

impl LmdbBackendConfig {
    fn unit_size(&self) -> usize {
        self.batch_size * self.target_w as usize * self.target_h as usize * 3
    }
}

/// The running LMDB backend (store converted at startup).
pub struct LmdbBackend {
    scaffold: Arc<PoolScaffold>,
    readers: Vec<JoinHandle<()>>,
    store: Arc<LmdbStore>,
    /// Wall-clock seconds the offline conversion took (the §2.2 cost).
    conversion_secs: f64,
}

impl LmdbBackend {
    /// Converts `dataset` (real decode work) and starts the reader threads.
    pub fn start(
        dataset: &Dataset,
        disk: &NvmeDisk,
        config: LmdbBackendConfig,
    ) -> Result<Self, String> {
        if config.readers == 0 || config.batch_size == 0 || config.n_engines == 0 {
            return Err("readers, batch_size and n_engines must be positive".into());
        }
        let store = Arc::new(LmdbStore::new());
        let t0 = Instant::now();
        store.convert(dataset, disk, config.target_w, config.target_h)?;
        let conversion_secs = t0.elapsed().as_secs_f64();

        let scaffold = Arc::new(PoolScaffold::new(
            config.n_engines,
            config.unit_size(),
            (config.n_engines * 3).max(config.readers + 2),
            config.max_batches,
        )?);
        let n_records = dataset.records.len() as u64;
        let cursor = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::with_capacity(config.readers);
        for r in 0..config.readers {
            let store = Arc::clone(&store);
            let scaffold = Arc::clone(&scaffold);
            let config = config.clone();
            let cursor = Arc::clone(&cursor);
            readers.push(
                std::thread::Builder::new()
                    .name(format!("lmdb-reader-{r}"))
                    .spawn(move || lmdb_reader(store, scaffold, config, cursor, n_records))
                    .expect("spawn lmdb reader"),
            );
        }
        Ok(Self {
            scaffold,
            readers,
            store,
            conversion_secs,
        })
    }

    /// The conversion cost in seconds.
    pub fn conversion_secs(&self) -> f64 {
        self.conversion_secs
    }

    /// The underlying store (read statistics).
    pub fn store(&self) -> &LmdbStore {
        &self.store
    }

    /// Batches delivered.
    pub fn delivered(&self) -> u64 {
        self.scaffold.router.delivered()
    }
}

fn lmdb_reader(
    store: Arc<LmdbStore>,
    scaffold: Arc<PoolScaffold>,
    config: LmdbBackendConfig,
    cursor: Arc<AtomicU64>,
    n_records: u64,
) {
    while !scaffold.stop.load(Ordering::SeqCst) {
        if !scaffold.router.claim() {
            break;
        }
        // Claim a contiguous key range (epoch-wrapping cursor scan — the
        // sequential access pattern of Caffe's data layer).
        let start = cursor.fetch_add(config.batch_size as u64, Ordering::SeqCst);
        let Ok(mut unit) = scaffold.pool.get_item() else {
            break;
        };
        let t0 = Instant::now();
        let mut arrivals = Vec::with_capacity(config.batch_size);
        for i in 0..config.batch_size as u64 {
            let key = (start + i) % n_records;
            arrivals.push(0);
            match store.get(key) {
                Some(datum) => {
                    // Per-datum copy-out: the small-piece overhead of §5.2.
                    unit.append(&datum.pixels, datum.label, datum.width, datum.height, 3);
                }
                None => {
                    unit.reserve(
                        config.target_w as usize * config.target_h as usize * 3,
                        0,
                        config.target_w,
                        config.target_h,
                        3,
                    );
                }
            }
        }
        scaffold
            .cpu_busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if !scaffold.router.deliver(unit, arrivals) {
            break;
        }
    }
}

impl PreprocessBackend for LmdbBackend {
    fn name(&self) -> &'static str {
        "LMDB"
    }

    fn next_batch(&self, slot: usize) -> Result<HostBatch, BackendError> {
        self.scaffold
            .router
            .queue(slot)
            .pop()
            .map_err(|_| BackendError::Exhausted)
    }

    fn recycle(&self, unit: BatchUnit) {
        let _ = self.scaffold.pool.recycle_item(unit);
    }

    fn max_batch_bytes(&self) -> usize {
        self.scaffold.pool.unit_size()
    }

    fn cpu_busy_nanos(&self) -> u64 {
        self.scaffold.cpu_busy_nanos.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        self.scaffold.stop.store(true, Ordering::SeqCst);
        self.scaffold.router.close();
        self.scaffold.pool.close();
    }
}

impl Drop for LmdbBackend {
    fn drop(&mut self) {
        self.shutdown();
        for r in self.readers.drain(..) {
            let _ = r.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_storage::{DatasetSpec, NvmeSpec};

    fn setup(max: Option<u64>) -> LmdbBackend {
        let disk = NvmeDisk::new(NvmeSpec::optane_900p());
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(10, 8), &disk).unwrap();
        LmdbBackend::start(
            &ds,
            &disk,
            LmdbBackendConfig {
                n_engines: 1,
                batch_size: 5,
                target_w: 24,
                target_h: 24,
                readers: 2,
                max_batches: max,
            },
        )
        .unwrap()
    }

    #[test]
    fn conversion_then_serving() {
        let b = setup(Some(4));
        assert!(b.conversion_secs() > 0.0);
        assert_eq!(b.store().len(), 10);
        let mut seen = 0;
        while let Ok(batch) = b.next_batch(0) {
            assert_eq!(batch.len(), 5);
            for item in batch.unit.items() {
                assert_eq!(item.len, 24 * 24 * 3);
            }
            seen += 1;
            b.recycle(batch.unit);
        }
        assert_eq!(seen, 4);
        let (reads, _) = b.store().read_stats();
        assert!(reads >= 20, "per-datum reads expected, got {reads}");
        assert!(b.cpu_busy_nanos() > 0);
    }

    #[test]
    fn epoch_wraps_over_records() {
        // 10 records, batch 5, 6 batches ⇒ keys wrap; labels stay valid.
        let b = setup(Some(6));
        let mut labels = Vec::new();
        while let Ok(batch) = b.next_batch(0) {
            labels.extend(batch.unit.items().iter().map(|i| i.label));
            b.recycle(batch.unit);
        }
        assert_eq!(labels.len(), 30);
        assert!(labels.iter().all(|&l| l < 1000));
    }
}

//! Shared machinery for the worker-pool baselines: round-robin slot
//! delivery and the backend scaffold (pool + queues + stop flag).

use dlb_membridge::{BatchUnit, BlockingQueue, MemManager, PoolConfig};
use dlbooster_core::HostBatch;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Round-robin delivery of finished batches to per-engine slot queues,
/// with globally ordered sequence numbers.
pub struct SlotRouter {
    queues: Vec<BlockingQueue<HostBatch>>,
    /// Serialises sequence assignment + push so slot `seq % n` always holds.
    order: Mutex<u64>,
    delivered: AtomicU64,
    /// Production tickets handed out via [`SlotRouter::claim`].
    claimed: AtomicU64,
    max_batches: Option<u64>,
}

impl SlotRouter {
    /// `n_slots` bounded queues; delivery stops (queues close) after
    /// `max_batches` total batches when set.
    pub fn new(n_slots: usize, depth: usize, max_batches: Option<u64>) -> Self {
        assert!(n_slots >= 1);
        Self {
            queues: (0..n_slots)
                .map(|_| BlockingQueue::bounded(depth))
                .collect(),
            order: Mutex::new(0),
            delivered: AtomicU64::new(0),
            claimed: AtomicU64::new(0),
            max_batches,
        }
    }

    /// Claims the right to produce one more batch; call *before* pulling
    /// input. Returns `false` once `max_batches` tickets are taken.
    ///
    /// Without the up-front ticket, a fast worker can wrap the collector
    /// into the next epoch and win the delivery race against a slower
    /// worker's current-epoch batch, making the delivered record window
    /// depend on scheduling.
    pub fn claim(&self) -> bool {
        match self.max_batches {
            None => true,
            Some(max) => self
                .claimed
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                    (c < max).then_some(c + 1)
                })
                .is_ok(),
        }
    }

    /// Delivers one finished unit. Returns `false` once the router is done
    /// (max reached or queues closed) — producers should then stop.
    pub fn deliver(&self, unit: BatchUnit, arrivals: Vec<u64>) -> bool {
        self.deliver_traced(unit, arrivals, 0)
    }

    /// Like [`SlotRouter::deliver`] but stamping the batch with a trace
    /// ordinal (`0` = untraced) so span records survive the hand-off.
    pub fn deliver_traced(&self, mut unit: BatchUnit, arrivals: Vec<u64>, trace: u64) -> bool {
        let mut order = self.order.lock();
        if let Some(max) = self.max_batches {
            if *order >= max {
                return false;
            }
        }
        let seq = *order;
        *order += 1;
        let slot = (seq % self.queues.len() as u64) as usize;
        unit.seal(seq);
        let batch = HostBatch {
            unit,
            sequence: seq,
            ready_at: Instant::now(),
            arrivals,
            trace,
        };
        let ok = self.queues[slot].push(batch).is_ok();
        if ok {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            if self.max_batches == Some(*order) {
                drop(order);
                self.close();
            }
        }
        ok
    }

    /// Queue for engine `slot`.
    pub fn queue(&self, slot: usize) -> &BlockingQueue<HostBatch> {
        &self.queues[slot]
    }

    /// Closes all queues.
    pub fn close(&self) {
        for q in &self.queues {
            q.close();
        }
    }

    /// Batches delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

/// The shared skeleton of a worker-pool backend.
pub struct PoolScaffold {
    /// Batch-buffer pool.
    pub pool: MemManager,
    /// Slot delivery.
    pub router: Arc<SlotRouter>,
    /// Worker stop flag.
    pub stop: Arc<AtomicBool>,
    /// Accumulated worker CPU busy nanos.
    pub cpu_busy_nanos: Arc<AtomicU64>,
}

impl PoolScaffold {
    /// Builds the scaffold with `pool_units` buffers of `unit_size` bytes
    /// and the pre-graph slot-queue depth of 8.
    pub fn new(
        n_slots: usize,
        unit_size: usize,
        pool_units: usize,
        max_batches: Option<u64>,
    ) -> Result<Self, String> {
        Self::with_slot_depth(n_slots, 8, unit_size, pool_units, max_batches)
    }

    /// Like [`PoolScaffold::new`] with an explicit per-slot queue depth —
    /// the knob a compiled pipeline graph sets from its sink stage.
    pub fn with_slot_depth(
        n_slots: usize,
        slot_depth: usize,
        unit_size: usize,
        pool_units: usize,
        max_batches: Option<u64>,
    ) -> Result<Self, String> {
        if slot_depth == 0 {
            return Err("slot queue depth must be >= 1".into());
        }
        let pool = MemManager::new(PoolConfig {
            unit_size,
            unit_count: pool_units,
            phys_base: 0x6_0000_0000,
        })
        .map_err(|e| e.to_string())?;
        Ok(Self {
            pool,
            router: Arc::new(SlotRouter::new(n_slots, slot_depth, max_batches)),
            stop: Arc::new(AtomicBool::new(false)),
            cpu_busy_nanos: Arc::new(AtomicU64::new(0)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(pool: &MemManager) -> BatchUnit {
        let mut u = pool.get_item().unwrap();
        u.append(&[1, 2, 3], 0, 1, 1, 3).unwrap();
        u
    }

    #[test]
    fn router_round_robins_and_caps() {
        let s = PoolScaffold::new(2, 1024, 8, Some(5)).unwrap();
        for _ in 0..5 {
            assert!(s.router.deliver(unit(&s.pool), vec![]));
        }
        // Sixth delivery refused.
        let u = unit(&s.pool);
        assert!(!s.router.deliver(u, vec![]));
        let mut seq0 = Vec::new();
        while let Ok(b) = s.router.queue(0).pop() {
            seq0.push(b.sequence);
            s.pool.recycle_item(b.unit).unwrap();
        }
        let mut seq1 = Vec::new();
        while let Ok(b) = s.router.queue(1).pop() {
            seq1.push(b.sequence);
            s.pool.recycle_item(b.unit).unwrap();
        }
        assert_eq!(seq0, vec![0, 2, 4]);
        assert_eq!(seq1, vec![1, 3]);
        assert_eq!(s.router.delivered(), 5);
    }

    #[test]
    fn close_stops_delivery() {
        let s = PoolScaffold::new(1, 1024, 2, None).unwrap();
        s.router.close();
        assert!(!s.router.deliver(unit(&s.pool), vec![]));
        assert!(s.router.queue(0).pop().is_err());
    }
}

//! FPGA→CPU graceful degradation.
//!
//! DLBooster's FPGA decode path is the fast plane, but a wedged or
//! poisoned decoder must not take the training run down with it. This
//! module wraps a [`DlBooster`] primary in a [`FailoverBackend`] that
//! watches every batch wait: when a slot starves past a deadline (or the
//! primary dies outright), it retires the FPGA pipeline with
//! [`DlBooster::quiesce`] and finishes the run on a CPU fallback built
//! on the spot — without losing or duplicating a single batch.
//!
//! The accounting that makes "no loss, no dup" exact:
//!
//! * `quiesce()` joins the primary's router thread, so
//!   [`DlBooster::delivered`] is the *final* count of batches that will
//!   ever leave the primary (consumed already + residue still queued).
//! * The fallback is constructed with `max_batches = total − delivered`,
//!   so primary + fallback together emit exactly the configured total.
//! * Residue batches stay poppable from the primary's closed slot
//!   queues and are served before the fallback's output; their units
//!   recycle into the primary's still-open pool (recycles are routed by
//!   [`MemManager::owns`]).

use dlb_chaos::CancelToken;
use dlb_membridge::BatchUnit;
use dlb_telemetry::{names, Counter, Telemetry};
use dlb_trace::{stages, Tracer};
use dlbooster_core::{BackendError, DlBooster, HostBatch, PreprocessBackend};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Builds the fallback backend once failover triggers. Receives the
/// remaining batch budget (`total − primary.delivered()`).
pub type FallbackFactory =
    Box<dyn FnOnce(u64) -> Result<Box<dyn PreprocessBackend>, String> + Send>;

/// Failover policy knobs.
pub struct FailoverConfig {
    /// Batches the whole run must deliver (primary + fallback).
    pub total_batches: u64,
    /// How long one slot may starve before the primary is declared
    /// wedged.
    pub deadline: Duration,
    /// Cancelled right before quiescing the primary so chaos-injected
    /// stalls release their lanes instead of riding out the full delay.
    pub chaos_cancel: Option<CancelToken>,
}

/// A [`PreprocessBackend`] that serves from a [`DlBooster`] primary and
/// fails over to a lazily-built CPU backend when the primary wedges.
pub struct FailoverBackend {
    primary: Arc<DlBooster>,
    factory: Mutex<Option<FallbackFactory>>,
    fallback: OnceLock<Box<dyn PreprocessBackend>>,
    failed_over: AtomicBool,
    total: u64,
    deadline: Duration,
    chaos_cancel: Option<CancelToken>,
    failovers: Arc<Counter>,
    tracer_cell: Arc<OnceLock<Arc<Tracer>>>,
}

impl FailoverBackend {
    /// Wraps `primary`, keeping `factory` in reserve. The factory runs at
    /// most once, on the first detected wedge.
    pub fn new(
        primary: Arc<DlBooster>,
        factory: FallbackFactory,
        config: FailoverConfig,
        telemetry: &Telemetry,
    ) -> Self {
        Self {
            primary,
            factory: Mutex::new(Some(factory)),
            fallback: OnceLock::new(),
            failed_over: AtomicBool::new(false),
            total: config.total_batches,
            deadline: config.deadline,
            chaos_cancel: config.chaos_cancel,
            failovers: telemetry.registry.counter(names::CHAOS_FAILOVER_TOTAL),
            tracer_cell: telemetry.tracer_cell(),
        }
    }

    /// True once the CPU fallback took over.
    pub fn failed_over(&self) -> bool {
        self.failed_over.load(Ordering::Acquire)
    }

    /// The wrapped primary (inspection).
    pub fn primary(&self) -> &Arc<DlBooster> {
        &self.primary
    }

    /// Performs the primary→fallback swap exactly once; concurrent
    /// callers (one per slot) serialize on the factory lock and all but
    /// the first find the work already done.
    fn fail_over(&self, why: &str) -> Result<(), BackendError> {
        let mut factory = self.factory.lock();
        if self.failed_over.load(Ordering::Acquire) {
            return Ok(());
        }
        // Release chaos-injected stalls first: quiesce joins the router,
        // which in turn waits on the reader, which may be riding out an
        // injected multi-second lane delay.
        if let Some(cancel) = &self.chaos_cancel {
            cancel.cancel();
        }
        self.primary.quiesce();
        let remaining = self.total.saturating_sub(self.primary.delivered());
        let build = factory
            .take()
            .expect("factory consumed only under this lock");
        let fallback = build(remaining).map_err(|detail| BackendError::Failed {
            detail: format!("failover ({why}): fallback refused to start: {detail}"),
        })?;
        if self.fallback.set(fallback).is_err() {
            unreachable!("fallback set exactly once, under the factory lock");
        }
        self.failovers.inc();
        if let Some(t) = self.tracer_cell.get() {
            // Pipeline-level event, not tied to one batch ordinal.
            t.mark(0, stages::FAILOVER);
        }
        self.failed_over.store(true, Ordering::Release);
        Ok(())
    }

    /// Residue the quiesced primary still holds for `slot`, if any.
    fn pop_residue(&self, slot: usize) -> Option<HostBatch> {
        self.primary
            .next_batch_timeout(slot, Duration::ZERO)
            .unwrap_or_default()
    }
}

impl PreprocessBackend for FailoverBackend {
    fn name(&self) -> &'static str {
        "DLBooster+CPU-failover"
    }

    fn next_batch(&self, slot: usize) -> Result<HostBatch, BackendError> {
        loop {
            if self.failed_over() {
                // Drain what the primary decoded before the wedge, then
                // hand the slot to the fallback.
                if let Some(batch) = self.pop_residue(slot) {
                    return Ok(batch);
                }
                return self
                    .fallback
                    .get()
                    .expect("failed_over implies fallback present")
                    .next_batch(slot);
            }
            match self.primary.next_batch_timeout(slot, self.deadline) {
                Ok(Some(batch)) => return Ok(batch),
                Ok(None) => {
                    // Starved. If the run is actually complete the queue
                    // closes momentarily — don't fail over on the
                    // end-of-stream edge.
                    if self.primary.delivered() >= self.total {
                        continue;
                    }
                    self.fail_over("slot starved past deadline")?;
                }
                Err(BackendError::Exhausted) => {
                    // Primary closed: natural completion, or it died
                    // before delivering the full budget.
                    if self.primary.delivered() >= self.total {
                        return Err(BackendError::Exhausted);
                    }
                    self.fail_over("primary closed early")?;
                }
                Err(err) => {
                    self.fail_over("primary failed")?;
                    let _ = err;
                }
            }
        }
    }

    fn recycle(&self, unit: BatchUnit) {
        if self.primary.pool().owns(&unit) {
            self.primary.recycle(unit);
        } else if let Some(fallback) = self.fallback.get() {
            fallback.recycle(unit);
        }
        // A unit owned by neither pool cannot exist: every batch this
        // backend hands out came from one of the two.
    }

    fn max_batch_bytes(&self) -> usize {
        let fb = self.fallback.get().map_or(0, |f| f.max_batch_bytes());
        self.primary.max_batch_bytes().max(fb)
    }

    fn cpu_busy_nanos(&self) -> u64 {
        self.primary.cpu_busy_nanos() + self.fallback.get().map_or(0, |f| f.cpu_busy_nanos())
    }

    fn shutdown(&self) {
        if let Some(cancel) = &self.chaos_cancel {
            cancel.cancel();
        }
        self.primary.shutdown();
        if let Some(fallback) = self.fallback.get() {
            fallback.shutdown();
        }
    }
}

impl std::fmt::Debug for FailoverBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverBackend")
            .field("failed_over", &self.failed_over())
            .field("total", &self.total)
            .field("deadline", &self.deadline)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuBackend, CpuBackendConfig};
    use dlb_chaos::{FaultPlan, StageSpec};
    use dlb_fpga::{DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice};
    use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};
    use dlbooster_core::{CombinedResolver, DataCollector, DlBoosterConfig, FpgaChannel};
    use std::collections::HashSet;

    const TOTAL: u64 = 12;
    const BATCH: usize = 4;
    const SIDE: u16 = 32;

    /// A primary whose FPGA lanes wedge hard (multi-second chaos stalls
    /// at a high rate, far past the reader's grasp), plus the failover
    /// wrapper with a CPU fallback factory over the same dataset.
    fn wedged_rig() -> (FailoverBackend, Arc<Telemetry>) {
        let telemetry = Telemetry::with_defaults();
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(
            DatasetSpec::ilsvrc_small((TOTAL as usize) * BATCH, 77),
            &disk,
        )
        .unwrap();
        let records = ds.records.clone();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        let resolver = Arc::new(CombinedResolver::disk_only(Arc::clone(&disk)));
        let engine =
            DecoderEngine::start_with_telemetry(dev, Arc::clone(&resolver) as _, &telemetry)
                .unwrap();

        // Chaos: every other cmd stalls its lane for 30 s — the primary
        // will deliver a few batches and then starve every slot.
        let mut plan = FaultPlan::disabled();
        plan.seed = 11;
        plan.fpga = StageSpec::rate(0.5).with_delay(Duration::from_secs(30));
        let cancel = plan.cancel_token();
        engine.attach_chaos(plan.injector(dlb_chaos::Stage::Fpga, &telemetry).unwrap());

        let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
        let mut config = DlBoosterConfig::training(
            1,
            BATCH,
            (SIDE, SIDE),
            (TOTAL as usize) * BATCH,
            Some(TOTAL),
        );
        config.cache_bytes = 0;
        let primary = Arc::new(
            DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
                .unwrap(),
        );

        let t2 = Arc::clone(&telemetry);
        let factory: FallbackFactory = Box::new(move |remaining| {
            let collector = Arc::new(DataCollector::load_from_disk(&records, 0));
            let resolver = Arc::new(CombinedResolver::disk_only(disk));
            CpuBackend::start_with_telemetry(
                collector,
                resolver,
                CpuBackendConfig {
                    n_engines: 1,
                    batch_size: BATCH,
                    target_w: SIDE as u32,
                    target_h: SIDE as u32,
                    workers: 2,
                    max_batches: Some(remaining),
                    sample_cache: None,
                },
                t2,
            )
            .map(|b| Box::new(b) as Box<dyn PreprocessBackend>)
        });
        let backend = FailoverBackend::new(
            primary,
            factory,
            FailoverConfig {
                total_batches: TOTAL,
                deadline: Duration::from_millis(150),
                chaos_cancel: Some(cancel),
            },
            &telemetry,
        );
        (backend, telemetry)
    }

    #[test]
    fn wedged_primary_fails_over_and_completes_exactly() {
        let (backend, telemetry) = wedged_rig();
        let mut primary_batches = 0u64;
        let mut fallback_batches = 0u64;
        let mut primary_seqs = HashSet::new();
        loop {
            match backend.next_batch(0) {
                Ok(batch) => {
                    if backend.primary.pool().owns(&batch.unit) {
                        primary_batches += 1;
                        assert!(
                            primary_seqs.insert(batch.sequence),
                            "duplicate primary sequence {}",
                            batch.sequence
                        );
                    } else {
                        fallback_batches += 1;
                    }
                    backend.recycle(batch.unit);
                }
                Err(BackendError::Exhausted) => break,
                Err(e) => panic!("unexpected backend error: {e}"),
            }
        }
        assert!(backend.failed_over(), "wedge must trigger failover");
        assert_eq!(
            primary_batches + fallback_batches,
            TOTAL,
            "exactly the configured total, no loss, no duplication \
             (primary {primary_batches} + fallback {fallback_batches})"
        );
        assert_eq!(primary_batches, backend.primary.delivered());
        assert!(
            fallback_batches > 0,
            "a 30s lane stall cannot finish 12 batches in time on its own"
        );
        let snap = telemetry.registry.snapshot();
        assert_eq!(snap.counter(names::CHAOS_FAILOVER_TOTAL), 1);
        backend.shutdown();
    }

    #[test]
    fn healthy_primary_never_fails_over() {
        let telemetry = Telemetry::with_defaults();
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(16, 5), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        let engine =
            DecoderEngine::start(dev, Arc::new(CombinedResolver::disk_only(disk))).unwrap();
        let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
        let mut config = DlBoosterConfig::training(1, 4, (16, 16), 16, Some(4));
        config.cache_bytes = 0;
        let primary = Arc::new(
            DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
                .unwrap(),
        );
        let backend = FailoverBackend::new(
            primary,
            Box::new(|_| Err("factory must not run for a healthy primary".into())),
            FailoverConfig {
                total_batches: 4,
                deadline: Duration::from_secs(10),
                chaos_cancel: None,
            },
            &telemetry,
        );
        let mut n = 0;
        while let Ok(batch) = backend.next_batch(0) {
            n += 1;
            backend.recycle(batch.unit);
        }
        assert_eq!(n, 4);
        assert!(!backend.failed_over());
        assert_eq!(
            telemetry
                .registry
                .snapshot()
                .counter(names::CHAOS_FAILOVER_TOTAL),
            0
        );
        backend.shutdown();
    }
}

//! # dlb-backends
//!
//! The three baseline preprocessing backends the paper compares DLBooster
//! against (§5.2 training: CPU-based and LMDB; §5.3 inference: CPU-based and
//! nvJPEG), all behind the same
//! [`PreprocessBackend`](dlbooster_core::PreprocessBackend) trait so the
//! compute engines cannot tell them apart.
//!
//! * [`cpu`] — online decoding on a pool of host worker threads. The decode
//!   is *real* (`dlb-codec`); the worker count is the knob that burns the
//!   7–14 cores of Figs. 2(b)/6/9.
//! * [`lmdb`] — the offline backend: a one-off conversion pass
//!   (decode-once into fixed-geometry raw records, §2.2's "2 hours"), then
//!   per-datum copy-out reads at training time.
//! * [`nvjpeg`] — GPU-side decoding: cheap on host CPU, but advertises a
//!   device background share that stretches the compute engine's kernels
//!   (the −30..40 % contention of §5.3).
//!
//! [`failover`] is not a baseline: it wraps the DLBooster primary itself
//! and degrades to the [`cpu`] backend when the FPGA path wedges.

pub mod common;
pub mod cpu;
pub mod failover;
pub mod lmdb;
pub mod nvjpeg;

pub use cpu::{CpuBackend, CpuBackendConfig};
pub use failover::{FailoverBackend, FailoverConfig, FallbackFactory};
pub use lmdb::{LmdbBackend, LmdbBackendConfig};
pub use nvjpeg::{NvJpegBackend, NvJpegBackendConfig};

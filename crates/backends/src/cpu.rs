//! The CPU-based online preprocessing backend.
//!
//! This is the paper's "CPU-based" baseline: worker threads fetch compressed
//! images, decode and resize them on host cores, and assemble batches. It
//! delivers high throughput only by *burning cores* — each Xeon core decodes
//! ≈300 ILSVRC-sized images/s (§2.2), so feeding a fast GPU takes 7–14 of
//! them (Figs. 6/9). The decode here is our real JPEG decoder, so the burn
//! is genuine CPU time, measured and reported through `cpu_busy_nanos`.

use crate::common::PoolScaffold;
use dlb_cache::{CachedSample, SampleCache};
use dlb_codec::resize::{resize, ResizeFilter};
use dlb_codec::JpegDecoder;
use dlb_fpga::DataSourceResolver;
use dlb_graph::{
    cpu_training, CompiledPipeline, DecodeDevice, GraphConfig, PipelineGraph, SampleAugmentor,
};
use dlb_membridge::BatchUnit;
use dlb_telemetry::{names, Telemetry};
use dlb_trace::{stages, SpanKind, Tracer};
use dlbooster_core::{
    augment_identity, sample_key, BackendError, DataCollector, HostBatch, PreprocessBackend,
};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// CPU backend parameters.
#[derive(Debug, Clone)]
pub struct CpuBackendConfig {
    /// Compute engines served.
    pub n_engines: usize,
    /// Images per batch.
    pub batch_size: usize,
    /// Output width.
    pub target_w: u32,
    /// Output height.
    pub target_h: u32,
    /// Decode worker threads ("burned cores").
    pub workers: usize,
    /// Total batches to deliver (None = until the collector ends).
    pub max_batches: Option<u64>,
    /// Optional decoded-sample cache: hits skip fetch + decode + resize
    /// entirely, misses are inserted with their measured decode cost
    /// (`huffman_ns + idct_ns`) as the eviction signal.
    pub sample_cache: Option<Arc<SampleCache>>,
}

impl CpuBackendConfig {
    fn unit_size(&self) -> usize {
        self.batch_size * self.target_w as usize * self.target_h as usize * 3
    }

    /// The canned graph [`CpuBackend::start`] compiles: the exact chain the
    /// pre-graph constructor wired by hand.
    fn canned_graph(&self) -> PipelineGraph {
        cpu_training(self.target_w, self.target_h, self.workers)
    }

    fn graph_config(&self) -> GraphConfig {
        GraphConfig {
            batch_size: self.batch_size,
            n_engines: self.n_engines,
            default_decode_parallelism: self.workers.max(1),
            seed: 0,
        }
    }
}

/// The wiring a compiled graph (or the hardwired baseline) hands the
/// scaffold: slot-queue depth and the optional augmentation hop.
struct CpuWiring {
    slot_depth: usize,
    augmentor: Option<SampleAugmentor>,
}

impl CpuWiring {
    /// The pre-graph constants: slot queues of 8, no augmentation.
    /// Preserved verbatim as the differential baseline.
    fn hardwired() -> Self {
        CpuWiring {
            slot_depth: 8,
            augmentor: None,
        }
    }

    /// Wiring derived from a compiled graph. Resolves `DLB_AUG_SEED` here —
    /// at backend start, never inside `compile`.
    fn from_compiled(compiled: &CompiledPipeline) -> Self {
        CpuWiring {
            slot_depth: compiled.slot_depth,
            augmentor: compiled.augmentor(),
        }
    }
}

/// The running CPU-based backend.
pub struct CpuBackend {
    scaffold: Arc<PoolScaffold>,
    workers: Vec<JoinHandle<()>>,
    name: &'static str,
    /// Shared tracer slot (from the wiring telemetry) so `next_batch` can
    /// close the `queue.deliver` span; `None` without telemetry.
    tracer_cell: Option<Arc<OnceLock<Arc<Tracer>>>>,
}

impl CpuBackend {
    /// Starts `config.workers` decode threads pulling metadata from
    /// `collector` and bytes from `resolver`. Internally compiles the
    /// canned CPU training graph — see [`CpuBackend::from_graph`] for
    /// user-composed pipelines and [`CpuBackend::start_hardwired`] for the
    /// pre-graph wiring.
    pub fn start(
        collector: Arc<DataCollector>,
        resolver: Arc<dyn DataSourceResolver>,
        config: CpuBackendConfig,
    ) -> Result<Self, String> {
        let compiled = config
            .canned_graph()
            .compile(&config.graph_config())
            .map_err(|e| e.to_string())?;
        Self::start_inner(
            collector,
            resolver,
            config,
            CpuWiring::from_compiled(&compiled),
            None,
        )
    }

    /// [`CpuBackend::start`] with the per-stage `codec.*` timers exported
    /// into `telemetry` (`codec.huffman_ns` / `codec.idct_ns` /
    /// `codec.color_ns` / `codec.resize_ns`), at the cost of per-block
    /// timestamp reads in the decoder.
    pub fn start_with_telemetry(
        collector: Arc<DataCollector>,
        resolver: Arc<dyn DataSourceResolver>,
        config: CpuBackendConfig,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self, String> {
        let compiled = config
            .canned_graph()
            .compile(&config.graph_config())
            .map_err(|e| e.to_string())?;
        Self::start_inner(
            collector,
            resolver,
            config,
            CpuWiring::from_compiled(&compiled),
            Some(telemetry),
        )
    }

    /// The pre-refactor constructor: wires the worker pool from hardcoded
    /// constants without ever building a graph. Kept as the differential
    /// baseline — `tests/graph_equivalence.rs` holds [`CpuBackend::start`]
    /// (canned graph) bitwise-equal to this path.
    pub fn start_hardwired(
        collector: Arc<DataCollector>,
        resolver: Arc<dyn DataSourceResolver>,
        config: CpuBackendConfig,
    ) -> Result<Self, String> {
        Self::start_inner(collector, resolver, config, CpuWiring::hardwired(), None)
    }

    /// [`CpuBackend::start_hardwired`] with a shared telemetry registry.
    pub fn start_hardwired_with_telemetry(
        collector: Arc<DataCollector>,
        resolver: Arc<dyn DataSourceResolver>,
        config: CpuBackendConfig,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self, String> {
        Self::start_inner(
            collector,
            resolver,
            config,
            CpuWiring::hardwired(),
            Some(telemetry),
        )
    }

    /// Builds the backend from a user-composed [`PipelineGraph`]. The graph
    /// must decode on the CPU (`DecodeDevice::Cpu`); its resize geometry
    /// overrides `config.target_w/h`, its decode parallelism overrides
    /// `config.workers`, its sink queue depth overrides the substrate
    /// default, and any augmentation stages run inside the workers with
    /// per-(epoch, sample) seeded draws. The per-sample cache stays usable
    /// under augmentation: it stores pre-augmentation pixels and bypassed
    /// batches re-augment under their dispense epoch.
    pub fn from_graph(
        collector: Arc<DataCollector>,
        resolver: Arc<dyn DataSourceResolver>,
        config: CpuBackendConfig,
        graph: &PipelineGraph,
        seed: u64,
    ) -> Result<Self, String> {
        Self::from_graph_inner(collector, resolver, config, graph, seed, None)
    }

    /// [`CpuBackend::from_graph`] with a shared telemetry registry.
    pub fn from_graph_with_telemetry(
        collector: Arc<DataCollector>,
        resolver: Arc<dyn DataSourceResolver>,
        config: CpuBackendConfig,
        graph: &PipelineGraph,
        seed: u64,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self, String> {
        Self::from_graph_inner(collector, resolver, config, graph, seed, Some(telemetry))
    }

    fn from_graph_inner(
        collector: Arc<DataCollector>,
        resolver: Arc<dyn DataSourceResolver>,
        mut config: CpuBackendConfig,
        graph: &PipelineGraph,
        seed: u64,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<Self, String> {
        let mut gc = config.graph_config();
        gc.seed = seed;
        let compiled = graph.compile(&gc).map_err(|e| e.to_string())?;
        if compiled.decode != DecodeDevice::Cpu {
            return Err(
                "CpuBackend executes CPU-decode graphs; use DlBooster::from_graph for \
                 DecodeDevice::Fpga"
                    .into(),
            );
        }
        config.target_w = compiled.resize.0;
        config.target_h = compiled.resize.1;
        config.workers = compiled.decode_parallelism;
        Self::start_inner(
            collector,
            resolver,
            config,
            CpuWiring::from_compiled(&compiled),
            telemetry,
        )
    }

    fn start_inner(
        collector: Arc<DataCollector>,
        resolver: Arc<dyn DataSourceResolver>,
        config: CpuBackendConfig,
        wiring: CpuWiring,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<Self, String> {
        if config.workers == 0 || config.batch_size == 0 || config.n_engines == 0 {
            return Err("workers, batch_size and n_engines must be positive".into());
        }
        // Units hold the batch both as decoded (resize output) and after
        // augmentation (which may grow items 4x via Normalize).
        let unit_size = match &wiring.augmentor {
            Some(aug) => {
                let out = aug.output_bytes(config.target_w, config.target_h);
                config.unit_size().max(config.batch_size * out)
            }
            None => config.unit_size(),
        };
        let scaffold = Arc::new(PoolScaffold::with_slot_depth(
            config.n_engines,
            wiring.slot_depth,
            unit_size,
            (config.n_engines * 3).max(config.workers + 2),
            config.max_batches,
        )?);
        let augmentor = wiring.augmentor;
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let collector = Arc::clone(&collector);
            let resolver = Arc::clone(&resolver);
            let scaffold = Arc::clone(&scaffold);
            let config = config.clone();
            let telemetry = telemetry.clone();
            let augmentor = augmentor.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cpu-decode-{w}"))
                    .spawn(move || {
                        cpu_worker(collector, resolver, scaffold, config, augmentor, telemetry)
                    })
                    .expect("spawn cpu worker"),
            );
        }
        Ok(Self {
            scaffold,
            workers,
            name: "CPU-based",
            tracer_cell: telemetry.as_ref().map(|t| t.tracer_cell()),
        })
    }

    /// Batches delivered so far.
    pub fn delivered(&self) -> u64 {
        self.scaffold.router.delivered()
    }
}

fn cpu_worker(
    collector: Arc<DataCollector>,
    resolver: Arc<dyn DataSourceResolver>,
    scaffold: Arc<PoolScaffold>,
    config: CpuBackendConfig,
    augmentor: Option<SampleAugmentor>,
    telemetry: Option<Arc<Telemetry>>,
) {
    // Stage timing costs per-block timestamp reads; only pay for it when
    // somebody is collecting the counters — or when the cache needs the
    // per-image decode cost as its eviction signal.
    let decoder =
        JpegDecoder::new().with_stage_timing(telemetry.is_some() || config.sample_cache.is_some());
    'produce: while !scaffold.stop.load(Ordering::SeqCst) {
        // Resolved per batch so a tracer installed after worker start is
        // still picked up; one `OnceLock::get` branch when disabled.
        let tr: Option<&Arc<Tracer>> = telemetry.as_ref().and_then(|t| t.tracer());
        if !scaffold.router.claim() {
            break;
        }
        let metas = loop {
            match collector.next_metas(config.batch_size) {
                None => break 'produce,
                Some(m) if m.is_empty() => {
                    if scaffold.stop.load(Ordering::SeqCst) {
                        break 'produce;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                Some(m) => break m,
            }
        };
        let trace_id = tr.map_or(0, |t| t.next_batch_id());
        let lease_t0 = tr.map(|_| Instant::now());
        let Ok(mut unit) = scaffold.pool.get_item() else {
            break;
        };
        if let (Some(t), Some(l0)) = (tr, lease_t0) {
            t.span(
                trace_id,
                stages::POOL_LEASE,
                SpanKind::Queue,
                l0,
                Instant::now(),
            );
        }
        let t0 = Instant::now();
        // Whole-batch cache bypass: if every sample in the batch is
        // resident, fill the unit straight from the cache and skip
        // fetch + decode + resize. A partial hit decodes live (mixing
        // cached and decoded items would serialise the worker on the
        // slowest miss anyway).
        if let Some(cache) = &config.sample_cache {
            let cached: Option<Vec<CachedSample>> = metas
                .iter()
                .map(|m| sample_key(&m.src).and_then(|k| cache.lookup(&k)))
                .collect();
            if let Some(samples) = cached {
                let mut arrivals = Vec::with_capacity(metas.len());
                // Cached samples are pre-augmentation pixels: with an
                // augmentor attached, each bypassed item re-augments under
                // *this* dispense epoch — a cache hit in epoch 3 draws
                // epoch 3's crop, exactly as a live decode would.
                for (meta, sample) in metas.iter().zip(&samples) {
                    arrivals.push(meta.arrival_nanos.unwrap_or(0));
                    match &augmentor {
                        Some(aug) => {
                            let out = aug.apply(
                                meta.epoch,
                                augment_identity(&meta.src),
                                &sample.data,
                                sample.width,
                                sample.height,
                                sample.channels,
                            );
                            unit.append(
                                &out.data,
                                sample.label,
                                out.width,
                                out.height,
                                out.channels,
                            );
                        }
                        None => {
                            unit.append(
                                &sample.data,
                                sample.label,
                                sample.width,
                                sample.height,
                                sample.channels,
                            );
                        }
                    }
                }
                cache.note_bypass_batch();
                if let Some(t) = tr {
                    t.span(
                        trace_id,
                        stages::CACHE_BYPASS,
                        SpanKind::Service,
                        t0,
                        Instant::now(),
                    );
                }
                scaffold
                    .cpu_busy_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if !scaffold.router.deliver_traced(unit, arrivals, trace_id) {
                    break;
                }
                continue;
            }
        }
        let mut arrivals = Vec::with_capacity(metas.len());
        // Fetch the whole batch, then decode it as one pool submission —
        // images in a batch decode concurrently on the work-stealing pool
        // (each image itself sequential: throughput-shaped parallelism).
        let fetched: Vec<Option<Vec<u8>>> = metas
            .iter()
            .map(|meta| {
                arrivals.push(meta.arrival_nanos.unwrap_or(0));
                resolver.fetch(&meta.src).ok()
            })
            .collect();
        if let Some(t) = tr {
            t.span(
                trace_id,
                stages::FETCH,
                SpanKind::Service,
                t0,
                Instant::now(),
            );
        }
        let payloads: Vec<&[u8]> = fetched
            .iter()
            .map(|b| b.as_deref().unwrap_or(&[]))
            .collect();
        let decode_t0 = tr.map(|_| Instant::now());
        let decoded = decoder.decode_batch_with_stats(&payloads);
        if let (Some(t), Some(d0)) = (tr, decode_t0) {
            t.span(
                trace_id,
                stages::CPU_DECODE,
                SpanKind::Service,
                d0,
                Instant::now(),
            );
        }
        let assemble_t0 = tr.map(|_| Instant::now());
        let mut huffman_ns = 0u64;
        let mut idct_ns = 0u64;
        let mut color_ns = 0u64;
        let mut resize_ns = 0u64;
        for (meta, result) in metas.iter().zip(decoded) {
            let mut image_cost = 0u64;
            let resized = result.ok().and_then(|(img, stats)| {
                image_cost = stats.huffman_ns + stats.idct_ns;
                huffman_ns += stats.huffman_ns;
                idct_ns += stats.idct_ns;
                color_ns += stats.color_ns;
                let r0 = Instant::now();
                let out = resize(
                    &img,
                    config.target_w,
                    config.target_h,
                    ResizeFilter::Bilinear,
                )
                .ok()
                .map(|img| img.to_rgb());
                resize_ns += r0.elapsed().as_nanos() as u64;
                out
            });
            match resized {
                Some(img) => {
                    if let (Some(cache), Some(key)) = (&config.sample_cache, sample_key(&meta.src))
                    {
                        cache.insert(
                            key,
                            CachedSample {
                                data: Arc::new(img.data().to_vec()),
                                label: meta.label,
                                width: config.target_w,
                                height: config.target_h,
                                channels: 3,
                            },
                            image_cost,
                        );
                    }
                    // The per-datum small copy of §5.2 — inherent to the
                    // CPU path: every image is decoded elsewhere and copied
                    // into the transfer buffer. Augmentation (when a graph
                    // composes it) runs here, after the cache insert above,
                    // so cached pixels stay pre-augmentation and every
                    // epoch redraws.
                    match &augmentor {
                        Some(aug) => {
                            let aug_t0 = tr.map(|_| Instant::now());
                            let out = aug.apply(
                                meta.epoch,
                                augment_identity(&meta.src),
                                img.data(),
                                config.target_w,
                                config.target_h,
                                3,
                            );
                            if let (Some(t), Some(a0)) = (tr, aug_t0) {
                                t.span(
                                    trace_id,
                                    stages::AUGMENT,
                                    SpanKind::Service,
                                    a0,
                                    Instant::now(),
                                );
                            }
                            unit.append(&out.data, meta.label, out.width, out.height, out.channels);
                        }
                        None => {
                            unit.append(
                                img.data(),
                                meta.label,
                                config.target_w,
                                config.target_h,
                                3,
                            );
                        }
                    }
                }
                None => {
                    // Failed fetch or decode: quarantine the key so the
                    // sample can never be admitted, and reserve a zeroed
                    // slot so the batch layout stays rectangular (sized to
                    // the augmented geometry when a plan is attached).
                    if let (Some(cache), Some(key)) = (&config.sample_cache, sample_key(&meta.src))
                    {
                        cache.poison(key);
                    }
                    let (slot_bytes, slot_w, slot_h) = match &augmentor {
                        Some(aug) => {
                            let (w, h) = aug.output_dims(config.target_w, config.target_h);
                            (aug.output_bytes(config.target_w, config.target_h), w, h)
                        }
                        None => (
                            config.target_w as usize * config.target_h as usize * 3,
                            config.target_w,
                            config.target_h,
                        ),
                    };
                    unit.reserve(slot_bytes, meta.label, slot_w, slot_h, 3);
                }
            }
        }
        if let (Some(t), Some(a0)) = (tr, assemble_t0) {
            // Resize dominates assembly; per-image augment spans recorded
            // above sit inside this window and win segmentation, so resize
            // is charged only what augmentation didn't consume.
            t.span(
                trace_id,
                stages::RESIZE,
                SpanKind::Service,
                a0,
                Instant::now(),
            );
        }
        if let Some(t) = &telemetry {
            t.registry
                .counter(names::CODEC_HUFFMAN_NANOS)
                .add(huffman_ns);
            t.registry.counter(names::CODEC_IDCT_NANOS).add(idct_ns);
            t.registry.counter(names::CODEC_COLOR_NANOS).add(color_ns);
            t.registry.counter(names::CODEC_RESIZE_NANOS).add(resize_ns);
        }
        scaffold
            .cpu_busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if !scaffold.router.deliver_traced(unit, arrivals, trace_id) {
            break;
        }
    }
}

impl PreprocessBackend for CpuBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn next_batch(&self, slot: usize) -> Result<HostBatch, BackendError> {
        let batch = self
            .scaffold
            .router
            .queue(slot)
            .pop()
            .map_err(|_| BackendError::Exhausted)?;
        if let Some(t) = self.tracer_cell.as_ref().and_then(|c| c.get()) {
            if batch.trace != 0 {
                t.span(
                    batch.trace,
                    stages::QUEUE_DELIVER,
                    SpanKind::Queue,
                    batch.ready_at,
                    Instant::now(),
                );
            }
        }
        Ok(batch)
    }

    fn recycle(&self, unit: BatchUnit) {
        let _ = self.scaffold.pool.recycle_item(unit);
    }

    fn max_batch_bytes(&self) -> usize {
        self.scaffold.pool.unit_size()
    }

    fn cpu_busy_nanos(&self) -> u64 {
        self.scaffold.cpu_busy_nanos.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        self.scaffold.stop.store(true, Ordering::SeqCst);
        self.scaffold.router.close();
        self.scaffold.pool.close();
    }
}

impl Drop for CpuBackend {
    fn drop(&mut self) {
        self.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};
    use dlbooster_core::CombinedResolver;

    fn backend(workers: usize, max: Option<u64>) -> CpuBackend {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(16, 5), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        CpuBackend::start(
            collector,
            Arc::new(CombinedResolver::disk_only(disk)),
            CpuBackendConfig {
                n_engines: 1,
                batch_size: 4,
                target_w: 32,
                target_h: 32,
                workers,
                max_batches: max,
                sample_cache: None,
            },
        )
        .unwrap()
    }

    #[test]
    fn produces_decoded_batches() {
        let b = backend(2, Some(4));
        let mut seen = 0;
        let mut sequences = Vec::new();
        while let Ok(batch) = b.next_batch(0) {
            assert_eq!(batch.len(), 4);
            for item in batch.unit.items() {
                assert_eq!(item.len, 32 * 32 * 3);
            }
            // Pixels are real, not zero-fill.
            let nz = batch.unit.payload().iter().filter(|&&x| x != 0).count();
            assert!(nz > 100);
            sequences.push(batch.sequence);
            seen += 1;
            b.recycle(batch.unit);
        }
        assert_eq!(seen, 4);
        sequences.sort_unstable();
        assert_eq!(sequences, vec![0, 1, 2, 3]);
        assert!(b.cpu_busy_nanos() > 0, "decode work must be accounted");
    }

    #[test]
    fn more_workers_do_not_change_results_count() {
        let b = backend(4, Some(6));
        let mut seen = 0;
        while let Ok(batch) = b.next_batch(0) {
            seen += 1;
            b.recycle(batch.unit);
        }
        assert_eq!(seen, 6);
        assert_eq!(b.delivered(), 6);
    }

    #[test]
    fn shutdown_stops_workers() {
        let b = backend(2, None);
        let first = b.next_batch(0).unwrap();
        b.recycle(first.unit);
        b.shutdown();
        // Pending queue items may still drain, then the error surfaces.
        loop {
            match b.next_batch(0) {
                Ok(batch) => b.recycle(batch.unit),
                Err(e) => {
                    assert_eq!(e, BackendError::Exhausted);
                    break;
                }
            }
        }
    }

    #[test]
    fn telemetry_exports_codec_stage_timers() {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(16, 5), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        let telemetry = Telemetry::with_defaults();
        let b = CpuBackend::start_with_telemetry(
            collector,
            Arc::new(CombinedResolver::disk_only(disk)),
            CpuBackendConfig {
                n_engines: 1,
                batch_size: 4,
                target_w: 32,
                target_h: 32,
                workers: 2,
                max_batches: Some(3),
                sample_cache: None,
            },
            Arc::clone(&telemetry),
        )
        .unwrap();
        while let Ok(batch) = b.next_batch(0) {
            b.recycle(batch.unit);
        }
        let snap = telemetry.registry.snapshot();
        assert!(snap.counter(names::CODEC_HUFFMAN_NANOS) > 0);
        assert!(snap.counter(names::CODEC_IDCT_NANOS) > 0);
        assert!(snap.counter(names::CODEC_COLOR_NANOS) > 0);
        assert!(snap.counter(names::CODEC_RESIZE_NANOS) > 0);
    }

    #[test]
    fn sample_cache_serves_second_epoch_without_decode() {
        // 8 images, batch 4 ⇒ 2 batches/epoch; 4 batches = 2 epochs. One
        // worker serialises production, and the CPU path inserts inline
        // during decode, so epoch 2 is guaranteed fully resident.
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(8, 5), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        let cache = SampleCache::new(64 << 20);
        let b = CpuBackend::start(
            collector,
            Arc::new(CombinedResolver::disk_only(disk)),
            CpuBackendConfig {
                n_engines: 1,
                batch_size: 4,
                target_w: 32,
                target_h: 32,
                workers: 1,
                max_batches: Some(4),
                sample_cache: Some(Arc::clone(&cache)),
            },
        )
        .unwrap();
        let mut payloads = Vec::new();
        while let Ok(batch) = b.next_batch(0) {
            assert_eq!(batch.len(), 4);
            payloads.push(batch.unit.payload().to_vec());
            b.recycle(batch.unit);
        }
        assert_eq!(payloads.len(), 4);
        // Epoch 2 replays epoch 1 bit-for-bit, straight from the cache.
        assert_eq!(payloads[0], payloads[2]);
        assert_eq!(payloads[1], payloads[3]);
        assert_eq!(cache.bypass_batches(), 2);
        let (lookups, hits, misses) = cache.lookup_stats();
        assert_eq!(hits + misses, lookups);
        assert_eq!(hits, 8, "both epoch-2 batches served fully from cache");
    }

    #[test]
    fn rejects_zero_workers() {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::mnist_like(4, 1), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        assert!(CpuBackend::start(
            collector,
            Arc::new(CombinedResolver::disk_only(disk)),
            CpuBackendConfig {
                n_engines: 1,
                batch_size: 4,
                target_w: 16,
                target_h: 16,
                workers: 0,
                max_batches: None,
                sample_cache: None,
            },
        )
        .is_err());
    }
}

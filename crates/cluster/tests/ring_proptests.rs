//! Property tests for the consistent-hash ring.
//!
//! Two properties anchor the cluster design:
//!
//! 1. **Purity** — placement is a function of `(seed, membership)` only.
//!    Any sequence of add/remove operations arriving at the same
//!    membership routes every key identically to a ring built fresh.
//! 2. **Minimal movement** — removing (or adding) one node moves only
//!    the keys that node owned (or now owns): everything else stays
//!    put, and the moved fraction stays near 1/N.
//!
//! Case count honours `PROPTEST_CASES` (CI pins it for determinism).

use dlb_cluster::HashRing;
use proptest::prelude::*;
use std::collections::BTreeSet;

const VNODES: u32 = 64;
const KEYS: u64 = 2048;

fn routes(ring: &HashRing) -> Vec<Option<u32>> {
    (0..KEYS).map(|k| ring.route(k)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same membership → same routing, regardless of construction order.
    #[test]
    fn placement_is_pure_function_of_seed_and_membership(
        seed in any::<u64>(),
        raw_nodes in prop::collection::vec(0u32..64, 1..12),
        ops in prop::collection::vec((0u32..64, any::<bool>()), 0..24),
    ) {
        let nodes: BTreeSet<u32> = raw_nodes.into_iter().collect();
        let reference = HashRing::with_nodes(seed, VNODES, nodes.iter().copied());
        // Apply a random op sequence, then reconcile back to the
        // reference membership: the detour must leave no trace.
        let mut ring = HashRing::with_nodes(seed, VNODES, nodes.iter().copied());
        for (node, add) in ops {
            if add { ring.add(node); } else { ring.remove(node); }
        }
        for n in 0..64u32 {
            if nodes.contains(&n) { ring.add(n); } else { ring.remove(n); }
        }
        prop_assert_eq!(routes(&reference), routes(&ring));
        // The seed genuinely participates in placement: a different seed
        // must reshuffle at least one key (≥ 2 nodes so there is choice).
        if nodes.len() >= 2 {
            let other = HashRing::with_nodes(seed ^ 0xDEAD_BEEF, VNODES, nodes.iter().copied());
            prop_assert!(
                routes(&reference) != routes(&other),
                "seed does not influence placement"
            );
        }
    }

    /// Removing one node moves only its own keys; the moved share is
    /// close to 1/N.
    #[test]
    fn removal_moves_about_one_nth_of_keys(
        seed in any::<u64>(),
        n in 2u32..16,
        victim_idx in any::<prop::sample::Index>(),
    ) {
        let mut ring = HashRing::with_nodes(seed, VNODES, 0..n);
        let victim = victim_idx.index(n as usize) as u32;
        let before = routes(&ring);
        ring.remove(victim);
        let after = routes(&ring);
        let mut moved = 0u64;
        for (b, a) in before.iter().zip(after.iter()) {
            if *b == Some(victim) {
                // The victim's keys must all move, and not to the victim.
                prop_assert_ne!(*a, Some(victim));
                moved += 1;
            } else {
                // Every other key keeps its owner.
                prop_assert_eq!(*a, *b);
            }
        }
        // Expected share 1/n of KEYS; allow generous slack for vnode
        // placement variance at small n.
        let expected = KEYS as f64 / f64::from(n);
        prop_assert!(
            (moved as f64) < 3.5 * expected + 32.0,
            "removing 1/{} nodes moved {}/{} keys", n, moved, KEYS
        );
    }

    /// Adding a node is the mirror image: only keys the newcomer claims
    /// change owner.
    #[test]
    fn addition_moves_only_claimed_keys(
        seed in any::<u64>(),
        n in 2u32..16,
    ) {
        let mut ring = HashRing::with_nodes(seed, VNODES, 0..n);
        let before = routes(&ring);
        ring.add(n); // newcomer
        let after = routes(&ring);
        let mut claimed = 0u64;
        for (b, a) in before.iter().zip(after.iter()) {
            if *a == Some(n) {
                claimed += 1;
            } else {
                prop_assert_eq!(*a, *b);
            }
        }
        let expected = KEYS as f64 / f64::from(n + 1);
        prop_assert!(
            (claimed as f64) < 3.5 * expected + 32.0,
            "newcomer claimed {}/{} keys on an {}-node ring", claimed, KEYS, n
        );
        prop_assert!(claimed > 0, "newcomer claimed nothing on an {}-node ring", n);
    }
}

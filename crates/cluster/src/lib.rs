//! `dlb-cluster` — a sharded preprocessing cluster over `DlBooster`
//! nodes.
//!
//! One `DlBooster` pipeline serves one machine; this crate is the
//! scale-out layer the ROADMAP's "millions of users" north star calls
//! for. Four pieces compose it:
//!
//! * [`HashRing`] — a consistent-hash ring with virtual nodes and
//!   deterministic splitmix64 placement. Keys (tenant object ids, cache
//!   [`SampleKey`]s) map to shards as a pure function of
//!   `(seed, membership)`, so decoded-sample cache locality survives
//!   routing and membership changes move only ~1/N of the keyspace.
//! * [`TenantQuotas`] — cluster-wide per-tenant token buckets layered
//!   above each node's `WeightedFairQueue`, rebalanced when membership
//!   changes so admission shrinks with lost capacity.
//! * [`LatencyBudget`] + [`DedupLedger`] — deadline-budget hedging: a
//!   request stuck past its shard's p99-derived budget is hedged to the
//!   next ring replica, first completion wins, and every duplicate is
//!   accounted exactly (`requests + hedge_dups = served + replayed +
//!   shed` at quiescence).
//! * [`BoosterCluster`] — node failover on the real machinery:
//!   chaos-killing a node reuses [`DlBooster::quiesce`]'s
//!   drain/recycle contract, the ring redistributes its range, and the
//!   shortfall replays on a caller-provisioned successor with exact
//!   no-loss/no-dup batch accounting.
//!
//! The discrete-event cluster simulation (`ClusterSim`) that drives
//! 8–32 node overload sweeps with mid-run kills lives in
//! `dlb-workflows`; the `cluster.*` counter family it emits is defined
//! here in [`ClusterInstruments`] and checked by
//! `PipelineSnapshot::invariant_violations`.
//!
//! [`SampleKey`]: dlb_cache::SampleKey
//! [`DlBooster::quiesce`]: dlbooster_core::DlBooster::quiesce

pub mod booster;
pub mod hedge;
pub mod instruments;
pub mod quota;
pub mod ring;

pub use booster::{BoosterCluster, KillOutcome};
pub use hedge::{
    CompletionOutcome, CopyKind, DedupLedger, HedgeConfig, LatencyBudget, LossOutcome,
};
pub use instruments::ClusterInstruments;
pub use quota::{QuotaConfig, TenantQuotas};
pub use ring::{splitmix64, HashRing};

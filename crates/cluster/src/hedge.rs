//! Deadline-budget hedging: p99-derived budgets and exact
//! first-completion-wins dedup accounting.
//!
//! A request dispatched to a shard gets a *hedge budget* — the shard's
//! recent p99 completion latency times a safety multiplier. If the
//! primary copy is still in flight when the budget expires, the router
//! launches one hedge copy on the next ring replica. Whichever copy
//! completes first wins; every later completion of the same request is a
//! *duplicate* and must be counted as such so the cluster conservation
//! law (`requests + hedge_dups == served + replayed + shed`) balances
//! exactly — the same no-loss/no-dup discipline `FailoverBackend` proved
//! for FPGA→CPU failover, lifted to the cluster.
//!
//! [`DedupLedger`] is the authority on copy state: one entry per request,
//! tracking in-flight copy count and terminal outcome. The router asks it
//! to classify every completion and every copy lost to a node kill, so
//! the counters cannot drift from the actual copy lifecycle.

use dlb_simcore::SimTime;
use std::collections::HashMap;

/// Hedging policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Budget = recent p99 × this multiplier.
    pub multiplier: f64,
    /// Budget floor — never hedge faster than this.
    pub min_budget: SimTime,
    /// Budget ceiling, and the budget used before enough samples exist.
    pub max_budget: SimTime,
    /// Maximum hedge copies per request (0 disables hedging).
    pub max_hedges: u32,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            multiplier: 2.0,
            min_budget: SimTime::from_millis(1),
            max_budget: SimTime::from_millis(250),
            max_hedges: 1,
        }
    }
}

/// Sliding-window p99 estimator for one shard's completion latency.
#[derive(Debug)]
pub struct LatencyBudget {
    cfg: HedgeConfig,
    /// Recent completion latencies in nanoseconds, oldest first.
    window: Vec<u64>,
    cap: usize,
    next: usize,
    /// Below this many samples the estimator stays at `max_budget`.
    min_samples: usize,
}

impl LatencyBudget {
    /// An estimator over the last `window` completions (clamped ≥ 8).
    pub fn new(cfg: HedgeConfig, window: usize) -> Self {
        let cap = window.max(8);
        Self {
            cfg,
            window: Vec::with_capacity(cap),
            cap,
            next: 0,
            min_samples: 8,
        }
    }

    /// Records one dispatch→completion latency.
    pub fn observe(&mut self, latency: SimTime) {
        let ns = latency.as_nanos();
        if self.window.len() < self.cap {
            self.window.push(ns);
        } else {
            self.window[self.next] = ns;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Samples currently in the window.
    pub fn samples(&self) -> usize {
        self.window.len()
    }

    /// The current hedge budget: p99-of-window × multiplier, clamped to
    /// `[min_budget, max_budget]`; `max_budget` until the window has
    /// enough samples to trust.
    pub fn budget(&self) -> SimTime {
        if self.window.len() < self.min_samples {
            return self.cfg.max_budget;
        }
        let mut sorted = self.window.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64 - 1.0) * 0.99).round() as usize;
        let p99 = sorted[idx.min(sorted.len() - 1)] as f64;
        let budget = SimTime::from_nanos((p99 * self.cfg.multiplier) as u64);
        budget.max(self.cfg.min_budget).min(self.cfg.max_budget)
    }
}

/// Which copy of a request a dispatch or completion belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyKind {
    /// The first dispatch, to the key's ring owner.
    Primary,
    /// A budget-expiry hedge to a ring replica.
    Hedge,
    /// A re-dispatch of work lost to a node kill.
    Replay,
}

/// What a completion meant for the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionOutcome {
    /// First completion — the request is now served by this copy.
    Won(CopyKind),
    /// The request was already terminal; this completion is a duplicate.
    Duplicate,
}

/// What losing a copy (node kill) meant for the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossOutcome {
    /// Last live copy of a still-open request — the router must replay
    /// it on a successor or shed it.
    Replayable,
    /// Other copies of the still-open request remain in flight.
    Covered,
    /// The request was already terminal; nothing to do.
    Stale,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Terminal {
    Open,
    Served,
    Shed,
}

#[derive(Debug)]
struct ReqEntry {
    inflight: u32,
    state: Terminal,
}

/// Per-request copy bookkeeping (see module docs).
#[derive(Debug, Default)]
pub struct DedupLedger {
    reqs: HashMap<u64, ReqEntry>,
}

impl DedupLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers request `req` at the admission door (zero copies yet).
    pub fn admit(&mut self, req: u64) {
        self.reqs.entry(req).or_insert(ReqEntry {
            inflight: 0,
            state: Terminal::Open,
        });
    }

    /// Records one more in-flight copy of `req`.
    pub fn dispatch(&mut self, req: u64) {
        self.admit(req);
        let e = self.reqs.get_mut(&req).expect("admitted above");
        e.inflight += 1;
    }

    /// Classifies a copy completion and retires the copy.
    pub fn complete(&mut self, req: u64, kind: CopyKind) -> CompletionOutcome {
        let e = self
            .reqs
            .get_mut(&req)
            .expect("completion for unknown request");
        e.inflight = e.inflight.saturating_sub(1);
        match e.state {
            Terminal::Open => {
                e.state = Terminal::Served;
                CompletionOutcome::Won(kind)
            }
            _ => CompletionOutcome::Duplicate,
        }
    }

    /// Classifies a copy lost to a node kill and retires the copy. On
    /// [`LossOutcome::Replayable`] the caller must either re-dispatch
    /// (another [`DedupLedger::dispatch`]) or [`DedupLedger::shed`].
    pub fn lose(&mut self, req: u64) -> LossOutcome {
        let e = self.reqs.get_mut(&req).expect("loss for unknown request");
        e.inflight = e.inflight.saturating_sub(1);
        match e.state {
            Terminal::Open if e.inflight == 0 => LossOutcome::Replayable,
            Terminal::Open => LossOutcome::Covered,
            _ => LossOutcome::Stale,
        }
    }

    /// Marks `req` terminally shed (quota denial, dead ring, or an
    /// unreplayable loss).
    pub fn shed(&mut self, req: u64) {
        self.admit(req);
        let e = self.reqs.get_mut(&req).expect("admitted above");
        e.state = Terminal::Shed;
    }

    /// True once `req` is served or shed.
    pub fn is_terminal(&self, req: u64) -> bool {
        self.reqs
            .get(&req)
            .is_some_and(|e| e.state != Terminal::Open)
    }

    /// In-flight copies of `req` right now.
    pub fn inflight_copies(&self, req: u64) -> u32 {
        self.reqs.get(&req).map_or(0, |e| e.inflight)
    }

    /// Requests not yet terminal — must be zero at quiescence ("no stuck
    /// requests").
    pub fn open_requests(&self) -> usize {
        self.reqs
            .values()
            .filter(|e| e.state == Terminal::Open)
            .count()
    }

    /// Copies in flight across all requests.
    pub fn inflight_total(&self) -> u64 {
        self.reqs.values().map(|e| u64::from(e.inflight)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_tracks_p99_with_clamps() {
        let cfg = HedgeConfig {
            multiplier: 2.0,
            min_budget: SimTime::from_nanos(100),
            max_budget: SimTime::from_millis(10),
            max_hedges: 1,
        };
        let mut b = LatencyBudget::new(cfg, 64);
        // Too few samples: pessimistic max budget.
        b.observe(SimTime::from_nanos(500));
        assert_eq!(b.budget(), cfg.max_budget);
        for _ in 0..63 {
            b.observe(SimTime::from_nanos(500));
        }
        // p99 ≈ 500 ns → budget 1 µs.
        let budget = b.budget().as_nanos();
        assert!((900..=1100).contains(&budget), "budget {budget}");
        // A tail spike raises it.
        for _ in 0..64 {
            b.observe(SimTime::from_nanos(50_000));
        }
        assert!(b.budget().as_nanos() >= 90_000);
    }

    #[test]
    fn first_completion_wins_rest_are_dups() {
        let mut l = DedupLedger::new();
        l.admit(1);
        l.dispatch(1);
        l.dispatch(1); // hedge
        assert_eq!(
            l.complete(1, CopyKind::Hedge),
            CompletionOutcome::Won(CopyKind::Hedge)
        );
        assert_eq!(
            l.complete(1, CopyKind::Primary),
            CompletionOutcome::Duplicate
        );
        assert!(l.is_terminal(1));
        assert_eq!(l.inflight_copies(1), 0);
        assert_eq!(l.open_requests(), 0);
    }

    #[test]
    fn loss_classification() {
        let mut l = DedupLedger::new();
        // Last copy lost → replayable.
        l.dispatch(1);
        assert_eq!(l.lose(1), LossOutcome::Replayable);
        l.dispatch(1); // the replay
        assert_eq!(
            l.complete(1, CopyKind::Replay),
            CompletionOutcome::Won(CopyKind::Replay)
        );

        // Copy lost while a hedge survives → covered.
        l.dispatch(2);
        l.dispatch(2);
        assert_eq!(l.lose(2), LossOutcome::Covered);
        assert_eq!(
            l.complete(2, CopyKind::Hedge),
            CompletionOutcome::Won(CopyKind::Hedge)
        );

        // Copy lost after the request already completed → stale.
        l.dispatch(3);
        l.dispatch(3);
        assert_eq!(
            l.complete(3, CopyKind::Primary),
            CompletionOutcome::Won(CopyKind::Primary)
        );
        assert_eq!(l.lose(3), LossOutcome::Stale);
        assert_eq!(l.open_requests(), 0);
        assert_eq!(l.inflight_total(), 0);
    }

    #[test]
    fn shed_terminates_a_request() {
        let mut l = DedupLedger::new();
        l.admit(9);
        l.shed(9);
        assert!(l.is_terminal(9));
        assert_eq!(l.open_requests(), 0);
    }
}

//! A functional mini-cluster over real [`DlBooster`] pipelines.
//!
//! Where `ClusterSim` (in `dlb-workflows`) explores cluster behaviour at
//! scale in virtual time, [`BoosterCluster`] proves the failover story on
//! the *real* machinery: N live `DlBooster` nodes behind a
//! [`HashRing`], each with a delivery budget. Killing a node reuses the
//! exact quiesce/recycle contract `FailoverBackend` established —
//! [`DlBooster::quiesce`] stops the router and finalises `delivered()`,
//! residue already routed to slot queues stays poppable, and the
//! shortfall (`budget − delivered`) is re-provisioned on a replacement
//! node built by the caller from the undelivered tail of the dead
//! node's shard. Batch accounting is exact: every budgeted batch is
//! consumed exactly once, by the original node, its residue drain, or
//! the replacement.

use crate::ring::HashRing;
use dlb_cache::SampleKey;
use dlbooster_core::{BackendError, DlBooster, HostBatch, PreprocessBackend};
use std::time::Duration;

/// One shard: a live booster plus its delivery budget and consumption
/// ledger.
struct Shard {
    booster: DlBooster,
    /// Batches this node is expected to deliver over its lifetime.
    budget: u64,
    /// Batches the cluster consumer has popped from this node (including
    /// its post-kill residue drain).
    consumed: u64,
    alive: bool,
}

/// What a [`BoosterCluster::kill`] did, for exact-accounting assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillOutcome {
    /// The killed node's final `delivered()` — batches that ever left it.
    pub delivered: u64,
    /// Batches drained out of the dead node's slot queues after quiesce.
    pub residue: u64,
    /// `budget − delivered`: batches the replacement must re-produce.
    pub shortfall: u64,
    /// Id of the replacement node, if the caller provisioned one.
    pub replacement: Option<u32>,
}

/// N live `DlBooster` nodes behind a consistent-hash ring.
pub struct BoosterCluster {
    shards: Vec<Shard>,
    ring: HashRing,
    pop_timeout: Duration,
}

impl BoosterCluster {
    /// Wraps `nodes` (each a started booster plus its delivery budget)
    /// behind a ring seeded with `seed` and `vnodes` points per node.
    pub fn new(seed: u64, vnodes: u32, nodes: Vec<(DlBooster, u64)>) -> Self {
        let ring = HashRing::with_nodes(seed, vnodes, 0..nodes.len() as u32);
        let shards = nodes
            .into_iter()
            .map(|(booster, budget)| Shard {
                booster,
                budget,
                consumed: 0,
                alive: true,
            })
            .collect();
        Self {
            shards,
            ring,
            pop_timeout: Duration::from_secs(10),
        }
    }

    /// Live nodes remaining.
    pub fn alive(&self) -> usize {
        self.shards.iter().filter(|s| s.alive).count()
    }

    /// The node a cache key routes to (live membership only).
    pub fn route_sample(&self, key: &SampleKey) -> Option<u32> {
        self.ring.route_sample(key)
    }

    /// The routing ring (inspection).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Batches consumed from node `id` so far.
    pub fn consumed(&self, id: u32) -> u64 {
        self.shards[id as usize].consumed
    }

    /// Batches consumed across every node.
    pub fn total_consumed(&self) -> u64 {
        self.shards.iter().map(|s| s.consumed).sum()
    }

    /// Pops one batch from node `id`'s slot 0, recycles its unit, and
    /// counts it consumed. `Ok(false)` means the node's queue closed for
    /// good (budget exhausted).
    pub fn consume_one(&mut self, id: u32) -> Result<bool, String> {
        let shard = &mut self.shards[id as usize];
        match shard.booster.next_batch_timeout(0, self.pop_timeout) {
            Ok(Some(batch)) => {
                shard.booster.recycle(batch.unit);
                shard.consumed += 1;
                Ok(true)
            }
            Ok(None) => Err(format!("node {id} wedged: pop timed out")),
            Err(BackendError::Exhausted) => Ok(false),
            Err(e) => Err(format!("node {id} failed: {e:?}")),
        }
    }

    /// Pops one batch from node `id` without recycling — the caller owns
    /// the batch (and must [`BoosterCluster::recycle`] it).
    pub fn pop(&mut self, id: u32) -> Result<Option<HostBatch>, String> {
        let shard = &mut self.shards[id as usize];
        match shard.booster.next_batch_timeout(0, self.pop_timeout) {
            Ok(Some(batch)) => {
                shard.consumed += 1;
                Ok(Some(batch))
            }
            Ok(None) => Err(format!("node {id} wedged: pop timed out")),
            Err(BackendError::Exhausted) => Ok(None),
            Err(e) => Err(format!("node {id} failed: {e:?}")),
        }
    }

    /// Returns a popped batch's unit to node `id`'s pool.
    pub fn recycle(&self, id: u32, batch: HostBatch) {
        self.shards[id as usize].booster.recycle(batch.unit);
    }

    /// Chaos-kills node `id`: quiesces it (router joined, `delivered()`
    /// final), drains the residue its slot queues still hold, removes it
    /// from the ring, and — when `replacement` returns a booster sized
    /// for the shortfall — splices the replacement in as a new node.
    ///
    /// `replacement` receives the dead node's final delivered count; the
    /// caller builds a booster over the *undelivered tail* of the dead
    /// node's shard (records from `delivered × batch_size` onward) so the
    /// cluster re-produces exactly the missing batches, no more, no less.
    pub fn kill(
        &mut self,
        id: u32,
        replacement: impl FnOnce(u64) -> Option<(DlBooster, u64)>,
    ) -> Result<KillOutcome, String> {
        let shard = &mut self.shards[id as usize];
        if !shard.alive {
            return Err(format!("node {id} already dead"));
        }
        shard.alive = false;
        shard.booster.quiesce();
        let delivered = shard.booster.delivered();
        // Residue: batches the router delivered before the kill that the
        // consumer never popped. quiesce closes the slot queues but they
        // drain to empty first.
        let mut residue = 0;
        while let Ok(Some(batch)) = shard
            .booster
            .next_batch_timeout(0, Duration::from_millis(50))
        {
            shard.booster.recycle(batch.unit);
            shard.consumed += 1;
            residue += 1;
        }
        self.ring.remove(id);
        let shortfall = shard.budget.saturating_sub(delivered);
        let replacement_id = replacement(delivered).map(|(booster, budget)| {
            let new_id = self.shards.len() as u32;
            self.shards.push(Shard {
                booster,
                budget,
                consumed: 0,
                alive: true,
            });
            self.ring.add(new_id);
            new_id
        });
        Ok(KillOutcome {
            delivered,
            residue,
            shortfall,
            replacement: replacement_id,
        })
    }

    /// Drains every live node to exhaustion, consuming (and recycling)
    /// each batch. Returns batches consumed by this call.
    pub fn drain_live(&mut self) -> Result<u64, String> {
        let ids: Vec<u32> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| i as u32)
            .collect();
        let mut n = 0;
        for id in ids {
            while self.consume_one(id)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Quiesces every live node (clean shutdown).
    pub fn shutdown(&mut self) {
        for s in &mut self.shards {
            if s.alive {
                s.booster.quiesce();
                s.alive = false;
            }
        }
    }
}

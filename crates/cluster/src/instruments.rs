//! Telemetry handles for the cluster layer: one struct owning every
//! `cluster.*` counter/gauge/histogram the shard router records into,
//! pre-resolved from a [`Registry`].
//!
//! The accounting contract enforced by
//! `PipelineSnapshot::invariant_violations`:
//!
//! * `requests + hedge_dups = served + replayed + shed + inflight` — at
//!   quiescence (`inflight = 0`) this is exactly the ISSUE law
//!   `in = served + shed + replayed − hedge_dups`, rearranged so both
//!   sides stay unsigned;
//! * `dispatches = admitted + hedges + replays` — every copy ever put on
//!   a node is a primary, a hedge, or a replay;
//! * `dispatches = completions + lost + node_queued` — every copy
//!   completes, dies with its node, or is still queued;
//! * `completions = served + replayed` and `lost = replays +
//!   lost_unreplayed` — completions and losses are fully classified.

use crate::hedge::CopyKind;
use dlb_simcore::SimTime;
use dlb_telemetry::{names, Counter, Gauge, Histogram, Registry};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Per-tenant counter handles (`cluster.tenant.<id>.*`).
#[derive(Debug)]
struct TenantHandles {
    requests: Arc<Counter>,
    completed: Arc<Counter>,
    shed: Arc<Counter>,
    good: Arc<Counter>,
}

/// Pre-resolved cluster-layer metric handles.
#[derive(Debug)]
pub struct ClusterInstruments {
    registry: Arc<Registry>,
    requests: Arc<Counter>,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
    quota_shed: Arc<Counter>,
    dispatches: Arc<Counter>,
    hedges: Arc<Counter>,
    hedge_wins: Arc<Counter>,
    hedge_dups: Arc<Counter>,
    replays: Arc<Counter>,
    completions: Arc<Counter>,
    served: Arc<Counter>,
    replayed: Arc<Counter>,
    good: Arc<Counter>,
    lost: Arc<Counter>,
    lost_unreplayed: Arc<Counter>,
    kills: Arc<Counter>,
    rebalances: Arc<Counter>,
    inflight: Arc<Gauge>,
    node_queued: Arc<Gauge>,
    nodes_alive: Arc<Gauge>,
    latency: Arc<Histogram>,
    tenants: Mutex<BTreeMap<u32, TenantHandles>>,
}

impl ClusterInstruments {
    /// Resolves every cluster metric in `registry`.
    pub fn new(registry: &Arc<Registry>) -> Arc<Self> {
        Arc::new(Self {
            requests: registry.counter(names::CLUSTER_REQUESTS),
            admitted: registry.counter(names::CLUSTER_ADMITTED),
            shed: registry.counter(names::CLUSTER_SHED),
            quota_shed: registry.counter(names::CLUSTER_QUOTA_SHED),
            dispatches: registry.counter(names::CLUSTER_DISPATCHES),
            hedges: registry.counter(names::CLUSTER_HEDGES),
            hedge_wins: registry.counter(names::CLUSTER_HEDGE_WINS),
            hedge_dups: registry.counter(names::CLUSTER_HEDGE_DUPS),
            replays: registry.counter(names::CLUSTER_REPLAYS),
            completions: registry.counter(names::CLUSTER_COMPLETIONS),
            served: registry.counter(names::CLUSTER_SERVED),
            replayed: registry.counter(names::CLUSTER_REPLAYED),
            good: registry.counter(names::CLUSTER_GOOD),
            lost: registry.counter(names::CLUSTER_LOST),
            lost_unreplayed: registry.counter(names::CLUSTER_LOST_UNREPLAYED),
            kills: registry.counter(names::CLUSTER_KILLS),
            rebalances: registry.counter(names::CLUSTER_REBALANCES),
            inflight: registry.gauge(names::CLUSTER_INFLIGHT),
            node_queued: registry.gauge(names::CLUSTER_NODE_QUEUED),
            nodes_alive: registry.gauge(names::CLUSTER_NODES_ALIVE),
            latency: registry.histogram(names::CLUSTER_LATENCY),
            tenants: Mutex::new(BTreeMap::new()),
            registry: Arc::clone(registry),
        })
    }

    fn with_tenant(&self, tenant: u32, f: impl FnOnce(&TenantHandles)) {
        let mut map = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        let handles = map.entry(tenant).or_insert_with(|| {
            let key = |field: &str| format!("{}{tenant}.{field}", names::CLUSTER_TENANT_PREFIX);
            TenantHandles {
                requests: self.registry.counter(&key("requests")),
                completed: self.registry.counter(&key("completed")),
                shed: self.registry.counter(&key("shed")),
                good: self.registry.counter(&key("good")),
            }
        });
        f(handles);
    }

    /// A request arrived at the cluster door.
    pub fn on_request(&self, tenant: u32) {
        self.requests.inc();
        self.inflight.inc();
        self.with_tenant(tenant, |t| t.requests.inc());
    }

    /// The request was terminally shed (`quota` distinguishes quota
    /// denials from dead-ring / unreplayable-loss sheds).
    pub fn on_shed(&self, tenant: u32, quota: bool) {
        self.shed.inc();
        if quota {
            self.quota_shed.inc();
        }
        self.inflight.dec();
        self.with_tenant(tenant, |t| t.shed.inc());
    }

    /// The request passed quota + routing and got a primary dispatch.
    pub fn on_admitted(&self) {
        self.admitted.inc();
    }

    /// A copy of some request was put on a node's queue.
    pub fn on_dispatch(&self, kind: CopyKind) {
        self.dispatches.inc();
        self.node_queued.inc();
        match kind {
            CopyKind::Primary => {}
            CopyKind::Hedge => self.hedges.inc(),
            CopyKind::Replay => self.replays.inc(),
        }
    }

    /// A copy finished service. `won` is false for duplicates of an
    /// already-terminal request; `good` only matters when `won`.
    pub fn on_completion(&self, tenant: u32, kind: CopyKind, won: bool, good: bool) {
        self.completions.inc();
        self.node_queued.dec();
        match kind {
            CopyKind::Replay => self.replayed.inc(),
            _ => self.served.inc(),
        }
        if won {
            self.inflight.dec();
            if kind == CopyKind::Hedge {
                self.hedge_wins.inc();
            }
            self.with_tenant(tenant, |t| {
                t.completed.inc();
                if good {
                    t.good.inc();
                }
            });
            if good {
                self.good.inc();
            }
        } else {
            self.hedge_dups.inc();
        }
    }

    /// Records a winning request's arrival→completion latency.
    pub fn observe_latency(&self, latency: SimTime) {
        self.latency.record(latency.as_nanos());
    }

    /// A copy died with its node. `replaying` is true when the caller
    /// immediately re-dispatches it (a [`CopyKind::Replay`] follows).
    pub fn on_lost(&self, replaying: bool) {
        self.lost.inc();
        self.node_queued.dec();
        if !replaying {
            self.lost_unreplayed.inc();
        }
    }

    /// A node was chaos-killed; `alive` survivors remain.
    pub fn on_kill(&self, alive: u32) {
        self.kills.inc();
        self.nodes_alive.set(i64::from(alive));
    }

    /// Quotas were rebalanced after a membership change.
    pub fn on_rebalance(&self) {
        self.rebalances.inc();
    }

    /// Sets the live-node gauge (initial membership).
    pub fn set_nodes_alive(&self, alive: u32) {
        self.nodes_alive.set(i64::from(alive));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_telemetry::Telemetry;

    #[test]
    fn laws_balance_over_a_scripted_run() {
        let t = Telemetry::with_defaults();
        let ins = ClusterInstruments::new(&t.registry);
        ins.set_nodes_alive(2);

        // Request 1: plain primary serve, in SLO.
        ins.on_request(0);
        ins.on_admitted();
        ins.on_dispatch(CopyKind::Primary);
        ins.on_completion(0, CopyKind::Primary, true, true);

        // Request 2: hedged; primary wins, hedge completes as a dup.
        ins.on_request(0);
        ins.on_admitted();
        ins.on_dispatch(CopyKind::Primary);
        ins.on_dispatch(CopyKind::Hedge);
        ins.on_completion(0, CopyKind::Primary, true, true);
        ins.on_completion(0, CopyKind::Hedge, false, false);

        // Request 3: primary lost to a kill, replayed, replay wins late.
        ins.on_request(1);
        ins.on_admitted();
        ins.on_dispatch(CopyKind::Primary);
        ins.on_kill(1);
        ins.on_rebalance();
        ins.on_lost(true);
        ins.on_dispatch(CopyKind::Replay);
        ins.on_completion(1, CopyKind::Replay, true, false);

        // Request 4: shed at the quota door.
        ins.on_request(1);
        ins.on_shed(1, true);

        let snap = t.pipeline_snapshot();
        let c = &snap.cluster;
        assert_eq!(c.requests, 4);
        assert_eq!(c.served, 3);
        assert_eq!(c.replayed, 1);
        assert_eq!(c.hedge_dups, 1);
        assert_eq!(c.shed, 1);
        assert_eq!(c.inflight, 0);
        assert_eq!(
            c.requests + c.hedge_dups,
            c.served + c.replayed + c.shed,
            "headline conservation law"
        );
        assert!(
            snap.invariant_violations().is_empty(),
            "{:?}",
            snap.invariant_violations()
        );
    }
}

//! Cluster-wide per-tenant rate quotas.
//!
//! Each tenant holds a token bucket refilled lazily against virtual
//! [`SimTime`]: a request costs one token, `burst` bounds how far an idle
//! tenant can get ahead. The buckets sit *above* each node's
//! `WeightedFairQueue` — the WFQ arbitrates service order among admitted
//! requests, the buckets bound how much total work a tenant may inject
//! into the cluster per second, so one tenant flooding the ring cannot
//! starve the others no matter which shards its keys hash to.
//!
//! On membership change the router calls [`TenantQuotas::rebalance`]:
//! every tenant's refill rate scales by `alive/total`, shrinking the
//! cluster-wide admission rate in proportion to lost capacity instead of
//! letting the survivors drown.

use dlb_simcore::SimTime;
use std::collections::BTreeMap;

/// One tenant's quota: sustained refill rate and burst ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Sustained admission rate, tokens (requests) per second.
    pub rate_per_sec: f64,
    /// Maximum accumulated tokens (burst size); clamped to ≥ 1.
    pub burst: f64,
}

#[derive(Debug)]
struct Bucket {
    /// Configured full-membership rate.
    base_rate: f64,
    /// Effective rate after the current membership scale.
    rate: f64,
    burst: f64,
    tokens: f64,
    refilled_at: SimTime,
}

impl Bucket {
    fn refill(&mut self, now: SimTime) {
        if now > self.refilled_at {
            let dt = now.saturating_sub(self.refilled_at).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        }
        self.refilled_at = self.refilled_at.max(now);
    }
}

/// Token buckets for every registered tenant.
///
/// Tenants never registered are admitted unthrottled — quotas are an
/// opt-in ceiling, not an allow-list.
#[derive(Debug)]
pub struct TenantQuotas {
    buckets: BTreeMap<u32, Bucket>,
    rebalances: u64,
}

impl TenantQuotas {
    /// Buckets from explicit per-tenant configs. Bursts start full.
    pub fn new(configs: impl IntoIterator<Item = (u32, QuotaConfig)>) -> Self {
        let buckets = configs
            .into_iter()
            .map(|(id, cfg)| {
                let burst = cfg.burst.max(1.0);
                (
                    id,
                    Bucket {
                        base_rate: cfg.rate_per_sec.max(0.0),
                        rate: cfg.rate_per_sec.max(0.0),
                        burst,
                        tokens: burst,
                        refilled_at: SimTime::ZERO,
                    },
                )
            })
            .collect();
        Self {
            buckets,
            rebalances: 0,
        }
    }

    /// Splits `cluster_rate` across tenants in proportion to their WFQ
    /// weights (the same `(id, weight)` pairs
    /// `WeightedFairQueue::tenants` reports), with `burst_secs` seconds
    /// of burst headroom each.
    pub fn from_weights(
        weights: impl IntoIterator<Item = (u32, u32)>,
        cluster_rate: f64,
        burst_secs: f64,
    ) -> Self {
        let weights: Vec<(u32, u32)> = weights.into_iter().collect();
        let total: f64 = weights.iter().map(|&(_, w)| f64::from(w.max(1))).sum();
        Self::new(weights.iter().map(|&(id, w)| {
            let rate = cluster_rate * f64::from(w.max(1)) / total.max(1.0);
            (
                id,
                QuotaConfig {
                    rate_per_sec: rate,
                    burst: rate * burst_secs,
                },
            )
        }))
    }

    /// Spends one token for `tenant` at virtual time `now`. Returns false
    /// when the bucket is dry (the request should be shed at the door).
    pub fn try_acquire(&mut self, tenant: u32, now: SimTime) -> bool {
        match self.buckets.get_mut(&tenant) {
            None => true,
            Some(b) => {
                b.refill(now);
                if b.tokens >= 1.0 {
                    b.tokens -= 1.0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Rescales every tenant's rate to `alive/total` of its configured
    /// full-membership rate — called when ring membership changes.
    pub fn rebalance(&mut self, alive: u32, total: u32) {
        let scale = if total == 0 {
            0.0
        } else {
            f64::from(alive.min(total)) / f64::from(total)
        };
        for b in self.buckets.values_mut() {
            b.rate = b.base_rate * scale;
            // Cap stored burst credit too: a dead node's capacity must not
            // linger as spendable tokens.
            b.tokens = b.tokens.min(b.burst * scale.max(f64::MIN_POSITIVE));
        }
        self.rebalances += 1;
    }

    /// Number of rebalances performed.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Current effective rate for `tenant` (None if unregistered).
    pub fn rate(&self, tenant: u32) -> Option<f64> {
        self.buckets.get(&tenant).map(|b| b.rate)
    }

    /// Tokens `tenant` would hold after refilling to `now` (None if
    /// unregistered). Read-only: does not advance the bucket.
    pub fn tokens_at(&self, tenant: u32, now: SimTime) -> Option<f64> {
        self.buckets.get(&tenant).map(|b| {
            let dt = now.saturating_sub(b.refilled_at).as_secs_f64();
            (b.tokens + dt * b.rate).min(b.burst)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let mut q = TenantQuotas::new([(
            0,
            QuotaConfig {
                rate_per_sec: 10.0,
                burst: 1.0,
            },
        )]);
        // Drain the single burst token, then offer 100 requests over 1 s:
        // only ~10 may pass.
        assert!(q.try_acquire(0, SimTime::ZERO));
        let admitted = (1..=100)
            .filter(|i| q.try_acquire(0, secs(f64::from(*i) / 100.0)))
            .count();
        assert!((9..=11).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn burst_caps_idle_credit() {
        let mut q = TenantQuotas::new([(
            0,
            QuotaConfig {
                rate_per_sec: 100.0,
                burst: 5.0,
            },
        )]);
        // A long idle stretch must not bank more than `burst` tokens.
        let now = secs(1000.0);
        let back_to_back = (0..50).filter(|_| q.try_acquire(0, now)).count();
        assert_eq!(back_to_back, 5);
    }

    #[test]
    fn unregistered_tenants_are_unthrottled() {
        let mut q = TenantQuotas::new([]);
        for _ in 0..1000 {
            assert!(q.try_acquire(9, SimTime::ZERO));
        }
    }

    #[test]
    fn rebalance_scales_rates_and_clips_credit() {
        let mut q = TenantQuotas::new([(
            0,
            QuotaConfig {
                rate_per_sec: 80.0,
                burst: 8.0,
            },
        )]);
        q.rebalance(6, 8);
        assert_eq!(q.rebalances(), 1);
        assert!((q.rate(0).unwrap() - 60.0).abs() < 1e-9);
        assert!(q.tokens_at(0, SimTime::ZERO).unwrap() <= 6.0 + 1e-9);
        // Back to full membership: rate restores to base.
        q.rebalance(8, 8);
        assert!((q.rate(0).unwrap() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn weight_proportional_split() {
        let q = TenantQuotas::from_weights([(0, 3), (1, 1)], 400.0, 0.5);
        assert!((q.rate(0).unwrap() - 300.0).abs() < 1e-9);
        assert!((q.rate(1).unwrap() - 100.0).abs() < 1e-9);
        assert!(q.rate(2).is_none());
    }
}

//! Consistent-hash ring with virtual nodes.
//!
//! Each physical node owns `vnodes` points on a 64-bit ring; a key routes
//! to the node owning the first point at or clockwise after the key's
//! hash. Point placement is a pure function of `(seed, node_id)` — no
//! insertion-order state, no RNG draws — so any two rings built over the
//! same membership agree on every key, and adding or removing a node
//! moves only the key ranges adjacent to that node's points (~1/N of the
//! keyspace for N equal nodes).
//!
//! Hashing is splitmix64, the same mixer the inference workload uses for
//! object-id scrambling: keys for the same tenant object land on the same
//! shard run after run, so the decoded-sample cache locality from the
//! cache crate survives cluster routing.

use dlb_cache::SampleKey;
use std::collections::BTreeSet;

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping 64-bit keys to `u32` node ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes: u32,
    /// Ring points sorted by position; ties (astronomically unlikely)
    /// break on node id so iteration order stays total.
    points: Vec<(u64, u32)>,
    nodes: BTreeSet<u32>,
}

impl HashRing {
    /// An empty ring. `vnodes` is the number of points each node owns
    /// (clamped to ≥ 1); more points mean smoother load spread at the
    /// cost of a larger routing table.
    pub fn new(seed: u64, vnodes: u32) -> Self {
        Self {
            seed,
            vnodes: vnodes.max(1),
            points: Vec::new(),
            nodes: BTreeSet::new(),
        }
    }

    /// A ring pre-populated with `nodes`.
    pub fn with_nodes(seed: u64, vnodes: u32, nodes: impl IntoIterator<Item = u32>) -> Self {
        let mut ring = Self::new(seed, vnodes);
        for n in nodes {
            ring.add(n);
        }
        ring
    }

    /// The position of `node`'s `replica`-th point: a pure function of
    /// `(seed, node, replica)`, independent of membership.
    fn point(&self, node: u32, replica: u32) -> u64 {
        splitmix64(self.seed ^ splitmix64((u64::from(node) << 32) | u64::from(replica)))
    }

    /// Adds `node`; returns false if it was already present.
    pub fn add(&mut self, node: u32) -> bool {
        if !self.nodes.insert(node) {
            return false;
        }
        for replica in 0..self.vnodes {
            let pt = (self.point(node, replica), node);
            let idx = self.points.partition_point(|p| *p < pt);
            self.points.insert(idx, pt);
        }
        true
    }

    /// Removes `node`; returns false if it was not a member.
    pub fn remove(&mut self, node: u32) -> bool {
        if !self.nodes.remove(&node) {
            return false;
        }
        self.points.retain(|&(_, n)| n != node);
        true
    }

    /// True when `node` is a member.
    pub fn contains(&self, node: u32) -> bool {
        self.nodes.contains(&node)
    }

    /// Member node ids in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node owning `key`: the first ring point at or clockwise after
    /// `splitmix64(key)`, wrapping at the top. `None` on an empty ring.
    pub fn route(&self, key: u64) -> Option<u32> {
        self.successors(key).next()
    }

    /// Distinct nodes in ring order starting at `key`'s owner — the
    /// owner first, then each successive replica candidate. Yields every
    /// member exactly once.
    pub fn successors(&self, key: u64) -> impl Iterator<Item = u32> + '_ {
        let start = if self.points.is_empty() {
            0
        } else {
            let h = splitmix64(key);
            let idx = self.points.partition_point(|&(pos, _)| pos < h);
            idx % self.points.len()
        };
        let mut seen = BTreeSet::new();
        let n = self.points.len();
        (0..n).filter_map(move |off| {
            let (_, node) = self.points[(start + off) % n];
            seen.insert(node).then_some(node)
        })
    }

    /// The `k`-th distinct node on the ring after `key`'s owner
    /// (`replica(key, 0) == route(key)`).
    pub fn replica(&self, key: u64, k: usize) -> Option<u32> {
        self.successors(key).nth(k)
    }

    /// Stable 64-bit routing key for a cache [`SampleKey`]: disk records
    /// hash by byte extent, tenant objects by `(tenant, id)` — the same
    /// identity the decoded-sample cache indexes on, so routing and cache
    /// locality agree.
    pub fn sample_key(key: &SampleKey) -> u64 {
        match *key {
            SampleKey::Disk { offset, len } => splitmix64(offset ^ (u64::from(len) << 40)),
            SampleKey::Object { tenant, id } => Self::object_key(tenant, id),
        }
    }

    /// Stable 64-bit routing key for a tenant object id.
    pub fn object_key(tenant: u32, id: u64) -> u64 {
        splitmix64(splitmix64(u64::from(tenant)) ^ id)
    }

    /// Routes a cache [`SampleKey`] (see [`HashRing::sample_key`]).
    pub fn route_sample(&self, key: &SampleKey) -> Option<u32> {
        self.route(Self::sample_key(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(7, 16);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
        assert_eq!(ring.successors(42).count(), 0);
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::with_nodes(7, 16, [3]);
        for k in 0..100 {
            assert_eq!(ring.route(k), Some(3));
        }
    }

    #[test]
    fn successors_yield_each_node_once() {
        let ring = HashRing::with_nodes(7, 16, 0..8);
        for k in [0u64, 1, 99, u64::MAX] {
            let order: Vec<u32> = ring.successors(k).collect();
            assert_eq!(order.len(), 8, "every member appears");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8, "no duplicates in {order:?}");
            assert_eq!(ring.route(k), Some(order[0]));
            assert_eq!(ring.replica(k, 1), Some(order[1]));
        }
    }

    #[test]
    fn placement_is_membership_pure() {
        // Build the same membership along two different paths; every key
        // must route identically.
        let a = HashRing::with_nodes(11, 32, [0, 1, 2, 3]);
        let mut b = HashRing::with_nodes(11, 32, [3, 1]);
        b.add(0);
        b.add(4);
        b.remove(4);
        b.add(2);
        for k in 0..2000u64 {
            assert_eq!(a.route(k), b.route(k));
        }
    }

    #[test]
    fn removal_only_moves_the_dead_nodes_keys() {
        let mut ring = HashRing::with_nodes(5, 64, 0..8);
        let before: Vec<Option<u32>> = (0..4000u64).map(|k| ring.route(k)).collect();
        ring.remove(3);
        for (k, prev) in before.iter().enumerate() {
            let now = ring.route(k as u64);
            if *prev != Some(3) {
                assert_eq!(now, *prev, "key {k} moved although its owner survived");
            } else {
                assert_ne!(now, Some(3));
            }
        }
    }

    #[test]
    fn load_spreads_across_nodes() {
        let ring = HashRing::with_nodes(9, 64, 0..8);
        let mut counts = [0usize; 8];
        for k in 0..8000u64 {
            counts[ring.route(k).unwrap() as usize] += 1;
        }
        for (n, &c) in counts.iter().enumerate() {
            assert!(
                (300..=2200).contains(&c),
                "node {n} owns {c}/8000 keys — vnode spread is broken: {counts:?}"
            );
        }
    }

    #[test]
    fn sample_keys_route_deterministically() {
        let ring = HashRing::with_nodes(1, 32, 0..4);
        let k = SampleKey::Object { tenant: 2, id: 77 };
        assert_eq!(ring.route_sample(&k), ring.route_sample(&k));
        assert_eq!(
            ring.route_sample(&k),
            ring.route(HashRing::object_key(2, 77))
        );
        let d = SampleKey::Disk {
            offset: 4096,
            len: 512,
        };
        assert_eq!(ring.route_sample(&d), ring.route_sample(&d));
    }

    #[test]
    fn add_remove_roundtrip_restores_routing() {
        let mut ring = HashRing::with_nodes(3, 32, 0..6);
        let before: Vec<Option<u32>> = (0..1000u64).map(|k| ring.route(k)).collect();
        assert!(ring.remove(2));
        assert!(!ring.remove(2), "double remove is a no-op");
        assert!(ring.add(2));
        assert!(!ring.add(2), "double add is a no-op");
        let after: Vec<Option<u32>> = (0..1000u64).map(|k| ring.route(k)).collect();
        assert_eq!(before, after);
    }
}

//! Property tests on the experiment layer: determinism, monotonicity and
//! internal consistency of the DES models across the parameter space.

use dlb_gpu::ModelZoo;
use dlb_workflows::calibration::{BackendKind, Calibration};
use dlb_workflows::inference::{DriveMode, InferenceParams, InferenceSim};
use dlb_workflows::training::{TrainBackend, TrainingParams, TrainingSim};
use proptest::prelude::*;

fn models() -> Vec<ModelZoo> {
    vec![ModelZoo::LeNet5, ModelZoo::AlexNet, ModelZoo::ResNet18]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn training_sim_is_deterministic(
        model_idx in 0usize..3,
        backend_idx in 0usize..4,
        n_gpus in 1u32..=2,
    ) {
        let model = models()[model_idx];
        let backend = match backend_idx {
            0 => TrainBackend::Ideal,
            1 => TrainBackend::Kind(BackendKind::CpuBased),
            2 => TrainBackend::Kind(BackendKind::Lmdb),
            _ => TrainBackend::Kind(BackendKind::DlBooster),
        };
        let run = || {
            let mut p = TrainingParams::paper(model, backend, n_gpus);
            p.iterations = 20;
            p.warmup = 5;
            TrainingSim::run(Calibration::paper(), p)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        prop_assert_eq!(a.cpu_cores.to_bits(), b.cpu_cores.to_bits());
        prop_assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn no_backend_beats_the_ideal_bound(
        model_idx in 0usize..3,
        backend_idx in 0usize..3,
        n_gpus in 1u32..=2,
    ) {
        let model = models()[model_idx];
        let kind = [BackendKind::CpuBased, BackendKind::Lmdb, BackendKind::DlBooster][backend_idx];
        let mut ideal_p = TrainingParams::paper(model, TrainBackend::Ideal, n_gpus);
        ideal_p.iterations = 24;
        ideal_p.warmup = 6;
        let mut real_p = TrainingParams::paper(model, TrainBackend::Kind(kind), n_gpus);
        real_p.iterations = 24;
        real_p.warmup = 6;
        let ideal = TrainingSim::run(Calibration::paper(), ideal_p).throughput;
        let real = TrainingSim::run(Calibration::paper(), real_p).throughput;
        prop_assert!(
            real <= ideal * 1.001,
            "{} on {} exceeded the GPU bound: {real:.0} > {ideal:.0}",
            kind.label(),
            model.name()
        );
    }

    #[test]
    fn more_cpu_workers_never_hurt(
        workers_lo in 1u32..8,
        extra in 1u32..8,
    ) {
        let mut lo = TrainingParams::paper(
            ModelZoo::AlexNet,
            TrainBackend::Kind(BackendKind::CpuBased),
            1,
        );
        lo.iterations = 20;
        lo.warmup = 5;
        lo.cpu_workers = workers_lo;
        let mut hi = lo.clone();
        hi.cpu_workers = workers_lo + extra;
        let t_lo = TrainingSim::run(Calibration::paper(), lo).throughput;
        let t_hi = TrainingSim::run(Calibration::paper(), hi).throughput;
        prop_assert!(t_hi >= t_lo * 0.999, "{t_hi:.0} < {t_lo:.0}");
    }

    #[test]
    fn inference_sim_deterministic_and_latency_positive(
        backend_idx in 0usize..3,
        bs_exp in 0u32..6,
        seed in any::<u64>(),
    ) {
        let kind = [BackendKind::CpuBased, BackendKind::NvJpeg, BackendKind::DlBooster][backend_idx];
        let bs = 1u32 << bs_exp;
        let run = || {
            let mut p = InferenceParams::paper(ModelZoo::GoogLeNet, kind, bs);
            p.batches = 60;
            p.warmup = 10;
            p.seed = seed;
            InferenceSim::run(Calibration::paper(), p)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        prop_assert!(a.throughput > 0.0);
        prop_assert!(a.p50_latency.as_nanos() > 0);
        prop_assert!(a.p99_latency >= a.p50_latency);
        prop_assert!(a.cpu_cores >= 0.0);
    }

    #[test]
    fn loaded_runs_never_exceed_offered_rate(
        util_pct in 20u32..80,
        bs_exp in 0u32..5,
    ) {
        let bs = 1u32 << bs_exp;
        let c = Calibration::paper();
        let cap = InferenceSim::saturated_throughput(
            &c, ModelZoo::GoogLeNet, BackendKind::DlBooster, bs,
        );
        let rate = cap * util_pct as f64 / 100.0;
        let mut p = InferenceParams::paper(ModelZoo::GoogLeNet, BackendKind::DlBooster, bs);
        p.mode = DriveMode::Load { rate };
        p.batches = 80;
        p.warmup = 10;
        let out = InferenceSim::run(c, p);
        // Completion rate tracks the offered rate, modulo warmup-window noise.
        prop_assert!(out.throughput <= rate * 1.35, "{:.0} vs offered {rate:.0}", out.throughput);
        prop_assert!(out.throughput >= rate * 0.5, "{:.0} vs offered {rate:.0}", out.throughput);
    }
}

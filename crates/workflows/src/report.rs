//! Table rendering and JSON export for figure reproductions.

use serde::Serialize;

/// One table row (pre-formatted cells).
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct Row {
    /// Cell strings, aligned with the report's columns.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from anything displayable.
    pub fn new<S: ToString>(cells: &[S]) -> Self {
        Row {
            cells: cells.iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// A reproduced table/figure: id, caption, columns, rows, commentary.
#[derive(Debug, Clone, Serialize)]
pub struct FigureReport {
    /// Paper identifier, e.g. "Figure 5(b)".
    pub id: String,
    /// What it shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Free-form notes (expected-vs-measured commentary).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; must match the column count.
    pub fn push_row(&mut self, row: Row) {
        assert_eq!(
            row.cells.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Appends a commentary note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in row.cells.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        let hr: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+\n";
        out.push_str(&hr);
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("| {:<width$} ", c, width = widths[i]));
            }
            line.push_str("|\n");
            line
        };
        out.push_str(&fmt_row(&self.columns));
        out.push_str(&hr);
        for row in &self.rows {
            out.push_str(&fmt_row(&row.cells));
        }
        out.push_str(&hr);
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// JSON export (for EXPERIMENTS.md regeneration and archival).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("serializable")
    }
}

/// Formats a throughput value compactly.
pub fn fmt_rate(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1}k", v / 1000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Formats a core count.
pub fn fmt_cores(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio like "1.35x".
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_everything() {
        let mut r = FigureReport::new("Figure X", "demo", &["backend", "value"]);
        r.push_row(Row::new(&["DLBooster", "123"]));
        r.push_row(Row::new(&["CPU-based", "45"]));
        r.note("expected ~120");
        let s = r.render();
        assert!(s.contains("Figure X"));
        assert!(s.contains("DLBooster"));
        assert!(s.contains("123"));
        assert!(s.contains("expected ~120"));
        // Header separator lines present.
        assert!(s.matches('+').count() >= 9);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = FigureReport::new("F", "t", &["a", "b"]);
        r.push_row(Row::new(&["only-one"]));
    }

    #[test]
    fn json_roundtrip_fields() {
        let mut r = FigureReport::new("Fig 1", "t", &["c"]);
        r.push_row(Row::new(&["v"]));
        let j = r.to_json();
        assert_eq!(j["id"], "Fig 1");
        assert_eq!(j["rows"][0]["cells"][0], "v");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_rate(123_456.0), "123.5k");
        assert_eq!(fmt_rate(2345.0), "2345");
        assert_eq!(fmt_cores(1.234), "1.23");
        assert_eq!(fmt_ratio(2.4), "2.40x");
    }
}

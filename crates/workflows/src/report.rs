//! Table rendering and JSON export for figure reproductions, plus a
//! captioned wrapper emitting pipeline telemetry alongside the figures.

use dlb_telemetry::{Json, PipelineSnapshot};

/// One table row (pre-formatted cells).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Cell strings, aligned with the report's columns.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from anything displayable.
    pub fn new<S: ToString>(cells: &[S]) -> Self {
        Row {
            cells: cells.iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// A reproduced table/figure: id, caption, columns, rows, commentary.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Paper identifier, e.g. "Figure 5(b)".
    pub id: String,
    /// What it shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Free-form notes (expected-vs-measured commentary).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; must match the column count.
    pub fn push_row(&mut self, row: Row) {
        assert_eq!(
            row.cells.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Appends a commentary note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in row.cells.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        let hr: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+\n";
        out.push_str(&hr);
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("| {:<width$} ", c, width = widths[i]));
            }
            line.push_str("|\n");
            line
        };
        out.push_str(&fmt_row(&self.columns));
        out.push_str(&hr);
        for row in &self.rows {
            out.push_str(&fmt_row(&row.cells));
        }
        out.push_str(&hr);
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// JSON export (for EXPERIMENTS.md regeneration and archival).
    pub fn to_json(&self) -> Json {
        let str_array =
            |items: &[String]| Json::Array(items.iter().map(|s| Json::from(s.as_str())).collect());
        Json::object(vec![
            ("id", Json::from(self.id.as_str())),
            ("title", Json::from(self.title.as_str())),
            ("columns", str_array(&self.columns)),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| Json::object(vec![("cells", str_array(&r.cells))]))
                        .collect(),
                ),
            ),
            ("notes", str_array(&self.notes)),
        ])
    }
}

/// A captioned telemetry section for experiment reports: wraps the
/// [`PipelineSnapshot`] captured at the end of a run and renders the same
/// text/JSON shapes as [`FigureReport`], including any conservation
/// violations so a broken run is visible in the archived output.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Which run this telemetry belongs to, e.g. "Figure 6(a) / DLBooster".
    pub id: String,
    /// What the run did.
    pub title: String,
    /// The end-of-run pipeline snapshot.
    pub snapshot: PipelineSnapshot,
}

impl TelemetryReport {
    /// Wraps a snapshot with its caption.
    pub fn new(id: &str, title: &str, snapshot: PipelineSnapshot) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            snapshot,
        }
    }

    /// Plain-text section: caption, per-stage lines, violations (if any).
    pub fn render(&self) -> String {
        let mut out = format!("== {}: {} ==\n", self.id, self.title);
        out.push_str(&self.snapshot.to_text());
        for v in self.snapshot.invariant_violations() {
            out.push_str(&format!("  VIOLATION: {v}\n"));
        }
        out
    }

    /// JSON export, with the violation list made explicit.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("id", Json::from(self.id.as_str())),
            ("title", Json::from(self.title.as_str())),
            (
                "violations",
                Json::Array(
                    self.snapshot
                        .invariant_violations()
                        .iter()
                        .map(|v| Json::from(v.as_str()))
                        .collect(),
                ),
            ),
            ("pipeline", self.snapshot.to_json()),
        ])
    }
}

/// Builds the goodput-vs-offered-load table from an overload sweep
/// (`title` names the swept configuration, e.g. backend and policy).
///
/// One row per offered-load multiplier: the admission ledger, the goodput
/// rate, the SLO-attainment fraction, and the admitted-request p99. Under
/// a working shedding policy the goodput column plateaus at the measured
/// capacity while the p99 column stays inside the SLO; with shedding
/// disabled the queue-depth high-water column grows with offered load and
/// p99 leaves the SLO behind.
pub fn goodput_vs_offered_load(
    title: &str,
    points: &[crate::inference::OverloadPoint],
) -> FigureReport {
    let mut rep = FigureReport::new(
        "Overload sweep",
        title,
        &[
            "offered",
            "req/s",
            "admitted",
            "rejected",
            "shed",
            "goodput/s",
            "slo-met",
            "p99 ms",
            "queue hw",
        ],
    );
    for p in points {
        let s = p
            .outcome
            .serving
            .as_ref()
            .expect("overload sweep points always carry a serving outcome");
        rep.push_row(Row::new(&[
            format!("{:.2}x", p.multiplier),
            fmt_rate(p.offered_rate),
            s.admitted.to_string(),
            s.rejected.to_string(),
            s.shed.to_string(),
            fmt_rate(s.goodput),
            format!("{:.1}%", s.slo_attainment() * 100.0),
            format!("{:.2}", p.outcome.p99_latency.as_secs_f64() * 1e3),
            s.snapshot.serving.queue_depth_high_water.to_string(),
        ]));
    }
    if let Some(p) = points.first() {
        rep.note(format!(
            "capacity (saturated) = {} img/s; goodput counts in-SLO completions only",
            fmt_rate(p.capacity)
        ));
    }
    rep
}

/// Formats a throughput value compactly.
pub fn fmt_rate(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1}k", v / 1000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Formats a core count.
pub fn fmt_cores(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio like "1.35x".
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_everything() {
        let mut r = FigureReport::new("Figure X", "demo", &["backend", "value"]);
        r.push_row(Row::new(&["DLBooster", "123"]));
        r.push_row(Row::new(&["CPU-based", "45"]));
        r.note("expected ~120");
        let s = r.render();
        assert!(s.contains("Figure X"));
        assert!(s.contains("DLBooster"));
        assert!(s.contains("123"));
        assert!(s.contains("expected ~120"));
        // Header separator lines present.
        assert!(s.matches('+').count() >= 9);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = FigureReport::new("F", "t", &["a", "b"]);
        r.push_row(Row::new(&["only-one"]));
    }

    #[test]
    fn json_roundtrip_fields() {
        let mut r = FigureReport::new("Fig 1", "t", &["c"]);
        r.push_row(Row::new(&["v"]));
        let j = r.to_json();
        assert_eq!(j["id"], "Fig 1");
        assert_eq!(j["rows"][0]["cells"][0], "v");
    }

    #[test]
    fn telemetry_report_renders_snapshot_and_violations() {
        use dlb_telemetry::{names, Telemetry};
        let t = Telemetry::with_defaults();
        t.registry.counter(names::READER_BATCHES_SUBMITTED).add(3);
        t.registry.counter(names::READER_BATCHES_COMPLETED).add(2);
        let r = TelemetryReport::new("Run 1", "training", t.pipeline_snapshot());
        let s = r.render();
        assert!(s.contains("Run 1"));
        assert!(s.contains("submitted=3 completed=2"));
        assert!(s.contains("VIOLATION: batch conservation"));
        let j = r.to_json();
        assert_eq!(j["id"], "Run 1");
        assert_eq!(j["pipeline"]["reader"]["batches_submitted"], 3u64);
        assert!(matches!(&j["violations"], Json::Array(v) if v.len() == 1));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_rate(123_456.0), "123.5k");
        assert_eq!(fmt_rate(2345.0), "2345");
        assert_eq!(fmt_cores(1.234), "1.23");
        assert_eq!(fmt_ratio(2.4), "2.40x");
    }
}

//! The §5.4 economic analysis.
//!
//! Inputs quoted by the paper:
//! * "a physical core (2 hyperthreads) on the cloud sells for $0.10∼0.11 per
//!   hour, or potential revenue of ∼$900 per year";
//! * "a well-optimized FPGA decoder can offer the same online data
//!   preprocessing services as 30 cores";
//! * "the saved CPU cores can still be sold to other tenants for more than
//!   $1.5/h";
//! * power: FPGA ≈25 W vs CPU ≈130 W vs GPU ≈250 W.

/// Price/power assumptions.
#[derive(Debug, Clone)]
pub struct EconomicsInputs {
    /// Cloud price of one physical core, $/hour.
    pub core_price_per_hour: f64,
    /// Decode capability of one well-optimised FPGA, in core-equivalents.
    pub fpga_core_equivalents: f64,
    /// FPGA board power, watts.
    pub fpga_watts: f64,
    /// CPU socket power, watts.
    pub cpu_watts: f64,
    /// GPU board power, watts.
    pub gpu_watts: f64,
    /// Cores per CPU socket (for per-core power proration).
    pub cores_per_socket: f64,
    /// Electricity price, $/kWh (maintenance-cost component).
    pub power_price_per_kwh: f64,
    /// FPGA board amortised cost, $/hour (purchase / 3-year life).
    pub fpga_price_per_hour: f64,
}

impl Default for EconomicsInputs {
    fn default() -> Self {
        Self::paper()
    }
}

impl EconomicsInputs {
    /// The paper's §5.4 numbers (electricity and board amortisation filled
    /// with public figures: ≈$0.10/kWh industrial power, ≈$5 k Arria-10
    /// board over 3 years).
    pub fn paper() -> Self {
        Self {
            core_price_per_hour: 0.105,
            fpga_core_equivalents: 30.0,
            fpga_watts: 25.0,
            cpu_watts: 130.0,
            gpu_watts: 250.0,
            cores_per_socket: 16.0,
            power_price_per_kwh: 0.10,
            fpga_price_per_hour: 5_000.0 / (3.0 * 365.0 * 24.0),
        }
    }
}

/// Derived economics per deployed FPGA decoder.
#[derive(Debug, Clone)]
pub struct EconomicsReport {
    /// Hourly revenue of the cores one FPGA frees (the ">$1.5/h" claim).
    pub freed_core_revenue_per_hour: f64,
    /// Yearly revenue of one core (the "∼$900/year" claim).
    pub core_revenue_per_year: f64,
    /// Hourly power cost of decoding on CPUs (prorated per-core power).
    pub cpu_decode_power_cost_per_hour: f64,
    /// Hourly power cost of the FPGA doing the same work.
    pub fpga_power_cost_per_hour: f64,
    /// Hourly FPGA amortisation.
    pub fpga_amortisation_per_hour: f64,
    /// Net hourly benefit to the provider per FPGA.
    pub net_benefit_per_hour: f64,
    /// Watts saved per FPGA deployed.
    pub watts_saved: f64,
}

/// Computes the §5.4 ledger.
pub fn analyze(inputs: &EconomicsInputs) -> EconomicsReport {
    let freed_core_revenue_per_hour = inputs.fpga_core_equivalents * inputs.core_price_per_hour;
    let core_revenue_per_year = inputs.core_price_per_hour * 24.0 * 365.0;
    let per_core_watts = inputs.cpu_watts / inputs.cores_per_socket;
    let cpu_decode_watts = per_core_watts * inputs.fpga_core_equivalents;
    let cpu_decode_power_cost_per_hour = cpu_decode_watts / 1000.0 * inputs.power_price_per_kwh;
    let fpga_power_cost_per_hour = inputs.fpga_watts / 1000.0 * inputs.power_price_per_kwh;
    let net_benefit_per_hour = freed_core_revenue_per_hour
        + (cpu_decode_power_cost_per_hour - fpga_power_cost_per_hour)
        - inputs.fpga_price_per_hour;
    EconomicsReport {
        freed_core_revenue_per_hour,
        core_revenue_per_year,
        cpu_decode_power_cost_per_hour,
        fpga_power_cost_per_hour,
        fpga_amortisation_per_hour: inputs.fpga_price_per_hour,
        net_benefit_per_hour,
        watts_saved: cpu_decode_watts - inputs.fpga_watts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claims_hold() {
        let r = analyze(&EconomicsInputs::paper());
        // ">$1.5/h" freed-core revenue.
        assert!(
            r.freed_core_revenue_per_hour > 1.5,
            "freed revenue {:.2}",
            r.freed_core_revenue_per_hour
        );
        // "∼$900 per year" per core.
        assert!(
            (850.0..1_000.0).contains(&r.core_revenue_per_year),
            "yearly {:.0}",
            r.core_revenue_per_year
        );
        // FPGA power below CPU decode power.
        assert!(r.fpga_power_cost_per_hour < r.cpu_decode_power_cost_per_hour);
        assert!(r.watts_saved > 100.0, "watts saved {:.0}", r.watts_saved);
        // The deployment pays for itself.
        assert!(
            r.net_benefit_per_hour > 1.0,
            "net {:.2}",
            r.net_benefit_per_hour
        );
    }

    #[test]
    fn break_even_against_expensive_fpgas() {
        let mut inputs = EconomicsInputs::paper();
        // Even a board 10× the price still nets positive.
        inputs.fpga_price_per_hour *= 10.0;
        assert!(analyze(&inputs).net_benefit_per_hour > 0.0);
        // An absurd price finally flips the sign (sanity of the ledger).
        inputs.fpga_price_per_hour = 100.0;
        assert!(analyze(&inputs).net_benefit_per_hour < 0.0);
    }

    #[test]
    fn power_ordering_matches_paper() {
        let i = EconomicsInputs::paper();
        assert!(i.fpga_watts < i.cpu_watts && i.cpu_watts < i.gpu_watts);
    }
}

//! The sharded-cluster discrete-event simulation (beyond the paper: the
//! ROADMAP's "scale out past one machine" regime).
//!
//! [`ClusterSim`] drives N simulated preprocessing nodes behind the
//! `dlb-cluster` shard router: every request hashes to a node through the
//! consistent-hash [`HashRing`], per-tenant [`TenantQuotas`] bound
//! cluster-wide admission at the door, stragglers get a deadline-budget
//! hedge copy on the next ring replica ([`LatencyBudget`] per node), and
//! mid-run chaos kills exercise the failover path: the dead node's queued
//! copies are classified through the [`DedupLedger`] and replayed on ring
//! successors or shed, quotas rebalance to the surviving capacity, and the
//! `cluster.*` conservation laws must still balance exactly at the end.
//!
//! Each node is a single server over a per-tenant [`WeightedFairQueue`]:
//! service time is `1/node_capacity` with lognormal jitter, so the model
//! abstracts one `DlBooster` pipeline to its calibrated rate (the
//! functional failover story on *real* pipelines lives in
//! `dlb_cluster::BoosterCluster`; this model explores 8–32 nodes in
//! virtual time, which the real pool cannot).

use crate::inference::SweepGrid;
use crate::report::{fmt_rate, fmt_ratio, FigureReport, Row};
use dlb_cluster::{
    ClusterInstruments, CompletionOutcome, CopyKind, DedupLedger, HashRing, HedgeConfig,
    LatencyBudget, LossOutcome, TenantQuotas,
};
use dlb_serving::{TenantClass, WeightedFairQueue};
use dlb_simcore::stats::LatencyStats;
use dlb_simcore::{Scheduler, SimModel, SimRng, SimTime, Simulation};
use dlb_telemetry::{PipelineSnapshot, Registry};
use dlb_trace::{stages, Tracer};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Cluster experiment parameters.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Nodes in the initial membership (ids `0..nodes`).
    pub nodes: u32,
    /// Virtual points per node on the hash ring.
    pub vnodes: u32,
    /// Ring placement seed (placement is a pure function of this plus the
    /// membership).
    pub ring_seed: u64,
    /// One node's service rate, requests/s (the abstracted pipeline
    /// capacity; the DES jitters individual service times around it).
    pub node_capacity: f64,
    /// Lognormal sigma of per-copy service time.
    pub service_sigma: f64,
    /// Offered cluster-wide arrival rate, requests/s.
    pub rate: f64,
    /// Per-request latency SLO; `deadline = arrival + slo`.
    pub slo: SimTime,
    /// Tenant classes (WFQ weight and load share, as in the serving layer).
    pub tenants: Vec<TenantClass>,
    /// Fraction of live cluster capacity the quotas hand out (the
    /// admission ceiling; < 1 keeps node queues stable under overload).
    pub quota_headroom: f64,
    /// Seconds of burst credit each tenant's bucket may bank.
    pub quota_burst_secs: f64,
    /// Hedging policy (budget clamp, multiplier, copies per request).
    pub hedge: HedgeConfig,
    /// Completions in each node's sliding p99 window.
    pub hedge_window: usize,
    /// Chaos schedule: `(when, node)` kills applied mid-run.
    pub kills: Vec<(SimTime, u32)>,
    /// Request arrivals to generate.
    pub requests: u64,
    /// Request completions to discard as warmup.
    pub warmup: u64,
    /// Hot-object universe per tenant (keys recur, CCTV-style).
    pub keys_per_tenant: u64,
    /// RNG seed (arrivals, tenant mix, service jitter).
    pub seed: u64,
}

impl ClusterParams {
    /// The canonical setup: `nodes` nodes of 500 req/s each, five
    /// equal-weight tenants, 50 ms SLO, offered load at `overload` times
    /// the aggregate capacity, quotas at 80 % headroom, one hedge copy.
    pub fn baseline(nodes: u32, overload: f64, seed: u64) -> Self {
        assert!(nodes >= 1 && overload > 0.0);
        let node_capacity = 500.0;
        Self {
            nodes,
            vnodes: 256,
            ring_seed: 0xD1B0_0057,
            node_capacity,
            service_sigma: 0.3,
            rate: f64::from(nodes) * node_capacity * overload,
            slo: SimTime::from_millis(50),
            tenants: (0..5)
                .map(|id| TenantClass {
                    id,
                    weight: 1,
                    load_share: 0.2,
                })
                .collect(),
            quota_headroom: 0.7,
            // Small burst: buckets start full, so a generous burst floods
            // the cluster with one quarter-second of capacity at t = 0 and
            // the whole short run measures that transient.
            quota_burst_secs: 0.05,
            hedge: HedgeConfig {
                multiplier: 2.0,
                min_budget: SimTime::from_millis(2),
                max_budget: SimTime::from_millis(20),
                max_hedges: 1,
            },
            hedge_window: 128,
            kills: Vec::new(),
            requests: 6_000,
            warmup: 500,
            keys_per_tenant: 128,
            seed,
        }
    }

    /// Aggregate service capacity of the initial membership, requests/s.
    pub fn capacity(&self) -> f64 {
        f64::from(self.nodes) * self.node_capacity
    }

    /// Expected run length at the offered rate.
    pub fn expected_duration(&self) -> SimTime {
        SimTime::from_secs_f64(self.requests as f64 / self.rate.max(1.0))
    }

    /// Adds a chaos kill schedule.
    pub fn with_kills(mut self, kills: Vec<(SimTime, u32)>) -> Self {
        self.kills = kills;
        self
    }

    /// Schedules `n` kills of nodes `0..n`, evenly spread through the
    /// middle of the expected run (between 30 % and 60 % of its length).
    pub fn with_spread_kills(self, n: u32) -> Self {
        assert!(n < self.nodes, "must leave at least one survivor");
        let span = self.expected_duration().as_secs_f64();
        let kills = (0..n)
            .map(|i| {
                let frac = 0.3 + 0.3 * f64::from(i) / f64::from(n.max(1));
                (SimTime::from_secs_f64(span * frac), i)
            })
            .collect();
        self.with_kills(kills)
    }
}

/// Measured cluster outcome.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Requests offered at the cluster door.
    pub offered: u64,
    /// Requests whose first copy completion won (request-level serves).
    pub completed: u64,
    /// Requests terminally shed (quota, dead ring, unreplayable loss).
    pub shed: u64,
    /// Completions inside the SLO.
    pub good: u64,
    /// In-SLO completions per second over the post-warmup window.
    pub goodput: f64,
    /// Median winning-copy latency (arrival → first completion).
    pub p50_latency: SimTime,
    /// Tail winning-copy latency.
    pub p99_latency: SimTime,
    /// Per-tenant p99 latency (ascending tenant id).
    pub tenant_p99: Vec<(u32, SimTime)>,
    /// Nodes chaos-killed during the run.
    pub killed: u32,
    /// Requests still open at the end — must be zero ("no stuck work").
    pub open_requests: usize,
    /// Virtual duration.
    pub sim_time: SimTime,
    /// End-of-run telemetry: every `cluster.*` counter, with the
    /// conservation laws checkable via
    /// [`PipelineSnapshot::invariant_violations`].
    pub snapshot: PipelineSnapshot,
}

impl ClusterOutcome {
    /// Fraction of offered requests that completed in-SLO.
    pub fn good_fraction(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.good as f64 / self.offered as f64
        }
    }
}

#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    Kickoff,
    /// A request reached the cluster door.
    Arrival,
    /// Node `node` finished the copy it was serving. Stale epochs (the
    /// node was killed after this was scheduled) are ignored — the kill
    /// already classified the copy as lost.
    NodeDone {
        /// Serving node.
        node: u32,
        /// The node's liveness epoch when service started.
        epoch: u64,
    },
    /// Request `req`'s hedge budget expired.
    HedgeDue {
        /// The request whose budget ran out.
        req: u64,
    },
    /// Chaos kill of `node`.
    Kill {
        /// The victim.
        node: u32,
    },
}

/// One copy of a request, as queued on a node.
struct InFlightCopy {
    req: u64,
    tenant: u32,
    kind: CopyKind,
    dispatched_at: SimTime,
    /// Trace ordinal of this copy (0 = untraced).
    trace: u64,
}

/// One simulated preprocessing node.
struct Node {
    alive: bool,
    /// Bumped on kill so in-flight `NodeDone` events become stale.
    epoch: u64,
    busy: bool,
    queue: WeightedFairQueue<InFlightCopy>,
    in_service: Option<InFlightCopy>,
    rng: SimRng,
    budget: LatencyBudget,
}

/// Per-request routing state the router keeps while the request is open.
struct ReqInfo {
    tenant: u32,
    key: u64,
    arrival: SimTime,
    deadline: SimTime,
    hedges: u32,
    /// Nodes that already hold (or held) a copy — hedges skip them.
    tried: Vec<u32>,
}

/// The cluster DES model.
pub struct ClusterSim {
    params: ClusterParams,
    ring: HashRing,
    quotas: TenantQuotas,
    ledger: DedupLedger,
    instruments: Arc<ClusterInstruments>,
    registry: Arc<Registry>,
    nodes: Vec<Node>,
    reqs: HashMap<u64, ReqInfo>,
    /// Cumulative tenant load shares for arrival sampling.
    tenant_cdf: Vec<(u32, f64)>,
    rng: SimRng,
    next_id: u64,
    arrivals_generated: u64,
    killed: u32,
    /// Optional span recorder: per-copy ordinals, hedge-dup links.
    tracer: Option<Arc<Tracer>>,
    /// Winning copy's trace ordinal per request, for linking late dups.
    won_trace: HashMap<u64, u64>,

    // Measurement.
    latency: LatencyStats,
    tenant_latency: BTreeMap<u32, LatencyStats>,
    wins: u64,
    good_wins: u64,
    good_after_warmup: u64,
    warmup_at: Option<SimTime>,
    done_at: SimTime,
    shed_reqs: u64,
}

impl ClusterSim {
    /// Builds the model.
    pub fn new(params: ClusterParams) -> Self {
        assert!(params.nodes >= 1, "need at least one node");
        assert!(params.requests > params.warmup, "warmup eats the run");
        assert!(params.rate > 0.0, "offered rate must be positive");
        assert!(!params.tenants.is_empty(), "need at least one tenant");
        let ring = HashRing::with_nodes(params.ring_seed, params.vnodes, 0..params.nodes);
        let weights: Vec<(u32, u32)> = params.tenants.iter().map(|t| (t.id, t.weight)).collect();
        let quotas = TenantQuotas::from_weights(
            weights.iter().copied(),
            params.capacity() * params.quota_headroom,
            params.quota_burst_secs,
        );
        let registry = Arc::new(Registry::new());
        let instruments = ClusterInstruments::new(&registry);
        instruments.set_nodes_alive(params.nodes);
        let mut rng = SimRng::new(params.seed);
        let nodes = (0..params.nodes)
            .map(|i| Node {
                alive: true,
                epoch: 0,
                busy: false,
                queue: WeightedFairQueue::new(weights.iter().copied()),
                in_service: None,
                rng: rng.fork(u64::from(i) + 1),
                budget: LatencyBudget::new(params.hedge, params.hedge_window),
            })
            .collect();
        let total_share: f64 = params.tenants.iter().map(|t| t.load_share.max(0.0)).sum();
        let mut acc = 0.0;
        let tenant_cdf = params
            .tenants
            .iter()
            .map(|t| {
                acc += t.load_share.max(0.0) / total_share.max(f64::MIN_POSITIVE);
                (t.id, acc)
            })
            .collect();
        Self {
            ring,
            quotas,
            ledger: DedupLedger::new(),
            instruments,
            registry,
            nodes,
            reqs: HashMap::new(),
            tenant_cdf,
            rng,
            next_id: 0,
            arrivals_generated: 0,
            killed: 0,
            tracer: None,
            won_trace: HashMap::new(),
            latency: LatencyStats::new(),
            tenant_latency: BTreeMap::new(),
            wins: 0,
            good_wins: 0,
            good_after_warmup: 0,
            warmup_at: None,
            done_at: SimTime::ZERO,
            shed_reqs: 0,
            params,
        }
    }

    fn sample_tenant(&mut self) -> u32 {
        let u = self.rng.uniform();
        for &(id, cum) in &self.tenant_cdf {
            if u <= cum {
                return id;
            }
        }
        self.tenant_cdf.last().map(|&(id, _)| id).unwrap_or(0)
    }

    fn schedule_next_arrival(&mut self, sched: &mut Scheduler<Ev>) {
        if self.arrivals_generated >= self.params.requests {
            return;
        }
        self.arrivals_generated += 1;
        let gap = self.rng.exponential(1.0 / self.params.rate);
        sched.after(SimTime::from_secs_f64(gap), Ev::Arrival);
    }

    /// Attaches a span recorder: every dispatched copy gets a trace
    /// ordinal, and duplicate completions are linked to the winning copy.
    /// Recording never touches the sim's RNG, so attaching a tracer
    /// cannot change the outcome.
    pub fn attach_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Puts one copy of `req` on `node`'s queue and starts service if the
    /// node is idle.
    fn dispatch(&mut self, now: SimTime, node: u32, req: u64, kind: CopyKind) {
        let info = self
            .reqs
            .get_mut(&req)
            .expect("dispatch of unknown request");
        info.tried.push(node);
        let tenant = info.tenant;
        self.ledger.dispatch(req);
        self.instruments.on_dispatch(kind);
        let trace = self.tracer.as_ref().map_or(0, |t| t.next_batch_id());
        self.nodes[node as usize].queue.push(
            tenant,
            InFlightCopy {
                req,
                tenant,
                kind,
                dispatched_at: now,
                trace,
            },
        );
    }

    /// Records a duplicate completion against the request's winning copy:
    /// a `cluster.hedge_dup` mark on the dup's ordinal, plus a link folding
    /// its spans into the winner's timeline.
    fn trace_duplicate(&self, copy: &InFlightCopy) {
        let Some(t) = &self.tracer else { return };
        if copy.trace == 0 {
            return;
        }
        t.mark(copy.trace, stages::HEDGE_DUP);
        if let Some(&winner) = self.won_trace.get(&copy.req) {
            t.link(copy.trace, winner);
        }
    }

    fn try_start(&mut self, node: u32, sched: &mut Scheduler<Ev>) {
        let median = 1.0 / self.params.node_capacity;
        let sigma = self.params.service_sigma;
        loop {
            let copy = {
                let n = &mut self.nodes[node as usize];
                if !n.alive || n.busy {
                    return;
                }
                match n.queue.pop() {
                    Some(c) => c,
                    None => return,
                }
            };
            if self.ledger.is_terminal(copy.req) {
                // Lazy cancellation: the request already won on another
                // node (or was shed) — retire this copy as a zero-cost
                // duplicate instead of burning service time on it.
                let outcome = self.ledger.complete(copy.req, copy.kind);
                debug_assert!(matches!(outcome, CompletionOutcome::Duplicate));
                self.trace_duplicate(&copy);
                self.instruments
                    .on_completion(copy.tenant, copy.kind, false, false);
                continue;
            }
            let n = &mut self.nodes[node as usize];
            n.busy = true;
            let epoch = n.epoch;
            let svc = SimTime::from_secs_f64(n.rng.lognormal(median, sigma));
            n.in_service = Some(copy);
            sched.after(svc, Ev::NodeDone { node, epoch });
            return;
        }
    }

    /// Terminally sheds `req` (quota denial, dead ring, or an
    /// unreplayable loss).
    fn shed_request(&mut self, req: u64, tenant: u32, quota: bool) {
        self.ledger.shed(req);
        self.instruments.on_shed(tenant, quota);
        self.shed_reqs += 1;
        self.reqs.remove(&req);
    }

    fn arrival(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        let tenant = self.sample_tenant();
        let req = self.next_id;
        self.next_id += 1;
        let object = self.rng.below(self.params.keys_per_tenant.max(1));
        let key = HashRing::object_key(tenant, object);
        self.instruments.on_request(tenant);
        self.ledger.admit(req);
        self.reqs.insert(
            req,
            ReqInfo {
                tenant,
                key,
                arrival: now,
                deadline: now + self.params.slo,
                hedges: 0,
                tried: Vec::new(),
            },
        );
        if !self.quotas.try_acquire(tenant, now) {
            self.shed_request(req, tenant, true);
            return;
        }
        let Some(target) = self.ring.route(key) else {
            // Every node is dead: nothing can serve this.
            self.shed_request(req, tenant, false);
            return;
        };
        self.instruments.on_admitted();
        self.dispatch(now, target, req, CopyKind::Primary);
        self.try_start(target, sched);
        if self.params.hedge.max_hedges > 0 {
            let budget = self.nodes[target as usize].budget.budget();
            sched.after(budget, Ev::HedgeDue { req });
        }
    }

    fn hedge_due(&mut self, now: SimTime, req: u64, sched: &mut Scheduler<Ev>) {
        if self.ledger.is_terminal(req) {
            return;
        }
        let Some(info) = self.reqs.get(&req) else {
            return;
        };
        if info.hedges >= self.params.hedge.max_hedges {
            return;
        }
        let key = info.key;
        let tried = info.tried.clone();
        let Some(target) = self.ring.successors(key).find(|n| !tried.contains(n)) else {
            return;
        };
        let info = self.reqs.get_mut(&req).expect("checked above");
        info.hedges += 1;
        let more = info.hedges < self.params.hedge.max_hedges;
        self.dispatch(now, target, req, CopyKind::Hedge);
        self.try_start(target, sched);
        if more {
            let budget = self.nodes[target as usize].budget.budget();
            sched.after(budget, Ev::HedgeDue { req });
        }
    }

    fn node_done(&mut self, now: SimTime, node: u32, epoch: u64, sched: &mut Scheduler<Ev>) {
        {
            let n = &mut self.nodes[node as usize];
            if n.epoch != epoch {
                // The node was killed while this copy was in service; the
                // kill handler already classified it as lost.
                return;
            }
            n.busy = false;
        }
        let copy = self.nodes[node as usize]
            .in_service
            .take()
            .expect("NodeDone with empty server");
        self.nodes[node as usize]
            .budget
            .observe(now.saturating_sub(copy.dispatched_at));
        let outcome = self.ledger.complete(copy.req, copy.kind);
        let won = matches!(outcome, CompletionOutcome::Won(_));
        if won {
            if self.tracer.is_some() && copy.trace != 0 {
                self.won_trace.insert(copy.req, copy.trace);
            }
            let info = self.reqs.remove(&copy.req).expect("won unknown request");
            let latency = now.saturating_sub(info.arrival);
            let good = now <= info.deadline;
            self.instruments
                .on_completion(copy.tenant, copy.kind, true, good);
            self.instruments.observe_latency(latency);
            self.wins += 1;
            if good {
                self.good_wins += 1;
            }
            if self.wins == self.params.warmup {
                self.warmup_at = Some(now);
            }
            if self.wins > self.params.warmup {
                // Latency percentiles and goodput are post-warmup views,
                // as in the inference DES.
                self.latency.record(latency);
                self.tenant_latency
                    .entry(copy.tenant)
                    .or_default()
                    .record(latency);
                if good {
                    self.good_after_warmup += 1;
                }
            }
            self.done_at = now;
        } else {
            self.trace_duplicate(&copy);
            self.instruments
                .on_completion(copy.tenant, copy.kind, false, false);
        }
        self.try_start(node, sched);
    }

    fn kill(&mut self, now: SimTime, node: u32, sched: &mut Scheduler<Ev>) {
        let orphans = {
            let n = &mut self.nodes[node as usize];
            if !n.alive {
                return;
            }
            n.alive = false;
            n.epoch += 1;
            n.busy = false;
            let mut orphans: Vec<InFlightCopy> = n.in_service.take().into_iter().collect();
            while let Some(c) = n.queue.pop() {
                orphans.push(c);
            }
            orphans
        };
        self.ring.remove(node);
        self.killed += 1;
        let alive = self.nodes.iter().filter(|n| n.alive).count() as u32;
        self.instruments.on_kill(alive);
        self.quotas.rebalance(alive, self.params.nodes);
        self.instruments.on_rebalance();
        for copy in orphans {
            match self.ledger.lose(copy.req) {
                LossOutcome::Replayable => {
                    let (key, deadline) = {
                        let info = self.reqs.get(&copy.req).expect("open request tracked");
                        (info.key, info.deadline)
                    };
                    // Replay on the new ring owner — unless the deadline
                    // already passed (the copy would complete useless) or
                    // no live node remains.
                    let target = if now <= deadline {
                        self.ring.route(key)
                    } else {
                        None
                    };
                    match target {
                        Some(t) => {
                            self.instruments.on_lost(true);
                            self.dispatch(now, t, copy.req, CopyKind::Replay);
                            self.try_start(t, sched);
                        }
                        None => {
                            self.instruments.on_lost(false);
                            self.shed_request(copy.req, copy.tenant, false);
                        }
                    }
                }
                LossOutcome::Covered | LossOutcome::Stale => {
                    self.instruments.on_lost(false);
                }
            }
        }
    }
}

impl SimModel for ClusterSim {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Kickoff => {
                for (at, node) in self.params.kills.clone() {
                    assert!((node as usize) < self.nodes.len(), "kill of unknown node");
                    sched.at(at, Ev::Kill { node });
                }
                self.schedule_next_arrival(sched);
            }
            Ev::Arrival => {
                self.arrival(now, sched);
                self.schedule_next_arrival(sched);
            }
            Ev::NodeDone { node, epoch } => self.node_done(now, node, epoch, sched),
            Ev::HedgeDue { req } => self.hedge_due(now, req, sched),
            Ev::Kill { node } => self.kill(now, node, sched),
        }
    }
}

impl ClusterSim {
    /// Runs one cluster experiment to quiescence.
    pub fn run(params: ClusterParams) -> ClusterOutcome {
        Self::run_with(params, None)
    }

    /// [`ClusterSim::run`] with a span recorder attached: dispatched
    /// copies get trace ordinals and hedge duplicates link to the winning
    /// copy. The outcome is bitwise identical to the untraced run.
    pub fn run_traced(params: ClusterParams, tracer: Arc<Tracer>) -> ClusterOutcome {
        Self::run_with(params, Some(tracer))
    }

    fn run_with(params: ClusterParams, tracer: Option<Arc<Tracer>>) -> ClusterOutcome {
        let mut model = ClusterSim::new(params);
        if let Some(t) = tracer {
            model.attach_tracer(t);
        }
        let mut sim = Simulation::new(model);
        sim.seed(SimTime::ZERO, Ev::Kickoff);
        let summary = sim.run_until(SimTime::from_secs(3600), 50_000_000);
        assert!(summary.events > 0, "cluster sim processed no events at all");
        let mut model = sim.into_model();
        let start = model.warmup_at.unwrap_or(SimTime::ZERO);
        let window = model.done_at.saturating_sub(start);
        let goodput = if window == SimTime::ZERO {
            0.0
        } else {
            model.good_after_warmup as f64 / window.as_secs_f64()
        };
        let snapshot = PipelineSnapshot::from_parts(model.registry.snapshot(), Vec::new());
        let tenant_p99 = model
            .tenant_latency
            .iter_mut()
            .map(|(&id, stats)| (id, stats.p99()))
            .collect();
        ClusterOutcome {
            offered: model.arrivals_generated,
            completed: model.wins,
            shed: model.shed_reqs,
            good: model.good_wins,
            goodput,
            p50_latency: model.latency.median(),
            p99_latency: model.latency.p99(),
            tenant_p99,
            killed: model.killed,
            open_requests: model.ledger.open_requests(),
            sim_time: model.done_at,
            snapshot,
        }
    }

    /// Overload sweep through the cluster: for every multiplier in the
    /// grid, offer `capacity × m` and measure goodput — the cluster
    /// analogue of `InferenceSim::overload_sweep`, with the same grid
    /// type steering both.
    pub fn overload_sweep(nodes: u32, grid: &SweepGrid, seed: u64) -> Vec<(f64, ClusterOutcome)> {
        grid.multipliers
            .iter()
            .map(|&m| {
                assert!(m > 0.0, "offered-load multiplier must be positive");
                (m, ClusterSim::run(ClusterParams::baseline(nodes, m, seed)))
            })
            .collect()
    }

    /// Degradation sweep: 3× overload on `nodes` nodes, killing
    /// `0..=max_kills` of them mid-run. Returns one outcome per kill
    /// count; the zero-kill run is the goodput-retention baseline.
    pub fn degradation_sweep(nodes: u32, max_kills: u32, seed: u64) -> Vec<ClusterOutcome> {
        assert!(max_kills < nodes, "must leave at least one survivor");
        (0..=max_kills)
            .map(|k| {
                ClusterSim::run(ClusterParams::baseline(nodes, 3.0, seed).with_spread_kills(k))
            })
            .collect()
    }
}

/// The goodput/p99-vs-killed-nodes figure: an 8-node cluster at 3×
/// overload, with 0–3 nodes chaos-killed mid-run. Goodput retention
/// should track surviving capacity (≈ `1 − killed/8`), and p99 must stay
/// inside the SLO — quota rebalancing sheds the lost capacity's load at
/// the door instead of letting queues blow up.
pub fn cluster_degradation_figure() -> FigureReport {
    let nodes = 8;
    let outcomes = ClusterSim::degradation_sweep(nodes, 3, 11);
    let baseline = outcomes[0].goodput.max(1.0);
    let slo = ClusterParams::baseline(nodes, 3.0, 11).slo;
    let mut rep = FigureReport::new(
        "Cluster degradation",
        "8-node cluster at 3x overload: goodput and p99 vs chaos-killed nodes",
        &[
            "killed",
            "goodput (req/s)",
            "retention",
            "p99 (ms)",
            "shed",
            "hedge wins",
            "replays",
        ],
    );
    for o in &outcomes {
        let c = &o.snapshot.cluster;
        rep.push_row(Row::new(&[
            o.killed.to_string(),
            fmt_rate(o.goodput),
            fmt_ratio(o.goodput / baseline),
            format!("{:.2}", o.p99_latency.as_millis_f64()),
            c.shed.to_string(),
            c.hedge_wins.to_string(),
            c.replays.to_string(),
        ]));
    }
    rep.note(format!(
        "SLO {} ms; retention should track surviving capacity (7/8 = 0.875 at one kill)",
        slo.as_millis_f64()
    ));
    rep.note("conservation: requests + hedge_dups == served + replayed + shed at quiescence");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_cluster_serves_everything_in_slo() {
        let mut p = ClusterParams::baseline(8, 0.5, 3);
        p.requests = 2_000;
        p.warmup = 200;
        let o = ClusterSim::run(p);
        assert_eq!(o.open_requests, 0, "stuck requests");
        assert_eq!(o.completed + o.shed, o.offered);
        assert!(o.shed == 0, "underload must not shed (shed {})", o.shed);
        assert!(
            o.good_fraction() > 0.99,
            "underload good fraction {:.3}",
            o.good_fraction()
        );
        assert!(o.snapshot.invariant_violations().is_empty());
    }

    #[test]
    fn overload_sheds_at_the_quota_door_not_in_queues() {
        let mut p = ClusterParams::baseline(8, 3.0, 5);
        p.requests = 4_000;
        p.warmup = 300;
        let o = ClusterSim::run(p);
        assert_eq!(o.open_requests, 0);
        let c = &o.snapshot.cluster;
        assert!(c.quota_shed > 0, "3x overload must trip the quotas");
        assert_eq!(c.quota_shed, c.shed, "all shedding happens at the door");
        // Quota headroom keeps queues short: p99 inside the SLO.
        assert!(
            o.p99_latency < SimTime::from_millis(50),
            "p99 {} blew the SLO",
            o.p99_latency
        );
        assert!(o.snapshot.invariant_violations().is_empty());
    }

    #[test]
    fn kill_preserves_conservation_and_bounds_degradation() {
        let base = ClusterSim::run(ClusterParams::baseline(8, 3.0, 9));
        let killed = ClusterSim::run(ClusterParams::baseline(8, 3.0, 9).with_spread_kills(1));
        assert_eq!(killed.killed, 1);
        assert_eq!(killed.open_requests, 0, "kill stranded requests");
        let c = &killed.snapshot.cluster;
        assert_eq!(c.kills, 1);
        assert!(c.rebalances >= 1);
        assert!(
            killed.snapshot.invariant_violations().is_empty(),
            "{:?}",
            killed.snapshot.invariant_violations()
        );
        let retention = killed.goodput / base.goodput.max(1.0);
        assert!(
            retention >= 0.85,
            "goodput retention {retention:.3} (base {:.0}, killed {:.0})",
            base.goodput,
            killed.goodput
        );
    }

    #[test]
    fn killing_every_node_sheds_the_tail_cleanly() {
        let mut p = ClusterParams::baseline(3, 1.0, 21);
        p.requests = 1_500;
        p.warmup = 100;
        let span = p.expected_duration().as_secs_f64();
        p = p.with_kills(
            (0..3)
                .map(|i| (SimTime::from_secs_f64(span * 0.4), i))
                .collect(),
        );
        let o = ClusterSim::run(p);
        assert_eq!(o.killed, 3);
        assert_eq!(o.open_requests, 0, "dead cluster stranded requests");
        assert_eq!(o.completed + o.shed, o.offered);
        assert!(o.shed > 0, "arrivals after total death must shed");
        assert!(
            o.snapshot.invariant_violations().is_empty(),
            "{:?}",
            o.snapshot.invariant_violations()
        );
    }

    #[test]
    fn replay_preserves_work_when_capacity_allows() {
        // Kill while queues hold work but the ring survives: lost copies
        // must be replayed (or covered), never silently dropped.
        let killed = ClusterSim::run(ClusterParams::baseline(8, 3.0, 17).with_spread_kills(2));
        let c = &killed.snapshot.cluster;
        assert!(c.lost > 0, "kills with queued work must lose copies");
        assert_eq!(c.lost, c.replays + c.lost_unreplayed);
        assert!(c.replayed <= c.replays, "replay completions exceed replays");
        assert!(killed.snapshot.invariant_violations().is_empty());
    }

    #[test]
    fn seed_replay_is_bitwise_identical() {
        let a = ClusterSim::run(ClusterParams::baseline(8, 2.0, 42).with_spread_kills(1));
        let b = ClusterSim::run(ClusterParams::baseline(8, 2.0, 42).with_spread_kills(1));
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.good, b.good);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.snapshot.cluster.dispatches, b.snapshot.cluster.dispatches);
    }

    #[test]
    fn degradation_figure_has_four_rows() {
        let rep = cluster_degradation_figure();
        assert_eq!(rep.rows.len(), 4);
        // Retention column is monotone-ish downward: last ≤ first.
        let first: f64 = rep.rows[0].cells[2].trim_end_matches('x').parse().unwrap();
        let last: f64 = rep.rows[3].cells[2].trim_end_matches('x').parse().unwrap();
        assert!(last <= first + 1e-9, "retention rose with kills?");
    }
}

//! Degraded-mode experiment: what a training run loses when the FPGA
//! decode plane wedges mid-run and DLBooster fails over to the CPU
//! backend.
//!
//! The paper only evaluates the healthy pipeline; operators of the
//! real system care just as much about the failure envelope. This
//! driver runs the *functional* pipeline (real decode, no DES) with a
//! seeded chaos plan that stalls FPGA lanes far past the failover
//! deadline, lets the [`FailoverBackend`] retire the primary and finish
//! on CPU, and reports the batch split, the fault ledger and the
//! conservation verdict as a figure-style table.

use crate::report::{FigureReport, Row};
use dlb_backends::{CpuBackend, CpuBackendConfig, FailoverBackend, FailoverConfig};
use dlb_chaos::{FaultPlan, Stage, StageSpec};
use dlb_fpga::{DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice};
use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};
use dlb_telemetry::{ChaosMetrics, PipelineSnapshot, Telemetry};
use dlbooster_core::{
    BackendError, CombinedResolver, DataCollector, DlBooster, DlBoosterConfig, FpgaChannel,
    PreprocessBackend,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for one degraded-mode run.
#[derive(Debug, Clone)]
pub struct ChaosParams {
    /// Chaos seed (drives which lane jobs stall).
    pub seed: u64,
    /// Batches the run must deliver in total.
    pub total_batches: u64,
    /// Images per batch.
    pub batch_size: usize,
    /// Square decode target edge.
    pub side: u16,
    /// Probability a lane job wedges.
    pub stall_rate: f64,
    /// How long a wedged lane stalls (released early by failover).
    pub stall: Duration,
    /// Slot starvation deadline before failover triggers.
    pub deadline: Duration,
    /// CPU fallback decode workers.
    pub fallback_workers: usize,
}

impl Default for ChaosParams {
    fn default() -> Self {
        Self {
            seed: 11,
            total_batches: 12,
            batch_size: 4,
            side: 32,
            stall_rate: 0.5,
            stall: Duration::from_secs(30),
            deadline: Duration::from_millis(150),
            fallback_workers: 2,
        }
    }
}

/// The outcome of one degraded-mode run.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Chaos seed used.
    pub seed: u64,
    /// Batches the FPGA primary delivered before it was retired.
    pub from_primary: u64,
    /// Batches the CPU fallback delivered after the swap.
    pub from_fallback: u64,
    /// Whether failover actually triggered.
    pub failed_over: bool,
    /// Wall-clock for the whole run.
    pub wall: Duration,
    /// The chaos/retry ledger (faults injected, failovers performed).
    pub chaos: ChaosMetrics,
    /// Full end-of-run snapshot (conservation checks, per-stage detail).
    pub snapshot: PipelineSnapshot,
}

impl ChaosOutcome {
    /// Total batches delivered across both planes.
    pub fn delivered(&self) -> u64 {
        self.from_primary + self.from_fallback
    }
}

/// Runs the functional pipeline under a wedging FPGA chaos plan with
/// FPGA→CPU failover armed, and returns the accounting.
pub fn run_degraded_training(params: &ChaosParams) -> Result<ChaosOutcome, String> {
    let telemetry = Telemetry::with_defaults();
    let n_images = params.total_batches as usize * params.batch_size;
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(n_images, 77), &disk)
        .map_err(|e| e.to_string())?;
    let records = dataset.records.clone();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .map_err(|e| e.to_string())?;
    let resolver = Arc::new(CombinedResolver::disk_only(Arc::clone(&disk)));
    let engine =
        DecoderEngine::start_with_telemetry(device, Arc::clone(&resolver) as _, &telemetry)
            .map_err(|e| e.to_string())?;

    let mut plan = FaultPlan::disabled();
    plan.seed = params.seed;
    plan.fpga = StageSpec::rate(params.stall_rate).with_delay(params.stall);
    let cancel = plan.cancel_token();
    if let Some(inj) = plan.injector(Stage::Fpga, &telemetry) {
        engine.attach_chaos(inj);
    }

    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(
        1,
        params.batch_size,
        (params.side, params.side),
        n_images,
        Some(params.total_batches),
    );
    config.cache_bytes = 0;
    let primary = Arc::new(DlBooster::start_with_telemetry(
        collector,
        channel,
        config,
        Arc::clone(&telemetry),
    )?);

    let t2 = Arc::clone(&telemetry);
    let (batch_size, side, workers) = (params.batch_size, params.side, params.fallback_workers);
    let backend = FailoverBackend::new(
        Arc::clone(&primary),
        Box::new(move |remaining| {
            let collector = Arc::new(DataCollector::load_from_disk(&records, 0));
            CpuBackend::start_with_telemetry(
                collector,
                Arc::new(CombinedResolver::disk_only(disk)),
                CpuBackendConfig {
                    n_engines: 1,
                    batch_size,
                    target_w: side as u32,
                    target_h: side as u32,
                    workers,
                    max_batches: Some(remaining),
                    sample_cache: None,
                },
                t2,
            )
            .map(|b| Box::new(b) as Box<dyn PreprocessBackend>)
        }),
        FailoverConfig {
            total_batches: params.total_batches,
            deadline: params.deadline,
            chaos_cancel: Some(cancel),
        },
        &telemetry,
    );

    let started = Instant::now();
    let mut from_primary = 0u64;
    let mut from_fallback = 0u64;
    loop {
        match backend.next_batch(0) {
            Ok(batch) => {
                if primary.pool().owns(&batch.unit) {
                    from_primary += 1;
                } else {
                    from_fallback += 1;
                }
                backend.recycle(batch.unit);
            }
            Err(BackendError::Exhausted) => break,
            Err(e) => return Err(format!("degraded run failed: {e}")),
        }
    }
    let wall = started.elapsed();
    let failed_over = backend.failed_over();
    backend.shutdown();
    drop(backend);
    drop(primary); // join pipeline threads so the snapshot is final

    let snapshot = telemetry.pipeline_snapshot();
    Ok(ChaosOutcome {
        seed: params.seed,
        from_primary,
        from_fallback,
        failed_over,
        wall,
        chaos: snapshot.chaos.clone(),
        snapshot,
    })
}

/// The degraded-mode figure: one row per run showing how the batch
/// budget split across the FPGA primary and the CPU fallback, the fault
/// ledger, and whether conservation held.
pub fn degraded_mode_figure(outcomes: &[ChaosOutcome]) -> FigureReport {
    let mut rep = FigureReport::new(
        "Degraded mode",
        "FPGA wedge -> CPU failover: batch budget split under chaos",
        &[
            "seed",
            "total",
            "fpga",
            "cpu",
            "failovers",
            "faults",
            "wall ms",
            "conserved",
        ],
    );
    for o in outcomes {
        rep.push_row(Row::new(&[
            o.seed.to_string(),
            o.delivered().to_string(),
            o.from_primary.to_string(),
            o.from_fallback.to_string(),
            o.chaos.failovers.to_string(),
            o.chaos.faults_total.to_string(),
            format!("{:.0}", o.wall.as_secs_f64() * 1e3),
            if o.snapshot.invariant_violations().is_empty() {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]));
    }
    rep.note(
        "every batch is delivered exactly once: fpga + cpu always equals the \
         configured total, whatever the seed wedges",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_run_completes_budget_and_reports() {
        let params = ChaosParams {
            total_batches: 8,
            ..ChaosParams::default()
        };
        let out = run_degraded_training(&params).unwrap();
        assert_eq!(out.delivered(), 8, "exact budget, no loss, no dup");
        assert!(out.failed_over, "a 30s stall at rate 0.5 must wedge");
        assert_eq!(out.chaos.failovers, 1);
        assert!(out.from_fallback > 0);
        assert!(
            out.snapshot.invariant_violations().is_empty(),
            "violations: {:?}",
            out.snapshot.invariant_violations()
        );

        let fig = degraded_mode_figure(std::slice::from_ref(&out));
        let text = fig.render();
        assert!(text.contains("Degraded mode"));
        assert!(text.contains("yes"), "conservation column must say yes");
        assert_eq!(fig.to_json()["rows"][0]["cells"][1], "8");
    }

    #[test]
    fn healthy_run_never_fails_over() {
        let params = ChaosParams {
            total_batches: 4,
            stall_rate: 0.0,
            deadline: Duration::from_secs(10),
            ..ChaosParams::default()
        };
        let out = run_degraded_training(&params).unwrap();
        assert_eq!(out.delivered(), 4);
        assert!(!out.failed_over);
        assert_eq!(out.from_fallback, 0);
        assert_eq!(out.chaos.failovers, 0);
    }
}

//! The offline-training discrete-event simulation (Figs. 2, 5, 6).
//!
//! Topology per the paper's testbed: `n_gpus` P100 solvers run synchronous
//! data-parallel SGD; a preprocessing backend feeds per-GPU prefetch queues;
//! each iteration is `copy → forward → backward → allreduce (barrier) →
//! update`. Throughput is measured over a warmup-trimmed window; CPU cost is
//! busy-time accounting per activity (the Fig. 6(d) decomposition).
//!
//! Backend service models:
//! * **CPU-based(w workers)** — an aggregate decode pipeline of rate
//!   `w / cpu_decode_time` images/s shared by all GPUs.
//! * **LMDB** — per-GPU readers on a shared DB; per-reader bandwidth decays
//!   with reader count (the ≈30 % 2-GPU loss of Fig. 5b).
//! * **DLBooster** — a singleton FPGA pipeline served batch-by-batch from
//!   the calibrated stage model.
//! * **Synthetic** (= "Performance Upper Boundary" of Fig. 2a) — zero-cost
//!   input.
//!
//! The §3.1 hybrid cache applies to every backend the way §5.2 describes:
//! once the decoded dataset fits DRAM (MNIST), epochs ≥ 1 are memory reads —
//! but the *baselines* still pay the per-datum small-copy overhead, while
//! DLBooster moves one batch block (the ≈20 % LeNet gap).

use crate::calibration::{BackendKind, Calibration, Workload};
use dlb_gpu::{GpuTimingModel, ModelZoo, Precision};
use dlb_simcore::stats::BusyTracker;
use dlb_simcore::{Scheduler, SimModel, SimTime, Simulation};

/// Input backend for the training sim (paper backends + the ideal bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainBackend {
    /// One of the comparable backends.
    Kind(BackendKind),
    /// Infinite-speed input: the GPU performance upper boundary (Fig. 2a).
    Ideal,
}

/// Training experiment parameters.
#[derive(Debug, Clone)]
pub struct TrainingParams {
    /// Network to train.
    pub model: ModelZoo,
    /// Dataset statistics.
    pub workload: Workload,
    /// Backend under test.
    pub backend: TrainBackend,
    /// Data-parallel GPUs.
    pub n_gpus: u32,
    /// Images per GPU per iteration.
    pub batch_size: u32,
    /// Decode workers for the CPU backend (ignored otherwise).
    pub cpu_workers: u32,
    /// Iterations per GPU to simulate.
    pub iterations: u32,
    /// Iterations to discard as warmup.
    pub warmup: u32,
}

impl TrainingParams {
    /// The paper's configuration for `model` (batch sizes from Figs. 5a–c).
    pub fn paper(model: ModelZoo, backend: TrainBackend, n_gpus: u32) -> Self {
        let workload = match model {
            ModelZoo::LeNet5 => Workload::Mnist,
            _ => Workload::Ilsvrc,
        };
        Self {
            model,
            workload,
            backend,
            n_gpus,
            batch_size: model.paper_batch_size(),
            cpu_workers: 12 * n_gpus,
            iterations: 60,
            warmup: 10,
        }
    }
}

/// Measured outcome of one training run.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// Aggregate steady-state throughput, images/s.
    pub throughput: f64,
    /// Total CPU core-equivalents.
    pub cpu_cores: f64,
    /// Breakdown: (preprocessing, transform, launch, update) cores.
    pub cpu_breakdown: (f64, f64, f64, f64),
    /// Virtual time simulated.
    pub sim_time: SimTime,
    /// Iterations measured (after warmup).
    pub iterations_measured: u64,
}

/// Per-GPU solver phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    WaitingBatch,
    Copying,
    Computing,
    AtBarrier,
    Updating,
}

/// DES events.
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Simulation start: prime every GPU's prefetch pipeline.
    Kickoff,
    /// Backend finished producing a batch for `gpu`.
    BatchReady { gpu: u32 },
    /// H2D copy done.
    CopyDone { gpu: u32 },
    /// Forward+backward done.
    ComputeDone { gpu: u32 },
    /// Allreduce for iteration round `round` done (all GPUs).
    AllreduceDone { round: u32 },
    /// Weight update done.
    UpdateDone { gpu: u32 },
}

/// The training simulation model.
pub struct TrainingSim {
    cal: Calibration,
    params: TrainingParams,
    timing: GpuTimingModel,

    // --- backend production state ---
    /// Next time the shared backend pipeline is free.
    backend_free: SimTime,
    /// Next free time of each GPU's private reader (LMDB mode).
    gpu_reader_free: Vec<SimTime>,
    /// Prefetched batches available per GPU.
    ready: Vec<u32>,
    /// Outstanding productions per GPU.
    producing: Vec<u32>,
    /// Images produced so far (epoch/caching state).
    images_produced: u64,

    // --- solver state ---
    phase: Vec<Phase>,
    iter_done: Vec<u32>,
    /// Barrier arrivals for the current round per round index.
    barrier_count: Vec<u32>,

    // --- measurement ---
    preproc: BusyTracker,
    transform: BusyTracker,
    launch: BusyTracker,
    update: BusyTracker,
    /// Time each GPU crossed the warmup threshold.
    warmup_done_at: Vec<Option<SimTime>>,
    finished_at: Vec<Option<SimTime>>,
}

impl TrainingSim {
    /// Builds the model.
    pub fn new(cal: Calibration, params: TrainingParams) -> Self {
        assert!(params.n_gpus >= 1 && params.batch_size >= 1);
        assert!(params.warmup < params.iterations);
        let precision = Precision::Fp32; // training experiments are fp32
        let timing = GpuTimingModel::new(&cal.train_gpu, &params.model.model(), precision);
        let n = params.n_gpus as usize;
        Self {
            cal,
            timing,
            backend_free: SimTime::ZERO,
            gpu_reader_free: vec![SimTime::ZERO; n],
            ready: vec![0; n],
            producing: vec![0; n],
            images_produced: 0,
            phase: vec![Phase::WaitingBatch; n],
            iter_done: vec![0; n],
            barrier_count: vec![0; params.iterations as usize + 1],
            preproc: BusyTracker::new(),
            transform: BusyTracker::new(),
            launch: BusyTracker::new(),
            update: BusyTracker::new(),
            warmup_done_at: vec![None; n],
            finished_at: vec![None; n],
            params,
        }
    }

    /// True when the decoded dataset is DRAM-resident. The paper's numbers
    /// are steady-state over many epochs, where the first (decode) epoch is
    /// amortised away — so a dataset that fits the cache is modelled as
    /// cached from the start (§5.2: MNIST "can be cached in memory after
    /// the first epoch").
    fn cache_active(&self) -> bool {
        self.params.workload.fits_cache(self.cal.dram_cache_bytes)
    }

    /// Service time for producing one batch for one GPU, plus the CPU busy
    /// time it charges to preprocessing.
    fn batch_service(&self) -> (SimTime, SimTime) {
        let bs = self.params.batch_size as u64;
        let decoded = bs * self.params.workload.decoded_bytes();
        if self.cache_active() {
            // Memory replay: one block copy for everyone. (The baselines'
            // per-datum penalty is charged on the H2D copy path, where
            // Caffe actually pays it — see `maybe_start_iteration`.)
            let block =
                SimTime::from_secs_f64(decoded as f64 / self.cal.memcpy_bytes_per_sec_per_core);
            return match self.params.backend {
                TrainBackend::Ideal => (SimTime::ZERO, SimTime::ZERO),
                TrainBackend::Kind(_) => (block, block),
            };
        }
        match self.params.backend {
            TrainBackend::Ideal => (SimTime::ZERO, SimTime::ZERO),
            TrainBackend::Kind(BackendKind::CpuBased) => {
                let per_image = self.cal.cpu_decode_time(&self.params.workload.image());
                let workers = self.params.cpu_workers.max(1) as f64;
                let service = SimTime::from_secs_f64(per_image.as_secs_f64() * bs as f64 / workers);
                // All `workers` cores are busy for the service duration.
                let busy = SimTime::from_secs_f64(service.as_secs_f64() * workers);
                (service, busy)
            }
            TrainBackend::Kind(BackendKind::Lmdb) => {
                let t = self.cal.lmdb.batch_read_time(decoded, self.params.n_gpus)
                    + SimTime::from_nanos(self.cal.per_datum_copy_overhead.as_nanos() * bs);
                (t, t)
            }
            TrainBackend::Kind(BackendKind::DlBooster) => {
                let images = vec![self.params.workload.image(); bs as usize];
                let service = self.cal.fpga.batch_service_time(&images);
                let host =
                    SimTime::from_nanos(self.cal.dlb_host_per_image_training.as_nanos() * bs);
                (service, host)
            }
            TrainBackend::Kind(BackendKind::NvJpeg) => {
                let img = self.params.workload.image();
                let t = self
                    .cal
                    .nvjpeg
                    .decode_time(bs as u32, img.src_width, img.src_height);
                (t, self.cal.nvjpeg.launch_cpu_time(bs as u32))
            }
        }
    }

    /// Schedules production of one batch for `gpu` if prefetch allows.
    fn maybe_produce(&mut self, gpu: u32, sched: &mut Scheduler<Ev>) {
        const PREFETCH: u32 = 2;
        let g = gpu as usize;
        if self.ready[g] + self.producing[g] >= PREFETCH {
            return;
        }
        if self.iter_done[g] + self.ready[g] + self.producing[g] >= self.params.iterations {
            return; // enough batches for the whole run
        }
        let (service, busy) = self.batch_service();
        // The CPU worker pool, the FPGA pipeline and the nvJPEG engine are
        // each a single shared pipeline (their parallelism is already in the
        // service-rate model); LMDB runs one reader per GPU whose bandwidth
        // the contention model has degraded.
        let done_at = match self.params.backend {
            TrainBackend::Ideal => sched.now() + service,
            TrainBackend::Kind(BackendKind::Lmdb) => {
                let start = sched.now().max(self.gpu_reader_free[g]);
                self.gpu_reader_free[g] = start + service;
                self.gpu_reader_free[g]
            }
            TrainBackend::Kind(_) => {
                let start = sched.now().max(self.backend_free);
                self.backend_free = start + service;
                self.backend_free
            }
        };
        self.preproc.add(busy);
        self.producing[g] += 1;
        self.images_produced += self.params.batch_size as u64;
        sched.at(done_at, Ev::BatchReady { gpu });
    }

    /// Starts the copy phase if a batch is ready and the solver idle.
    fn maybe_start_iteration(&mut self, gpu: u32, sched: &mut Scheduler<Ev>) {
        let g = gpu as usize;
        if self.phase[g] != Phase::WaitingBatch
            || self.ready[g] == 0
            || self.iter_done[g] >= self.params.iterations
        {
            return;
        }
        self.ready[g] -= 1;
        self.phase[g] = Phase::Copying;
        let bytes = self.params.batch_size as u64 * self.params.workload.decoded_bytes();
        let mut copy = SimTime::from_secs_f64(bytes as f64 / self.cal.train_gpu.pcie_bytes_per_sec);
        // §5.2: "LMDB and CPU-based backend copy each datum to GPU in small
        // pieces, which results in ∼20% performance downgrades" (visible on
        // LeNet-5, where iterations are sub-millisecond). DLBooster moves
        // the whole batch block in one transfer.
        if !matches!(
            self.params.backend,
            TrainBackend::Ideal | TrainBackend::Kind(BackendKind::DlBooster)
        ) {
            copy += SimTime::from_nanos(
                self.cal.per_datum_copy_overhead.as_nanos() * self.params.batch_size as u64,
            );
        }
        self.transform.add(
            self.timing
                .transform_cpu_time(self.params.batch_size, self.params.workload.decoded_bytes()),
        );
        sched.after(copy, Ev::CopyDone { gpu });
        // Refill the prefetch slot we just consumed.
        self.maybe_produce(gpu, sched);
    }

    fn all_finished(&self) -> bool {
        self.finished_at.iter().all(|t| t.is_some())
    }
}

impl SimModel for TrainingSim {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Kickoff => {
                for g in 0..self.params.n_gpus {
                    self.maybe_produce(g, sched);
                    self.maybe_produce(g, sched);
                }
            }
            Ev::BatchReady { gpu } => {
                let g = gpu as usize;
                self.producing[g] -= 1;
                self.ready[g] += 1;
                self.maybe_start_iteration(gpu, sched);
            }
            Ev::CopyDone { gpu } => {
                let g = gpu as usize;
                debug_assert_eq!(self.phase[g], Phase::Copying);
                self.phase[g] = Phase::Computing;
                let fwd = self.timing.forward_time(self.params.batch_size);
                let bwd = self.timing.backward_time(self.params.batch_size);
                self.launch
                    .add(self.timing.launch_cpu_time(fwd + bwd, true));
                sched.after(fwd + bwd, Ev::ComputeDone { gpu });
            }
            Ev::ComputeDone { gpu } => {
                let g = gpu as usize;
                self.phase[g] = Phase::AtBarrier;
                let round = self.iter_done[g];
                self.barrier_count[round as usize] += 1;
                if self.barrier_count[round as usize] == self.params.n_gpus {
                    let ar = self.timing.allreduce_time(self.params.n_gpus);
                    sched.after(ar, Ev::AllreduceDone { round });
                }
            }
            Ev::AllreduceDone { round } => {
                // Every GPU at this barrier proceeds to update.
                let upd = self.timing.update_time();
                for g in 0..self.params.n_gpus {
                    if self.phase[g as usize] == Phase::AtBarrier
                        && self.iter_done[g as usize] == round
                    {
                        self.phase[g as usize] = Phase::Updating;
                        self.update
                            .add(self.timing.update_cpu_time(self.params.batch_size));
                        sched.after(upd, Ev::UpdateDone { gpu: g });
                    }
                }
            }
            Ev::UpdateDone { gpu } => {
                let g = gpu as usize;
                self.phase[g] = Phase::WaitingBatch;
                self.iter_done[g] += 1;
                if self.iter_done[g] == self.params.warmup {
                    self.warmup_done_at[g] = Some(now);
                }
                if self.iter_done[g] >= self.params.iterations {
                    self.finished_at[g] = Some(now);
                } else {
                    self.maybe_start_iteration(gpu, sched);
                }
            }
        }
    }
}

impl TrainingSim {
    /// Runs the experiment to completion and reports.
    pub fn run(cal: Calibration, params: TrainingParams) -> TrainingOutcome {
        let n = params.n_gpus;
        let warmup = params.warmup;
        let iterations = params.iterations;
        let batch = params.batch_size;
        let mut sim = Simulation::new(TrainingSim::new(cal, params));
        sim.seed(SimTime::ZERO, Ev::Kickoff);
        let summary = sim.run_to_completion();
        let model = sim.into_model();
        assert!(model.all_finished(), "training sim stalled");

        let end = summary.end_time;
        // Measurement window: from the latest warmup crossing to the end.
        let window_start = model
            .warmup_done_at
            .iter()
            .map(|t| t.expect("warmup crossed"))
            .max()
            .unwrap_or(SimTime::ZERO);
        let window = end.saturating_sub(window_start);
        let measured_iters = (iterations - warmup) as u64 * n as u64;
        let images = measured_iters * batch as u64;
        let throughput = if window == SimTime::ZERO {
            0.0
        } else {
            images as f64 / window.as_secs_f64()
        };
        let elapsed = end;
        let breakdown = (
            model.preproc.cores(elapsed),
            model.transform.cores(elapsed),
            model.launch.cores(elapsed),
            model.update.cores(elapsed),
        );
        TrainingOutcome {
            throughput,
            cpu_cores: breakdown.0 + breakdown.1 + breakdown.2 + breakdown.3,
            cpu_breakdown: breakdown,
            sim_time: end,
            iterations_measured: measured_iters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(model: ModelZoo, backend: TrainBackend, n_gpus: u32) -> TrainingOutcome {
        TrainingSim::run(
            Calibration::paper(),
            TrainingParams::paper(model, backend, n_gpus),
        )
    }

    #[test]
    fn ideal_bound_matches_timing_model() {
        let out = run(ModelZoo::AlexNet, TrainBackend::Ideal, 1);
        // Fig. 2(b) "Ideal" ≈ 2 000–2 500 img/s band for our calibration.
        assert!(
            (1_500.0..3_200.0).contains(&out.throughput),
            "AlexNet ideal bound {:.0}",
            out.throughput
        );
    }

    #[test]
    fn dlbooster_tracks_ideal_closely() {
        let ideal = run(ModelZoo::AlexNet, TrainBackend::Ideal, 2).throughput;
        let dlb = run(
            ModelZoo::AlexNet,
            TrainBackend::Kind(BackendKind::DlBooster),
            2,
        )
        .throughput;
        assert!(
            dlb > 0.9 * ideal,
            "Fig. 5b: DLBooster ≈ GPU bound; got {dlb:.0} vs ideal {ideal:.0}"
        );
    }

    #[test]
    fn lmdb_loses_about_30pct_at_two_gpus() {
        let one = run(ModelZoo::AlexNet, TrainBackend::Kind(BackendKind::Lmdb), 1).throughput;
        let two = run(ModelZoo::AlexNet, TrainBackend::Kind(BackendKind::Lmdb), 2).throughput;
        let scaling = two / one;
        // Perfect scaling would be 2.0; Fig. 5(b) shows ≈1.4 (−30 %).
        assert!(
            (1.15..1.75).contains(&scaling),
            "LMDB 2-GPU scaling {scaling:.2}"
        );
    }

    #[test]
    fn cpu_backend_burns_many_cores_dlbooster_few() {
        let cpu = run(
            ModelZoo::AlexNet,
            TrainBackend::Kind(BackendKind::CpuBased),
            1,
        );
        let dlb = run(
            ModelZoo::AlexNet,
            TrainBackend::Kind(BackendKind::DlBooster),
            1,
        );
        // Fig. 6(b): ≈12 cores vs ≈1.5. Both backends share the framework
        // overhead (launch/transform/update ≈ 1.3 cores); what separates
        // them is the decode burn.
        assert!(
            cpu.cpu_cores > 5.0,
            "CPU backend cores {:.1}",
            cpu.cpu_cores
        );
        assert!(dlb.cpu_cores < 3.0, "DLBooster cores {:.1}", dlb.cpu_cores);
        assert!(
            cpu.cpu_cores > 2.5 * dlb.cpu_cores,
            "{:.1} vs {:.1}",
            cpu.cpu_cores,
            dlb.cpu_cores
        );
        // The decode component itself is >10x apart (the paper's 1/10 CPU
        // headline is about preprocessing cores).
        let (cpu_pre, ..) = cpu.cpu_breakdown;
        let (dlb_pre, ..) = dlb.cpu_breakdown;
        assert!(
            cpu_pre > 5.0 * dlb_pre,
            "preprocessing cores {cpu_pre:.2} vs {dlb_pre:.2}"
        );
    }

    #[test]
    fn lenet_cache_makes_all_backends_cheap_and_fast() {
        let dlb = run(
            ModelZoo::LeNet5,
            TrainBackend::Kind(BackendKind::DlBooster),
            1,
        );
        let cpu = run(
            ModelZoo::LeNet5,
            TrainBackend::Kind(BackendKind::CpuBased),
            1,
        );
        let lmdb = run(ModelZoo::LeNet5, TrainBackend::Kind(BackendKind::Lmdb), 1);
        // §5.2: MNIST caches after the first epoch → little CPU overhead
        // for every backend (the decode burn disappears).
        assert!(
            cpu.cpu_cores < 4.0,
            "LeNet CPU-based cores {:.1}",
            cpu.cpu_cores
        );
        assert!(lmdb.cpu_cores < 4.0);
        // The ≈20 % small-copy penalty of the baselines (Fig. 5a).
        let ratio = dlb.throughput / cpu.throughput.max(1.0);
        assert!(
            (1.02..1.8).contains(&ratio),
            "LeNet DLBooster/CPU ratio {ratio:.2} (expect ≈1.2)"
        );
        assert!(dlb.throughput > 50_000.0, "LeNet rates are in the 1e5 band");
    }

    #[test]
    fn dlbooster_breakdown_matches_fig6d_shape() {
        let out = run(
            ModelZoo::ResNet18,
            TrainBackend::Kind(BackendKind::DlBooster),
            1,
        );
        let (pre, transform, launch, update) = out.cpu_breakdown;
        // Fig. 6(d): 0.3 / 0.15 / 0.95 / 0.12 cores. Shape: launch largest,
        // preprocessing small, total ≲ 2.
        assert!(pre < 0.8, "preprocessing {pre:.2}");
        assert!(out.cpu_cores < 2.5, "total {:.2}", out.cpu_cores);
        assert!(
            launch > update,
            "launch {launch:.2} should exceed update {update:.2}"
        );
        assert!(transform < launch + 0.5);
    }

    #[test]
    fn two_gpus_scale_for_dlbooster() {
        let one = run(
            ModelZoo::ResNet18,
            TrainBackend::Kind(BackendKind::DlBooster),
            1,
        )
        .throughput;
        let two = run(
            ModelZoo::ResNet18,
            TrainBackend::Kind(BackendKind::DlBooster),
            2,
        )
        .throughput;
        let s = two / one;
        assert!((1.6..2.05).contains(&s), "ResNet-18 scaling {s:.2}");
    }
}

//! Every timing constant of the experiment layer, in one place, each tied to
//! the paper sentence or public spec that fixes it.
//!
//! Absolute numbers from the authors' testbed cannot be reproduced exactly
//! (different hardware era, simulated devices); what the benches assert is
//! the *shape*: who wins, by roughly what factor, and where crossovers sit.

use dlb_fpga::{FpgaTimingModel, ImageWorkload};
use dlb_gpu::{GpuSpec, NvJpegModel};
use dlb_simcore::SimTime;
use dlb_storage::lmdb::LmdbContentionModel;

/// The four preprocessing backends of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Online decode on host cores (§2.2, Figs. 2/5/6/7/8/9).
    CpuBased,
    /// Offline LMDB store (§2.2, Figs. 2/5/6).
    Lmdb,
    /// GPU-side nvJPEG decode (§5.3, Figs. 7/8/9).
    NvJpeg,
    /// The paper's system.
    DlBooster,
}

impl BackendKind {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::CpuBased => "CPU-based",
            BackendKind::Lmdb => "LMDB",
            BackendKind::NvJpeg => "nvJPEG",
            BackendKind::DlBooster => "DLBooster",
        }
    }
}

/// Which dataset statistics drive a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// ILSVRC2012-like (≈100 KB 500×375 colour JPEGs, 1.28 M train images).
    Ilsvrc,
    /// MNIST-like (60 k 28×28 grayscale).
    Mnist,
}

impl Workload {
    /// Per-image decode geometry.
    pub fn image(self) -> ImageWorkload {
        match self {
            Workload::Ilsvrc => ImageWorkload::ilsvrc_like(),
            Workload::Mnist => ImageWorkload::mnist_like(),
        }
    }

    /// Dataset size in images.
    pub fn dataset_images(self) -> u64 {
        match self {
            Workload::Ilsvrc => 1_281_167,
            Workload::Mnist => 60_000,
        }
    }

    /// Decoded bytes per image at the network input geometry.
    pub fn decoded_bytes(self) -> u64 {
        let img = self.image();
        img.output_bytes()
    }

    /// Whether the decoded dataset fits the host DRAM cache (§5.2: MNIST
    /// "can be cached in memory after the first epoch", ILSVRC "cannot").
    pub fn fits_cache(self, cache_bytes: u64) -> bool {
        self.dataset_images() * self.decoded_bytes() <= cache_bytes
    }
}

/// The complete constant set.
#[derive(Debug, Clone)]
pub struct Calibration {
    // ---- host CPU ----
    /// JPEG decode rate of one Xeon E5-2630-v3 core in source pixels/s.
    /// §2.2: "each Xeon E5 CPU core can decode only 300 images per second"
    /// at the 500×375 dataset geometry ⇒ 300 × 187 500 ≈ 56 Mpx/s.
    pub cpu_decode_pixels_per_sec_per_core: f64,
    /// Fixed per-image decode overhead (dispatch, malloc, EXIF skip).
    pub cpu_decode_fixed: SimTime,
    /// Single-core memcpy bandwidth for cached-batch assembly.
    pub memcpy_bytes_per_sec_per_core: f64,
    /// Per-datum copy overhead of the baselines' small-piece path (§5.2's
    /// ≈20 % LeNet penalty at batch 512).
    pub per_datum_copy_overhead: SimTime,
    /// Physical cores on the testbed node (2 × E5-2630-v3).
    pub total_cores: u32,
    /// Host DRAM available for the decoded-data cache (64 GB node, minus
    /// working set).
    pub dram_cache_bytes: u64,

    // ---- backends ----
    /// Shared-LMDB read path (single-reader bandwidth + contention).
    pub lmdb: LmdbContentionModel,
    /// nvJPEG decode-kernel model.
    pub nvjpeg: NvJpegModel,
    /// FPGA decoder pipeline model (4-way Huffman / 2-way resize on the
    /// Arria-10, §4.1).
    pub fpga: FpgaTimingModel,
    /// DLBooster host cost per image on the training path (cmd generation,
    /// NVMe submission, dispatcher) — Fig. 6(d)'s 0.3-core "preprocessing"
    /// bar at ResNet-18 rates.
    pub dlb_host_per_image_training: SimTime,
    /// DLBooster host cost per image on the inference path (NIC poll,
    /// response) — Fig. 9's ≈0.5 core at ≈5 k img/s.
    pub dlb_host_per_image_inference: SimTime,

    // ---- devices ----
    /// Training GPU (testbed: 2 × Tesla P100, §5.1).
    pub train_gpu: GpuSpec,
    /// Inference GPU. The paper's captions enable Tensor Cores ("default
    /// type is float16 to enable Tensor Core") and §2.2 anchors 5 000
    /// ResNet-50 img/s on a V100, so the inference calibration uses a V100.
    pub infer_gpu: GpuSpec,
    /// Number of training GPUs available.
    pub max_gpus: u32,

    // ---- network ----
    /// Inference clients (§5.3: 5).
    pub n_clients: u32,
    /// NIC wire bandwidth, bytes/s (40 Gbps fabric).
    pub nic_bytes_per_sec: f64,
    /// Per-packet fabric latency.
    pub nic_packet_latency: SimTime,

    // ---- storage ----
    /// NVMe read bandwidth (Optane 900p).
    pub nvme_read_bytes_per_sec: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Self::paper()
    }
}

impl Calibration {
    /// The paper-testbed calibration.
    pub fn paper() -> Self {
        Self {
            cpu_decode_pixels_per_sec_per_core: 56.0e6,
            cpu_decode_fixed: SimTime::from_micros(40),
            memcpy_bytes_per_sec_per_core: 8.0e9,
            per_datum_copy_overhead: SimTime::from_nanos(700),
            total_cores: 32,
            dram_cache_bytes: 48 << 30,
            lmdb: LmdbContentionModel::paper_config(),
            nvjpeg: NvJpegModel::paper_config(),
            fpga: FpgaTimingModel::paper_config(),
            dlb_host_per_image_training: SimTime::from_micros(380),
            dlb_host_per_image_inference: SimTime::from_micros(90),
            train_gpu: GpuSpec::tesla_p100(),
            infer_gpu: GpuSpec::tesla_v100(),
            max_gpus: 2,
            n_clients: 5,
            nic_bytes_per_sec: 40.0e9 / 8.0,
            nic_packet_latency: SimTime::from_micros(8),
            nvme_read_bytes_per_sec: 2.5e9,
        }
    }

    /// CPU decode time of one image of `w` (one core).
    pub fn cpu_decode_time(&self, w: &ImageWorkload) -> SimTime {
        let px = w.src_width as f64 * w.src_height as f64;
        SimTime::from_secs_f64(px / self.cpu_decode_pixels_per_sec_per_core) + self.cpu_decode_fixed
    }

    /// Images/s one core decodes on workload `w` (§2.2 anchor: ≈300 for
    /// ILSVRC geometry).
    pub fn cpu_decode_rate_per_core(&self, w: &ImageWorkload) -> f64 {
        1.0 / self.cpu_decode_time(w).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_decode_anchor_is_300_imgs_per_core() {
        let cal = Calibration::paper();
        let rate = cal.cpu_decode_rate_per_core(&Workload::Ilsvrc.image());
        assert!(
            (270.0..320.0).contains(&rate),
            "§2.2 anchor: 300 img/s/core, got {rate:.0}"
        );
    }

    #[test]
    fn mnist_decodes_far_faster_per_core() {
        let cal = Calibration::paper();
        let rate = cal.cpu_decode_rate_per_core(&Workload::Mnist.image());
        assert!(rate > 10_000.0, "28×28 decode rate {rate:.0}");
    }

    #[test]
    fn cache_fits_mnist_not_ilsvrc() {
        let cal = Calibration::paper();
        assert!(Workload::Mnist.fits_cache(cal.dram_cache_bytes));
        assert!(!Workload::Ilsvrc.fits_cache(cal.dram_cache_bytes));
    }

    #[test]
    fn labels() {
        assert_eq!(BackendKind::DlBooster.label(), "DLBooster");
        assert_eq!(BackendKind::CpuBased.label(), "CPU-based");
    }

    #[test]
    fn fpga_model_is_paper_config() {
        let cal = Calibration::paper();
        assert_eq!(cal.fpga.huffman_ways, 4);
        assert_eq!(cal.fpga.resize_ways, 2);
    }
}

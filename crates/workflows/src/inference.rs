//! The online-inference discrete-event simulation (Figs. 7, 8, 9).
//!
//! Pipeline per §5.3: 5 clients send JPEG frames over the 40 Gbps fabric;
//! the server assembles fixed-size batches, decodes them on the backend
//! under test, copies over PCIe and infers on a Tensor-Core GPU. Latency is
//! "from the point when the inference system receives pictures from clients
//! to the point when engines make a prediction".
//!
//! Two drive modes:
//! * [`DriveMode::Saturated`] — a closed loop keeps the pipeline full; the
//!   measured completion rate is the Fig. 7 throughput.
//! * [`DriveMode::Load`] — open-loop Poisson arrivals at a fraction of that
//!   capacity; per-request latency reproduces Fig. 8.
//!
//! Backend stations:
//! * **DLBooster** — the FPGA pipeline (singleton), batch service from the
//!   calibrated stage model; near-zero host CPU.
//! * **CPU-based** — an aggregate host pool of `cpu_workers` cores.
//! * **nvJPEG** — a GPU decode engine whose SM share stretches the
//!   inference kernels (decode and inference overlap on one device).

use crate::calibration::{BackendKind, Calibration, Workload};
use dlb_gpu::{GpuTimingModel, ModelZoo, Precision};
use dlb_simcore::stats::{BusyTracker, LatencyStats};
use dlb_simcore::{Scheduler, SimModel, SimRng, SimTime, Simulation};
use std::collections::VecDeque;

/// How the request generator drives the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriveMode {
    /// Closed loop, pipeline always full — measures capacity (Fig. 7).
    Saturated,
    /// Open-loop Poisson at `rate` requests/s — measures latency (Fig. 8).
    Load {
        /// Aggregate client request rate.
        rate: f64,
    },
}

/// Inference experiment parameters.
#[derive(Debug, Clone)]
pub struct InferenceParams {
    /// Network served.
    pub model: ModelZoo,
    /// Backend under test.
    pub backend: BackendKind,
    /// Images per inference batch.
    pub batch_size: u32,
    /// Drive mode.
    pub mode: DriveMode,
    /// Host decode workers for the CPU backend (Fig. 9: 7–14 per GPU).
    pub cpu_workers: u32,
    /// Batches to complete.
    pub batches: u32,
    /// Batches to discard as warmup.
    pub warmup: u32,
    /// RNG seed (arrival process).
    pub seed: u64,
    /// Paper §7 future work (2): "directly writing the processed data to
    /// GPU devices for lower latency". When set, the FPGA's DMA engine
    /// targets device memory (GPUDirect-style peer DMA) and the host-bounce
    /// copy stage disappears from the pipeline.
    pub direct_gpu_dma: bool,
    /// FPGA decoders installed (§5.3: "the bottleneck can be overcome by
    /// plugging more FPGA devices"). Only meaningful for the DLBooster
    /// backend; each device is an independent decode station.
    pub n_fpgas: u32,
}

impl InferenceParams {
    /// The paper's setup for `model`/`backend` at `batch_size`, saturated.
    pub fn paper(model: ModelZoo, backend: BackendKind, batch_size: u32) -> Self {
        Self {
            model,
            backend,
            batch_size,
            mode: DriveMode::Saturated,
            cpu_workers: 14,
            batches: 300,
            warmup: 50,
            seed: 7,
            direct_gpu_dma: false,
            n_fpgas: 1,
        }
    }
}

/// Measured outcome.
#[derive(Debug, Clone)]
pub struct InferenceOutcome {
    /// Steady-state throughput, images/s.
    pub throughput: f64,
    /// Per-request latency distribution (arrival→prediction).
    pub mean_latency: SimTime,
    /// Median latency.
    pub p50_latency: SimTime,
    /// Tail latency.
    pub p99_latency: SimTime,
    /// Host CPU core-equivalents (decode + launch + response path).
    pub cpu_cores: f64,
    /// Virtual duration.
    pub sim_time: SimTime,
    /// Requests completed.
    pub completed: u64,
}

#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    Kickoff,
    /// A request's payload finished crossing the fabric.
    ArrivalAtServer,
    /// Decode station finished the batch at queue head.
    DecodeDone,
    /// PCIe copy finished.
    CopyDone,
    /// Inference kernel finished.
    InferDone,
}

struct Batch {
    /// Arrival times of member requests.
    arrivals: Vec<SimTime>,
}

/// The inference DES model.
pub struct InferenceSim {
    cal: Calibration,
    params: InferenceParams,
    timing: GpuTimingModel,
    rng: SimRng,

    // Arrival/batching state.
    pending: Vec<SimTime>,
    /// Queues between stations.
    decode_q: VecDeque<Batch>,
    /// Decode stations busy (up to `decode_stations`).
    decode_busy: u32,
    decode_stations: u32,
    copy_q: VecDeque<Batch>,
    copy_busy: bool,
    infer_q: VecDeque<Batch>,
    infer_busy: bool,
    /// Closed-loop tokens outstanding (Saturated mode).
    in_flight: u32,
    /// Open-loop arrivals generated so far (bounded by the batch budget).
    arrivals_generated: u64,

    // Measurement.
    latency: LatencyStats,
    cpu: BusyTracker,
    batches_done: u32,
    completed_after_warmup: u64,
    warmup_at: Option<SimTime>,
    done_at: SimTime,
}

impl InferenceSim {
    /// Builds the model.
    pub fn new(cal: Calibration, params: InferenceParams) -> Self {
        assert!(params.batch_size >= 1 && params.batches > params.warmup);
        let mut timing =
            GpuTimingModel::new(&cal.infer_gpu, &params.model.model(), Precision::Fp16);
        if params.backend == BackendKind::NvJpeg {
            timing.set_background_share(cal.nvjpeg.sm_share_at(params.batch_size));
        }
        let rng = SimRng::new(params.seed);
        let decode_stations = if params.backend == BackendKind::DlBooster {
            params.n_fpgas.max(1)
        } else {
            1
        };
        Self {
            cal,
            timing,
            rng,
            pending: Vec::new(),
            decode_q: VecDeque::new(),
            decode_busy: 0,
            decode_stations,
            copy_q: VecDeque::new(),
            copy_busy: false,
            infer_q: VecDeque::new(),
            infer_busy: false,
            in_flight: 0,
            arrivals_generated: 0,
            latency: LatencyStats::new(),
            cpu: BusyTracker::new(),
            batches_done: 0,
            completed_after_warmup: 0,
            warmup_at: None,
            done_at: SimTime::ZERO,
            params,
        }
    }

    /// Decode service time + host CPU busy charge for one batch.
    fn decode_service(&self) -> (SimTime, SimTime) {
        let bs = self.params.batch_size as u64;
        let img = Workload::Ilsvrc.image();
        match self.params.backend {
            BackendKind::DlBooster => {
                let images = vec![img; bs as usize];
                let service = self.cal.fpga.batch_service_time(&images);
                let host = SimTime::from_nanos(
                    self.cal.dlb_host_per_image_inference.as_nanos() * bs,
                );
                (service, host)
            }
            BackendKind::CpuBased => {
                // One image decodes on one core: a batch runs in
                // `ceil(bs/workers)` waves of full per-image duration (the
                // reason bs=1 latency is ~3.4 ms in Fig. 8 regardless of
                // worker count).
                let per_image = self.cal.cpu_decode_time(&img);
                let workers = self.params.cpu_workers.max(1) as u64;
                let waves = bs.div_ceil(workers);
                let service = SimTime::from_nanos(per_image.as_nanos() * waves);
                let busy = SimTime::from_nanos(per_image.as_nanos() * bs);
                (service, busy)
            }
            BackendKind::NvJpeg => {
                let service = self
                    .cal
                    .nvjpeg
                    .decode_time(bs as u32, img.src_width, img.src_height);
                (service, self.cal.nvjpeg.launch_cpu_time(bs as u32))
            }
            BackendKind::Lmdb => {
                unreachable!("LMDB is an offline backend; §5.3 excludes it from inference")
            }
        }
    }

    fn copy_service(&self) -> SimTime {
        let bytes = self.params.batch_size as u64 * Workload::Ilsvrc.decoded_bytes();
        SimTime::from_secs_f64(bytes as f64 / self.cal.infer_gpu.pcie_bytes_per_sec)
    }

    fn infer_service(&self) -> SimTime {
        // Contention stretch is already configured on the timing model.
        self.timing.forward_time(self.params.batch_size)
    }

    fn spawn_batch_saturated(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        let bs = self.params.batch_size;
        let batch = Batch {
            arrivals: vec![now; bs as usize],
        };
        self.in_flight += 1;
        self.decode_q.push_back(batch);
        self.try_start_decode(sched);
    }

    fn schedule_next_arrival(&mut self, sched: &mut Scheduler<Ev>) {
        let DriveMode::Load { rate } = self.params.mode else {
            return;
        };
        // Bound the run: enough arrivals for the batch budget.
        if self.arrivals_generated
            >= self.params.batches as u64 * self.params.batch_size as u64
        {
            return;
        }
        self.arrivals_generated += 1;
        let gap = self.rng.exponential(1.0 / rate);
        sched.after(SimTime::from_secs_f64(gap), Ev::ArrivalAtServer);
    }

    fn try_start_decode(&mut self, sched: &mut Scheduler<Ev>) {
        // Batches in service sit at the front of `decode_q`; only start a
        // new one if a station is free and an unserved batch exists.
        if self.decode_busy >= self.decode_stations
            || (self.decode_q.len() as u32) <= self.decode_busy
        {
            return;
        }
        self.decode_busy += 1;
        let (service, busy) = self.decode_service();
        self.cpu.add(busy);
        sched.after(service, Ev::DecodeDone);
    }

    fn try_start_copy(&mut self, sched: &mut Scheduler<Ev>) {
        if self.copy_busy || self.copy_q.is_empty() {
            return;
        }
        self.copy_busy = true;
        sched.after(self.copy_service(), Ev::CopyDone);
    }

    fn try_start_infer(&mut self, sched: &mut Scheduler<Ev>) {
        if self.infer_busy || self.infer_q.is_empty() {
            return;
        }
        self.infer_busy = true;
        // Kernel-launch host cost (TensorRT-grade: thin).
        let service = self.infer_service();
        self.cpu.add(self.timing.launch_cpu_time(service, false));
        sched.after(service, Ev::InferDone);
    }
}

impl SimModel for InferenceSim {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Kickoff => match self.params.mode {
                DriveMode::Saturated => {
                    // Keep enough batches in flight that every decode
                    // station plus the copy and infer stages stay busy.
                    for _ in 0..(self.decode_stations + 2) {
                        self.spawn_batch_saturated(now, sched);
                    }
                }
                DriveMode::Load { .. } => {
                    self.schedule_next_arrival(sched);
                }
            },
            Ev::ArrivalAtServer => {
                // NIC transfer time shifts the effective arrival instant;
                // the paper measures from server receipt, so `now` is it.
                self.pending.push(now);
                if self.pending.len() >= self.params.batch_size as usize {
                    let arrivals = std::mem::take(&mut self.pending);
                    self.decode_q.push_back(Batch { arrivals });
                    self.try_start_decode(sched);
                }
                self.schedule_next_arrival(sched);
            }
            Ev::DecodeDone => {
                self.decode_busy -= 1;
                let batch = self.decode_q.pop_front().expect("decode had a batch");
                if self.params.direct_gpu_dma {
                    // Peer DMA: decoded pixels landed in device memory
                    // already; go straight to the inference station.
                    self.infer_q.push_back(batch);
                    self.try_start_infer(sched);
                } else {
                    self.copy_q.push_back(batch);
                    self.try_start_copy(sched);
                }
                self.try_start_decode(sched);
            }
            Ev::CopyDone => {
                self.copy_busy = false;
                let batch = self.copy_q.pop_front().expect("copy had a batch");
                self.infer_q.push_back(batch);
                self.try_start_infer(sched);
                self.try_start_copy(sched);
            }
            Ev::InferDone => {
                self.infer_busy = false;
                let batch = self.infer_q.pop_front().expect("infer had a batch");
                self.batches_done += 1;
                if self.batches_done == self.params.warmup {
                    self.warmup_at = Some(now);
                }
                if self.batches_done > self.params.warmup {
                    self.completed_after_warmup += batch.arrivals.len() as u64;
                    for &arr in &batch.arrivals {
                        self.latency.record(now.saturating_sub(arr));
                    }
                }
                self.done_at = now;
                // Host response path (serialisation, send) — charged per
                // image to the backend's host budget.
                let resp = SimTime::from_nanos(
                    2_000 * batch.arrivals.len() as u64, // 2 µs/response
                );
                self.cpu.add(resp);
                if self.params.mode == DriveMode::Saturated
                    && self.batches_done < self.params.batches
                {
                    self.in_flight -= 1;
                    self.spawn_batch_saturated(now, sched);
                }
                // The station must always pull the next queued batch —
                // gating this on the batch budget strands the queue and
                // collapses Load-mode throughput.
                self.try_start_infer(sched);
            }
        }
    }
}

impl InferenceSim {
    /// Runs one experiment.
    pub fn run(cal: Calibration, params: InferenceParams) -> InferenceOutcome {
        let warmup = params.warmup;
        let batches = params.batches;
        let bs = params.batch_size;
        let mut sim = Simulation::new(InferenceSim::new(cal, params));
        sim.seed(SimTime::ZERO, Ev::Kickoff);
        // Load mode generates arrivals indefinitely; cap the run.
        let _ = sim.run_until(SimTime::from_secs(3600), 50_000_000);
        let mut model = sim.into_model();
        assert!(
            model.batches_done >= batches.min(model.batches_done.max(warmup + 1)),
            "inference sim made no post-warmup progress"
        );
        let start = model.warmup_at.unwrap_or(SimTime::ZERO);
        let window = model.done_at.saturating_sub(start);
        let throughput = if window == SimTime::ZERO {
            0.0
        } else {
            model.completed_after_warmup as f64 / window.as_secs_f64()
        };
        let _ = bs;
        InferenceOutcome {
            throughput,
            mean_latency: model.latency.mean(),
            p50_latency: model.latency.median(),
            p99_latency: model.latency.p99(),
            cpu_cores: model.cpu.cores(model.done_at),
            sim_time: model.done_at,
            completed: model.completed_after_warmup,
        }
    }

    /// Convenience: saturated throughput for (model, backend, batch).
    pub fn saturated_throughput(
        cal: &Calibration,
        model: ModelZoo,
        backend: BackendKind,
        batch_size: u32,
    ) -> f64 {
        InferenceSim::run(
            cal.clone(),
            InferenceParams::paper(model, backend, batch_size),
        )
        .throughput
    }

    /// Convenience: latency at `utilisation` of saturated capacity.
    pub fn loaded_latency(
        cal: &Calibration,
        model: ModelZoo,
        backend: BackendKind,
        batch_size: u32,
        utilisation: f64,
    ) -> InferenceOutcome {
        assert!((0.0..1.0).contains(&utilisation));
        let cap = Self::saturated_throughput(cal, model, backend, batch_size);
        let mut params = InferenceParams::paper(model, backend, batch_size);
        params.mode = DriveMode::Load {
            rate: cap * utilisation,
        };
        // Fewer batches: open-loop runs are slower per batch.
        params.batches = 150;
        params.warmup = 25;
        InferenceSim::run(cal.clone(), params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::paper()
    }

    #[test]
    fn dlbooster_saturates_near_fpga_plateau() {
        let tp =
            InferenceSim::saturated_throughput(&cal(), ModelZoo::GoogLeNet, BackendKind::DlBooster, 32);
        // Fig. 7(a) plateau: ≈5.5–6 k img/s.
        assert!((4_500.0..7_000.0).contains(&tp), "DLBooster GoogLeNet bs32: {tp:.0}");
    }

    #[test]
    fn fig7_ordering_at_large_batch() {
        let c = cal();
        for model in [ModelZoo::GoogLeNet, ModelZoo::ResNet50] {
            let bs = model.paper_batch_size();
            let dlb = InferenceSim::saturated_throughput(&c, model, BackendKind::DlBooster, bs);
            let cpu = InferenceSim::saturated_throughput(&c, model, BackendKind::CpuBased, bs);
            let nv = InferenceSim::saturated_throughput(&c, model, BackendKind::NvJpeg, bs);
            assert!(
                dlb > cpu && cpu > nv,
                "{}: DLB {dlb:.0} / CPU {cpu:.0} / nvJPEG {nv:.0}",
                model.name()
            );
            // §5.3: DLBooster achieves 1.2×–2.4× the baselines.
            let gain = dlb / nv;
            assert!(
                (1.2..4.0).contains(&gain),
                "{}: DLBooster/nvJPEG gain {gain:.2}",
                model.name()
            );
        }
    }

    #[test]
    fn throughput_grows_with_batch_size() {
        let c = cal();
        let t1 = InferenceSim::saturated_throughput(&c, ModelZoo::GoogLeNet, BackendKind::DlBooster, 1);
        let t8 = InferenceSim::saturated_throughput(&c, ModelZoo::GoogLeNet, BackendKind::DlBooster, 8);
        let t32 = InferenceSim::saturated_throughput(&c, ModelZoo::GoogLeNet, BackendKind::DlBooster, 32);
        assert!(t8 > t1 && t32 >= t8 * 0.95, "{t1:.0} → {t8:.0} → {t32:.0}");
    }

    #[test]
    fn fig8_latency_ordering_at_bs1() {
        let c = cal();
        let dlb = InferenceSim::loaded_latency(&c, ModelZoo::GoogLeNet, BackendKind::DlBooster, 1, 0.6);
        let nv = InferenceSim::loaded_latency(&c, ModelZoo::GoogLeNet, BackendKind::NvJpeg, 1, 0.6);
        let cpu = InferenceSim::loaded_latency(&c, ModelZoo::GoogLeNet, BackendKind::CpuBased, 1, 0.6);
        // Fig. 8(a) bs=1: 1.2 ms (DLB) < 1.8 ms (nvJPEG) < 3.4 ms (CPU).
        assert!(
            dlb.p50_latency < nv.p50_latency && nv.p50_latency < cpu.p50_latency,
            "DLB {} / nvJPEG {} / CPU {}",
            dlb.p50_latency,
            nv.p50_latency,
            cpu.p50_latency
        );
        assert!(
            dlb.p50_latency < SimTime::from_millis(3),
            "bs=1 DLBooster latency {}",
            dlb.p50_latency
        );
        // Paper's headline: DLBooster cuts latency by ≈1/3 vs CPU-based.
        let cut = 1.0 - dlb.p50_latency.as_secs_f64() / cpu.p50_latency.as_secs_f64();
        assert!(cut > 0.25, "latency cut {cut:.2}");
    }

    #[test]
    fn latency_grows_with_batch_size() {
        let c = cal();
        let small = InferenceSim::loaded_latency(&c, ModelZoo::Vgg16, BackendKind::DlBooster, 2, 0.5);
        let large = InferenceSim::loaded_latency(&c, ModelZoo::Vgg16, BackendKind::DlBooster, 16, 0.5);
        assert!(
            large.p50_latency > small.p50_latency,
            "Fig. 8 shape: {} vs {}",
            large.p50_latency,
            small.p50_latency
        );
    }

    #[test]
    fn fig9_cpu_cost_ordering() {
        let c = cal();
        let bs = 32;
        let cpu = InferenceSim::run(
            c.clone(),
            InferenceParams::paper(ModelZoo::GoogLeNet, BackendKind::CpuBased, bs),
        );
        let nv = InferenceSim::run(
            c.clone(),
            InferenceParams::paper(ModelZoo::GoogLeNet, BackendKind::NvJpeg, bs),
        );
        let dlb = InferenceSim::run(
            c,
            InferenceParams::paper(ModelZoo::GoogLeNet, BackendKind::DlBooster, bs),
        );
        // Fig. 9: CPU-based 7–14, nvJPEG ≈1.5, DLBooster ≈0.5.
        assert!(cpu.cpu_cores > 5.0, "CPU-based {:.1}", cpu.cpu_cores);
        assert!(
            (0.3..3.5).contains(&nv.cpu_cores),
            "nvJPEG {:.2}",
            nv.cpu_cores
        );
        assert!(dlb.cpu_cores < 1.2, "DLBooster {:.2}", dlb.cpu_cores);
        assert!(cpu.cpu_cores > nv.cpu_cores && nv.cpu_cores > dlb.cpu_cores);
    }

    #[test]
    fn more_fpgas_break_the_decode_plateau() {
        // §5.3 discussion: the GoogLeNet bs>=16 plateau is the FPGA decode
        // bound; a second device raises it until the GPU binds.
        let c = cal();
        let mut one = InferenceParams::paper(ModelZoo::GoogLeNet, BackendKind::DlBooster, 32);
        one.n_fpgas = 1;
        let mut two = one.clone();
        two.n_fpgas = 2;
        let t1 = InferenceSim::run(c.clone(), one).throughput;
        let t2 = InferenceSim::run(c, two).throughput;
        assert!(
            t2 > t1 * 1.3,
            "second FPGA must lift the plateau: {t1:.0} -> {t2:.0}"
        );
    }

    #[test]
    fn direct_gpu_dma_lowers_latency() {
        // Paper §7 future work (2): writing decoded data straight to the
        // GPU removes the host bounce. Latency must drop; throughput must
        // not regress (the copy stage was never the bottleneck, so gains
        // are latency-side).
        let c = cal();
        let mut base = InferenceParams::paper(ModelZoo::ResNet50, BackendKind::DlBooster, 16);
        base.mode = DriveMode::Load { rate: 2_000.0 };
        base.batches = 150;
        base.warmup = 25;
        let mut direct = base.clone();
        direct.direct_gpu_dma = true;
        let base_out = InferenceSim::run(c.clone(), base);
        let direct_out = InferenceSim::run(c, direct);
        assert!(
            direct_out.p50_latency < base_out.p50_latency,
            "direct DMA must cut latency: {} vs {}",
            direct_out.p50_latency,
            base_out.p50_latency
        );
        // The saved hop is the PCIe copy of one batch.
        let saved = base_out.p50_latency.saturating_sub(direct_out.p50_latency);
        assert!(
            saved.as_secs_f64() > 0.0 && saved < SimTime::from_millis(5),
            "saved {saved}"
        );
    }

    #[test]
    #[should_panic(expected = "offline backend")]
    fn lmdb_rejected_for_inference() {
        let _ = InferenceSim::saturated_throughput(&cal(), ModelZoo::Vgg16, BackendKind::Lmdb, 8);
    }
}

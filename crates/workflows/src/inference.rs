//! The online-inference discrete-event simulation (Figs. 7, 8, 9).
//!
//! Pipeline per §5.3: 5 clients send JPEG frames over the 40 Gbps fabric;
//! the server assembles fixed-size batches, decodes them on the backend
//! under test, copies over PCIe and infers on a Tensor-Core GPU. Latency is
//! "from the point when the inference system receives pictures from clients
//! to the point when engines make a prediction".
//!
//! Three drive modes:
//! * [`DriveMode::Saturated`] — a closed loop keeps the pipeline full; the
//!   measured completion rate is the Fig. 7 throughput.
//! * [`DriveMode::Load`] — open-loop Poisson arrivals at a fraction of that
//!   capacity; per-request latency reproduces Fig. 8.
//! * [`DriveMode::Served`] — open-loop arrivals routed through the
//!   `dlb-serving` layer (deadline-aware dynamic batching, admission
//!   control with load shedding, per-tenant WFQ); offered load may exceed
//!   capacity — the overload-sweep regime the ROADMAP north star demands.
//!
//! Backend stations:
//! * **DLBooster** — the FPGA pipeline (singleton), batch service from the
//!   calibrated stage model; near-zero host CPU.
//! * **CPU-based** — an aggregate host pool of `cpu_workers` cores.
//! * **nvJPEG** — a GPU decode engine whose SM share stretches the
//!   inference kernels (decode and inference overlap on one device).

use crate::calibration::{BackendKind, Calibration, Workload};
use dlb_cache::{CachedSample, SampleCache, SampleKey};
use dlb_gpu::{GpuTimingModel, ModelZoo, Precision};
use dlb_serving::{
    AdmissionController, BatchFormer, ServeRequest, ServingConfig, ServingInstruments,
};
use dlb_simcore::stats::{BusyTracker, LatencyStats};
use dlb_simcore::{Scheduler, SimModel, SimRng, SimTime, Simulation};
use dlb_telemetry::{PipelineSnapshot, Registry};
use std::collections::VecDeque;
use std::sync::Arc;

/// How the request generator drives the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriveMode {
    /// Closed loop, pipeline always full — measures capacity (Fig. 7).
    Saturated,
    /// Open-loop Poisson at `rate` requests/s — measures latency (Fig. 8).
    Load {
        /// Aggregate client request rate.
        rate: f64,
    },
    /// Open-loop Poisson at `rate` requests/s through the serving layer
    /// (requires [`InferenceParams::serving`]); `rate` may exceed capacity.
    Served {
        /// Aggregate offered request rate.
        rate: f64,
    },
}

/// Inference experiment parameters.
#[derive(Debug, Clone)]
pub struct InferenceParams {
    /// Network served.
    pub model: ModelZoo,
    /// Backend under test.
    pub backend: BackendKind,
    /// Images per inference batch.
    pub batch_size: u32,
    /// Drive mode.
    pub mode: DriveMode,
    /// Host decode workers for the CPU backend (Fig. 9: 7–14 per GPU).
    pub cpu_workers: u32,
    /// Batches to complete.
    pub batches: u32,
    /// Batches to discard as warmup.
    pub warmup: u32,
    /// RNG seed (arrival process).
    pub seed: u64,
    /// Paper §7 future work (2): "directly writing the processed data to
    /// GPU devices for lower latency". When set, the FPGA's DMA engine
    /// targets device memory (GPUDirect-style peer DMA) and the host-bounce
    /// copy stage disappears from the pipeline.
    pub direct_gpu_dma: bool,
    /// FPGA decoders installed (§5.3: "the bottleneck can be overcome by
    /// plugging more FPGA devices"). Only meaningful for the DLBooster
    /// backend; each device is an independent decode station.
    pub n_fpgas: u32,
    /// Serving-layer configuration — required by [`DriveMode::Served`],
    /// ignored by the other drive modes.
    pub serving: Option<ServingConfig>,
    /// Decoded-sample cache capacity for Served mode (0 = disabled).
    /// Partitioned per tenant by WFQ weight
    /// ([`ServingConfig::cache_partitions`]); a hit skips the decode
    /// station entirely.
    pub sample_cache_bytes: u64,
    /// Distinct hot objects per tenant: each request maps to one of this
    /// many recurring frames (CCTV-style repeated content), which is what
    /// gives the cache something to hit.
    pub cache_keys_per_tenant: u64,
}

impl InferenceParams {
    /// The paper's setup for `model`/`backend` at `batch_size`, saturated.
    pub fn paper(model: ModelZoo, backend: BackendKind, batch_size: u32) -> Self {
        Self {
            model,
            backend,
            batch_size,
            mode: DriveMode::Saturated,
            cpu_workers: 14,
            batches: 300,
            warmup: 50,
            seed: 7,
            direct_gpu_dma: false,
            n_fpgas: 1,
            serving: None,
            sample_cache_bytes: 0,
            cache_keys_per_tenant: 64,
        }
    }
}

/// Measured outcome.
#[derive(Debug, Clone)]
pub struct InferenceOutcome {
    /// Steady-state throughput, images/s.
    pub throughput: f64,
    /// Per-request latency distribution (arrival→prediction).
    pub mean_latency: SimTime,
    /// Median latency.
    pub p50_latency: SimTime,
    /// Tail latency.
    pub p99_latency: SimTime,
    /// Host CPU core-equivalents (decode + launch + response path).
    pub cpu_cores: f64,
    /// Virtual duration.
    pub sim_time: SimTime,
    /// Requests completed.
    pub completed: u64,
    /// Serving-layer view ([`DriveMode::Served`] runs only).
    pub serving: Option<ServingOutcome>,
}

/// Serving-layer outcome of one [`DriveMode::Served`] run: the admission
/// ledger, the post-warmup goodput rate, and the full telemetry snapshot
/// (with `serving.*` conservation invariants checkable via
/// [`PipelineSnapshot::invariant_violations`]).
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// Requests offered to the admission controller.
    pub offered: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected at the door.
    pub rejected: u64,
    /// Admitted requests evicted by the shedding policy.
    pub shed: u64,
    /// Admitted requests that completed.
    pub completed: u64,
    /// Completions that met their SLO deadline.
    pub good: u64,
    /// In-SLO completions per second over the post-warmup window.
    pub goodput: f64,
    /// End-of-run telemetry (all `serving.*` metrics, per-tenant rows,
    /// queue-delay and batch-size histograms).
    pub snapshot: PipelineSnapshot,
}

impl ServingOutcome {
    /// Fraction of completions that met the SLO (1.0 when none completed).
    pub fn slo_attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.good as f64 / self.completed as f64
        }
    }
}

/// One point of an overload sweep: offered load as a multiple of the
/// measured saturated capacity, plus the run outcome at that load.
#[derive(Debug, Clone)]
pub struct OverloadPoint {
    /// Offered load as a fraction of saturated capacity (the sweep axis).
    pub multiplier: f64,
    /// Offered arrival rate, requests/s.
    pub offered_rate: f64,
    /// Saturated capacity the multiplier is relative to, images/s.
    pub capacity: f64,
    /// Run outcome; `outcome.serving` is always `Some` for sweep points.
    pub outcome: InferenceOutcome,
}

/// The canonical overload-sweep axis: 0.5×–3× of saturated capacity.
pub const OVERLOAD_MULTIPLIERS: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 3.0];

/// Parameter grid for overload sweeps: the offered-load multiplier axis
/// plus the per-point run length. The same grid steers the single-node
/// serving sweep ([`InferenceSim::overload_sweep_grid`]) and the cluster
/// sweep (`ClusterSim::overload_sweep`), so experiments across the two
/// layers stay on one axis.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Offered load as multiples of measured saturated capacity.
    pub multipliers: Vec<f64>,
    /// Batches to complete per sweep point.
    pub batches: u32,
    /// Batches to discard as warmup per sweep point.
    pub warmup: u32,
}

impl Default for SweepGrid {
    /// The canonical grid: [`OVERLOAD_MULTIPLIERS`] at the paper's
    /// 300-batch / 50-warmup run length.
    fn default() -> Self {
        Self {
            multipliers: OVERLOAD_MULTIPLIERS.to_vec(),
            batches: 300,
            warmup: 50,
        }
    }
}

impl SweepGrid {
    /// The canonical run length over a custom multiplier axis.
    pub fn with_multipliers(multipliers: &[f64]) -> Self {
        Self {
            multipliers: multipliers.to_vec(),
            ..Self::default()
        }
    }

    /// A shortened grid for tests and smoke benches: three points at half
    /// the canonical run length.
    pub fn quick() -> Self {
        Self {
            multipliers: vec![1.0, 2.0, 3.0],
            batches: 150,
            warmup: 25,
        }
    }
}

#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    Kickoff,
    /// A request's payload finished crossing the fabric.
    ArrivalAtServer,
    /// The dynamic batcher's linger timer expired for `generation`.
    LingerExpired {
        /// The forming-batch generation the timer was armed for; stale
        /// generations (the batch already closed full) are ignored.
        generation: u64,
    },
    /// Decode station finished the batch at queue head.
    DecodeDone,
    /// PCIe copy finished.
    CopyDone,
    /// Inference kernel finished.
    InferDone,
}

struct Batch {
    /// Arrival times of member requests.
    arrivals: Vec<SimTime>,
    /// Member requests when formed by the serving layer (empty otherwise);
    /// completions are scored against their deadlines.
    requests: Vec<ServeRequest>,
}

/// Serving-layer state threaded through the DES (Served mode only).
struct ServingState {
    admission: AdmissionController,
    former: BatchFormer,
    instruments: Arc<ServingInstruments>,
    registry: Arc<Registry>,
    slo: SimTime,
    /// Worst-case batch-forming wait (the configured linger).
    linger: SimTime,
    /// One full pass through decode + copy + infer for a full batch.
    pass: SimTime,
    /// Slowest single station's full-batch service — the per-batch drain
    /// interval of a saturated pipeline.
    bottleneck: SimTime,
    /// Cumulative tenant load shares for arrival sampling.
    tenant_cdf: Vec<(u32, f64)>,
    next_id: u64,
    /// In-SLO completions after warmup (goodput numerator).
    good_after_warmup: u64,
    /// Which former generation has a linger timer armed.
    armed_generation: Option<u64>,
    /// Per-tenant decoded-sample cache (when `sample_cache_bytes > 0`).
    cache: Option<Arc<SampleCache>>,
    /// Hot-object universe size per tenant.
    keys_per_tenant: u64,
    /// One image's decode service — the insert cost signal, and the work
    /// a cache hit saves.
    per_image_decode: SimTime,
}

/// Deterministic request → hot-object mapping (splitmix64 over the
/// request id): recurring content without carrying a payload key through
/// the serving layer.
fn object_id(request_id: u64, universe: u64) -> u64 {
    let mut z = request_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % universe.max(1)
}

/// The inference DES model.
pub struct InferenceSim {
    cal: Calibration,
    params: InferenceParams,
    timing: GpuTimingModel,
    rng: SimRng,

    // Arrival/batching state.
    pending: Vec<SimTime>,
    /// Queues between stations.
    decode_q: VecDeque<Batch>,
    /// Decode stations busy (up to `decode_stations`).
    decode_busy: u32,
    decode_stations: u32,
    copy_q: VecDeque<Batch>,
    copy_busy: bool,
    infer_q: VecDeque<Batch>,
    infer_busy: bool,
    /// Closed-loop tokens outstanding (Saturated mode).
    in_flight: u32,
    /// Open-loop arrivals generated so far (bounded by the batch budget).
    arrivals_generated: u64,
    /// Serving layer (Served mode only).
    serving: Option<ServingState>,

    // Measurement.
    latency: LatencyStats,
    cpu: BusyTracker,
    batches_done: u32,
    completed_after_warmup: u64,
    warmup_at: Option<SimTime>,
    done_at: SimTime,
}

impl InferenceSim {
    /// Builds the model.
    pub fn new(cal: Calibration, params: InferenceParams) -> Self {
        assert!(params.batch_size >= 1 && params.batches > params.warmup);
        let mut timing =
            GpuTimingModel::new(&cal.infer_gpu, &params.model.model(), Precision::Fp16);
        if params.backend == BackendKind::NvJpeg {
            timing.set_background_share(cal.nvjpeg.sm_share_at(params.batch_size));
        }
        let rng = SimRng::new(params.seed);
        let decode_stations = if params.backend == BackendKind::DlBooster {
            params.n_fpgas.max(1)
        } else {
            1
        };
        if matches!(params.mode, DriveMode::Served { .. }) {
            assert!(
                params.serving.is_some(),
                "DriveMode::Served requires InferenceParams::serving"
            );
        }
        let mut sim = Self {
            cal,
            timing,
            rng,
            pending: Vec::new(),
            decode_q: VecDeque::new(),
            decode_busy: 0,
            decode_stations,
            copy_q: VecDeque::new(),
            copy_busy: false,
            infer_q: VecDeque::new(),
            infer_busy: false,
            in_flight: 0,
            arrivals_generated: 0,
            serving: None,
            latency: LatencyStats::new(),
            cpu: BusyTracker::new(),
            batches_done: 0,
            completed_after_warmup: 0,
            warmup_at: None,
            done_at: SimTime::ZERO,
            params,
        };
        if let (DriveMode::Served { .. }, Some(cfg)) = (sim.params.mode, sim.params.serving.clone())
        {
            sim.serving = Some(sim.build_serving_state(cfg));
        }
        sim
    }

    /// Builds the Served-mode state: instrumented admission controller and
    /// batch former, with the feasibility predictor calibrated from the
    /// stage service model (no measurement run needed).
    fn build_serving_state(&self, cfg: ServingConfig) -> ServingState {
        let registry = Arc::new(Registry::new());
        let instruments = ServingInstruments::new(&registry, cfg.max_batch);
        let cache = (self.params.sample_cache_bytes > 0).then(|| {
            SampleCache::partitioned(
                self.params.sample_cache_bytes,
                &cfg.cache_partitions(),
                &registry,
            )
        });
        let bs = self.params.batch_size.max(1) as u64;
        let (decode, _) = self.decode_service(self.params.batch_size);
        let copy = if self.params.direct_gpu_dma {
            SimTime::ZERO
        } else {
            self.copy_service(self.params.batch_size)
        };
        let infer = self.infer_service(self.params.batch_size);
        // Queue drain rate: the slowest station bounds it (decode runs on
        // `decode_stations` parallel devices).
        let bottleneck = SimTime::from_nanos(
            (decode.as_nanos() / self.decode_stations.max(1) as u64)
                .max(copy.as_nanos())
                .max(infer.as_nanos()),
        );
        let per_item_ns = bottleneck.as_nanos() / bs;
        // Pipeline latency once dequeued: batch forming is bounded by
        // max_linger, then one pass through every station.
        let pass = decode + copy + infer;
        let base = cfg.max_linger + pass;
        let mut admission =
            AdmissionController::new(cfg.clone()).with_instruments(Arc::clone(&instruments));
        admission.set_service_estimate(SimTime::from_nanos(per_item_ns), base);
        let former = BatchFormer::new(cfg.max_batch, cfg.max_linger)
            .with_instruments(Arc::clone(&instruments));
        let total_share = cfg.total_load_share().max(f64::MIN_POSITIVE);
        let mut acc = 0.0;
        let tenant_cdf = cfg
            .tenants
            .iter()
            .map(|t| {
                acc += t.load_share.max(0.0) / total_share;
                (t.id, acc)
            })
            .collect();
        ServingState {
            admission,
            former,
            instruments,
            registry,
            slo: cfg.slo,
            linger: cfg.max_linger,
            pass,
            bottleneck,
            tenant_cdf,
            next_id: 0,
            good_after_warmup: 0,
            armed_generation: None,
            cache,
            keys_per_tenant: self.params.cache_keys_per_tenant.max(1),
            per_image_decode: self.decode_service(1).0,
        }
    }

    /// Decode service time + host CPU busy charge for one batch of
    /// `items` images (Served-mode linger closes can ship partial
    /// batches; the fixed modes always pass `batch_size`).
    fn decode_service(&self, items: u32) -> (SimTime, SimTime) {
        let bs = items.max(1) as u64;
        let img = Workload::Ilsvrc.image();
        match self.params.backend {
            BackendKind::DlBooster => {
                let images = vec![img; bs as usize];
                let service = self.cal.fpga.batch_service_time(&images);
                let host =
                    SimTime::from_nanos(self.cal.dlb_host_per_image_inference.as_nanos() * bs);
                (service, host)
            }
            BackendKind::CpuBased => {
                // One image decodes on one core: a batch runs in
                // `ceil(bs/workers)` waves of full per-image duration (the
                // reason bs=1 latency is ~3.4 ms in Fig. 8 regardless of
                // worker count).
                let per_image = self.cal.cpu_decode_time(&img);
                let workers = self.params.cpu_workers.max(1) as u64;
                let waves = bs.div_ceil(workers);
                let service = SimTime::from_nanos(per_image.as_nanos() * waves);
                let busy = SimTime::from_nanos(per_image.as_nanos() * bs);
                (service, busy)
            }
            BackendKind::NvJpeg => {
                let service = self
                    .cal
                    .nvjpeg
                    .decode_time(bs as u32, img.src_width, img.src_height);
                (service, self.cal.nvjpeg.launch_cpu_time(bs as u32))
            }
            BackendKind::Lmdb => {
                unreachable!("LMDB is an offline backend; §5.3 excludes it from inference")
            }
        }
    }

    fn copy_service(&self, items: u32) -> SimTime {
        let bytes = items.max(1) as u64 * Workload::Ilsvrc.decoded_bytes();
        SimTime::from_secs_f64(bytes as f64 / self.cal.infer_gpu.pcie_bytes_per_sec)
    }

    fn infer_service(&self, items: u32) -> SimTime {
        // Contention stretch is already configured on the timing model.
        self.timing.forward_time(items.max(1))
    }

    fn spawn_batch_saturated(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        let bs = self.params.batch_size;
        let batch = Batch {
            arrivals: vec![now; bs as usize],
            requests: Vec::new(),
        };
        self.in_flight += 1;
        self.decode_q.push_back(batch);
        self.try_start_decode(sched);
    }

    fn schedule_next_arrival(&mut self, sched: &mut Scheduler<Ev>) {
        let rate = match self.params.mode {
            DriveMode::Load { rate } | DriveMode::Served { rate } => rate,
            DriveMode::Saturated => return,
        };
        // Bound the run: enough arrivals for the batch budget.
        if self.arrivals_generated >= self.params.batches as u64 * self.params.batch_size as u64 {
            return;
        }
        self.arrivals_generated += 1;
        let gap = self.rng.exponential(1.0 / rate);
        sched.after(SimTime::from_secs_f64(gap), Ev::ArrivalAtServer);
    }

    fn try_start_decode(&mut self, sched: &mut Scheduler<Ev>) {
        // Batches in service sit at the front of `decode_q`; only start a
        // new one if a station is free and an unserved batch exists.
        if self.decode_busy >= self.decode_stations
            || (self.decode_q.len() as u32) <= self.decode_busy
        {
            return;
        }
        let batch = &self.decode_q[self.decode_busy as usize];
        let items = batch.arrivals.len() as u32;
        // Served-mode sample cache: each member request maps to a hot
        // object; hits skip the decode station, misses decode and are
        // inserted with their decode cost as the eviction signal. Copy
        // and infer still process the full batch — only decode shrinks.
        let mut miss_items = items;
        if let Some(st) = &self.serving {
            if let (Some(cache), false) = (&st.cache, batch.requests.is_empty()) {
                let misses: Vec<SampleKey> = batch
                    .requests
                    .iter()
                    .filter_map(|req| {
                        let key = SampleKey::Object {
                            tenant: req.tenant,
                            id: object_id(req.id, st.keys_per_tenant),
                        };
                        cache.lookup(&key).is_none().then_some(key)
                    })
                    .collect();
                miss_items = misses.len() as u32;
                if miss_items == 0 {
                    cache.note_bypass_batch();
                }
                let cost = st.per_image_decode.as_nanos();
                let img = Workload::Ilsvrc;
                for key in misses {
                    cache.insert(
                        key,
                        CachedSample {
                            data: Arc::new(vec![0u8; img.decoded_bytes() as usize]),
                            label: 0,
                            width: 224,
                            height: 224,
                            channels: 3,
                        },
                        cost,
                    );
                }
            }
        }
        self.decode_busy += 1;
        let (service, busy) = if miss_items == 0 {
            (SimTime::ZERO, SimTime::ZERO)
        } else {
            self.decode_service(miss_items)
        };
        self.cpu.add(busy);
        sched.after(service, Ev::DecodeDone);
    }

    fn try_start_copy(&mut self, sched: &mut Scheduler<Ev>) {
        if self.copy_busy || self.copy_q.is_empty() {
            return;
        }
        self.copy_busy = true;
        let items = self
            .copy_q
            .front()
            .expect("copy has a batch")
            .arrivals
            .len() as u32;
        sched.after(self.copy_service(items), Ev::CopyDone);
    }

    fn try_start_infer(&mut self, sched: &mut Scheduler<Ev>) {
        if self.infer_busy || self.infer_q.is_empty() {
            return;
        }
        self.infer_busy = true;
        // Kernel-launch host cost (TensorRT-grade: thin).
        let items = self
            .infer_q
            .front()
            .expect("infer has a batch")
            .arrivals
            .len() as u32;
        let service = self.infer_service(items);
        self.cpu.add(self.timing.launch_cpu_time(service, false));
        sched.after(service, Ev::InferDone);
    }

    /// One client request reaches the serving layer (Served mode): sample
    /// its tenant from the configured load shares, stamp its deadline, and
    /// offer it to the admission controller.
    fn serving_arrival(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        let u = self.rng.uniform();
        let st = self
            .serving
            .as_mut()
            .expect("Served mode has serving state");
        let tenant = st
            .tenant_cdf
            .iter()
            .find(|&&(_, c)| u < c)
            .or(st.tenant_cdf.last())
            .map(|&(id, _)| id)
            .unwrap_or(0);
        let req = ServeRequest {
            id: st.next_id,
            tenant,
            arrival: now,
            deadline: now + st.slo,
        };
        st.next_id += 1;
        let _ = st.admission.offer(req, now);
        self.pump_serving(now, sched);
    }

    /// Moves admitted requests from the admission queue into the dynamic
    /// batcher and dispatches closed batches, subject to backpressure:
    /// at most `decode_stations + 2` batches may occupy the pipeline, so
    /// overload backlog accumulates in the admission queue where the
    /// shedding policy can act on it.
    fn pump_serving(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.serving.is_none() {
            return;
        }
        let room = self.decode_stations as usize + 2;
        let mut dispatched = false;
        loop {
            let in_pipeline = self.decode_q.len() + self.copy_q.len() + self.infer_q.len();
            // Dispatch-time backstop: a queued request whose deadline
            // cannot survive the forming wait plus the pipeline at its
            // *current* occupancy would only waste downstream capacity on
            // a late answer — shed it before it costs anything.
            let st = self.serving.as_mut().expect("checked above");
            let lead = st.linger
                + st.pass
                + SimTime::from_nanos(st.bottleneck.as_nanos() * in_pipeline as u64);
            let _ = st.admission.shed_unservable(now, lead);
            if in_pipeline >= room {
                break;
            }
            let Some(req) = st.admission.pop(now) else {
                break;
            };
            if let Some(closed) = st.former.push(req, now) {
                st.armed_generation = None;
                self.decode_q.push_back(Batch {
                    arrivals: closed.requests.iter().map(|r| r.arrival).collect(),
                    requests: closed.requests,
                });
                dispatched = true;
            }
        }
        // Arm the linger timer for the batch now forming (at most one live
        // timer per generation; Scheduler::at clamps past instants to now).
        let st = self.serving.as_mut().expect("checked above");
        if let Some(deadline) = st.former.linger_deadline() {
            let generation = st.former.generation();
            if st.armed_generation != Some(generation) {
                st.armed_generation = Some(generation);
                sched.at(deadline, Ev::LingerExpired { generation });
            }
        }
        if dispatched {
            self.try_start_decode(sched);
        }
    }
}

impl SimModel for InferenceSim {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Kickoff => match self.params.mode {
                DriveMode::Saturated => {
                    // Keep enough batches in flight that every decode
                    // station plus the copy and infer stages stay busy.
                    for _ in 0..(self.decode_stations + 2) {
                        self.spawn_batch_saturated(now, sched);
                    }
                }
                DriveMode::Load { .. } | DriveMode::Served { .. } => {
                    self.schedule_next_arrival(sched);
                }
            },
            Ev::ArrivalAtServer => {
                // NIC transfer time shifts the effective arrival instant;
                // the paper measures from server receipt, so `now` is it.
                if self.serving.is_some() {
                    self.serving_arrival(now, sched);
                } else {
                    self.pending.push(now);
                    if self.pending.len() >= self.params.batch_size as usize {
                        let arrivals = std::mem::take(&mut self.pending);
                        self.decode_q.push_back(Batch {
                            arrivals,
                            requests: Vec::new(),
                        });
                        self.try_start_decode(sched);
                    }
                }
                self.schedule_next_arrival(sched);
            }
            Ev::LingerExpired { generation } => {
                // Close the forming batch if this timer is still current.
                // Linger closes bypass the backpressure gate: a request
                // that waited `max_linger` must ship, not wait for room.
                let mut dispatched = false;
                if let Some(st) = self.serving.as_mut() {
                    if let Some(closed) = st.former.close_if_due(now, generation) {
                        st.armed_generation = None;
                        self.decode_q.push_back(Batch {
                            arrivals: closed.requests.iter().map(|r| r.arrival).collect(),
                            requests: closed.requests,
                        });
                        dispatched = true;
                    }
                }
                if dispatched {
                    self.try_start_decode(sched);
                    self.pump_serving(now, sched);
                }
            }
            Ev::DecodeDone => {
                self.decode_busy -= 1;
                let batch = self.decode_q.pop_front().expect("decode had a batch");
                if self.params.direct_gpu_dma {
                    // Peer DMA: decoded pixels landed in device memory
                    // already; go straight to the inference station.
                    self.infer_q.push_back(batch);
                    self.try_start_infer(sched);
                } else {
                    self.copy_q.push_back(batch);
                    self.try_start_copy(sched);
                }
                self.try_start_decode(sched);
            }
            Ev::CopyDone => {
                self.copy_busy = false;
                let batch = self.copy_q.pop_front().expect("copy had a batch");
                self.infer_q.push_back(batch);
                self.try_start_infer(sched);
                self.try_start_copy(sched);
            }
            Ev::InferDone => {
                self.infer_busy = false;
                let batch = self.infer_q.pop_front().expect("infer had a batch");
                self.batches_done += 1;
                if self.batches_done == self.params.warmup {
                    self.warmup_at = Some(now);
                }
                let past_warmup = self.batches_done > self.params.warmup;
                if past_warmup {
                    self.completed_after_warmup += batch.arrivals.len() as u64;
                    for &arr in &batch.arrivals {
                        self.latency.record(now.saturating_sub(arr));
                    }
                }
                if let Some(st) = self.serving.as_mut() {
                    for req in &batch.requests {
                        let good = st.instruments.on_completed(req, now);
                        if good && past_warmup {
                            st.good_after_warmup += 1;
                        }
                    }
                }
                self.done_at = now;
                // Host response path (serialisation, send) — charged per
                // image to the backend's host budget.
                let resp = SimTime::from_nanos(
                    2_000 * batch.arrivals.len() as u64, // 2 µs/response
                );
                self.cpu.add(resp);
                if self.params.mode == DriveMode::Saturated
                    && self.batches_done < self.params.batches
                {
                    self.in_flight -= 1;
                    self.spawn_batch_saturated(now, sched);
                }
                // The station must always pull the next queued batch —
                // gating this on the batch budget strands the queue and
                // collapses Load-mode throughput.
                self.try_start_infer(sched);
                // A batch left the pipeline: the backpressure gate opened,
                // so the serving layer can pull more from its queue.
                self.pump_serving(now, sched);
            }
        }
    }
}

impl InferenceSim {
    /// Runs one experiment.
    pub fn run(cal: Calibration, params: InferenceParams) -> InferenceOutcome {
        let warmup = params.warmup;
        let batches = params.batches;
        let bs = params.batch_size;
        let mut sim = Simulation::new(InferenceSim::new(cal, params));
        sim.seed(SimTime::ZERO, Ev::Kickoff);
        // Load mode generates arrivals indefinitely; cap the run.
        let _ = sim.run_until(SimTime::from_secs(3600), 50_000_000);
        let mut model = sim.into_model();
        assert!(
            model.batches_done >= batches.min(model.batches_done.max(warmup + 1)),
            "inference sim made no post-warmup progress"
        );
        let start = model.warmup_at.unwrap_or(SimTime::ZERO);
        let window = model.done_at.saturating_sub(start);
        let throughput = if window == SimTime::ZERO {
            0.0
        } else {
            model.completed_after_warmup as f64 / window.as_secs_f64()
        };
        let _ = bs;
        let serving = model.serving.as_ref().map(|st| {
            let snapshot = PipelineSnapshot::from_parts(st.registry.snapshot(), Vec::new());
            let goodput = if window == SimTime::ZERO {
                0.0
            } else {
                st.good_after_warmup as f64 / window.as_secs_f64()
            };
            ServingOutcome {
                offered: snapshot.serving.offered,
                admitted: snapshot.serving.admitted,
                rejected: snapshot.serving.rejected,
                shed: snapshot.serving.shed,
                completed: snapshot.serving.completed,
                good: snapshot.serving.good,
                goodput,
                snapshot,
            }
        });
        InferenceOutcome {
            throughput,
            mean_latency: model.latency.mean(),
            p50_latency: model.latency.median(),
            p99_latency: model.latency.p99(),
            cpu_cores: model.cpu.cores(model.done_at),
            sim_time: model.done_at,
            completed: model.completed_after_warmup,
            serving,
        }
    }

    /// Convenience: saturated throughput for (model, backend, batch).
    pub fn saturated_throughput(
        cal: &Calibration,
        model: ModelZoo,
        backend: BackendKind,
        batch_size: u32,
    ) -> f64 {
        InferenceSim::run(
            cal.clone(),
            InferenceParams::paper(model, backend, batch_size),
        )
        .throughput
    }

    /// Runs one [`DriveMode::Served`] experiment at `rate` requests/s.
    pub fn served(
        cal: &Calibration,
        model: ModelZoo,
        backend: BackendKind,
        batch_size: u32,
        cfg: ServingConfig,
        rate: f64,
        seed: u64,
    ) -> InferenceOutcome {
        let mut params = InferenceParams::paper(model, backend, batch_size);
        params.mode = DriveMode::Served { rate };
        params.serving = Some(cfg);
        params.seed = seed;
        InferenceSim::run(cal.clone(), params)
    }

    /// Open-loop overload sweep: measures saturated capacity, then drives
    /// the serving layer at `capacity × m` for every multiplier `m`
    /// (0.5×–3× is the canonical axis). This is the graceful-degradation
    /// experiment the serving layer exists for: with shedding enabled,
    /// goodput plateaus at capacity while admitted-request latency stays
    /// inside the SLO; without it, the admission queue grows without bound
    /// and every latency percentile blows through the deadline.
    pub fn overload_sweep(
        cal: &Calibration,
        model: ModelZoo,
        backend: BackendKind,
        batch_size: u32,
        cfg: ServingConfig,
        multipliers: &[f64],
        seed: u64,
    ) -> Vec<OverloadPoint> {
        Self::overload_sweep_grid(
            cal,
            model,
            backend,
            batch_size,
            cfg,
            &SweepGrid::with_multipliers(multipliers),
            seed,
        )
    }

    /// [`InferenceSim::overload_sweep`] with the full grid as a parameter:
    /// the multiplier axis *and* the per-point run length come from
    /// `grid`, so callers can trade sweep resolution against runtime
    /// without forking the driver.
    pub fn overload_sweep_grid(
        cal: &Calibration,
        model: ModelZoo,
        backend: BackendKind,
        batch_size: u32,
        cfg: ServingConfig,
        grid: &SweepGrid,
        seed: u64,
    ) -> Vec<OverloadPoint> {
        assert!(grid.batches > grid.warmup, "warmup eats the sweep budget");
        let capacity = Self::saturated_throughput(cal, model, backend, batch_size);
        grid.multipliers
            .iter()
            .map(|&m| {
                assert!(m > 0.0, "offered-load multiplier must be positive");
                let rate = capacity * m;
                let mut params = InferenceParams::paper(model, backend, batch_size);
                params.mode = DriveMode::Served { rate };
                params.serving = Some(cfg.clone());
                params.seed = seed;
                params.batches = grid.batches;
                params.warmup = grid.warmup;
                OverloadPoint {
                    multiplier: m,
                    offered_rate: rate,
                    capacity,
                    outcome: Self::run(cal.clone(), params),
                }
            })
            .collect()
    }

    /// Convenience: latency at `utilisation` of saturated capacity.
    pub fn loaded_latency(
        cal: &Calibration,
        model: ModelZoo,
        backend: BackendKind,
        batch_size: u32,
        utilisation: f64,
    ) -> InferenceOutcome {
        assert!((0.0..1.0).contains(&utilisation));
        let cap = Self::saturated_throughput(cal, model, backend, batch_size);
        let mut params = InferenceParams::paper(model, backend, batch_size);
        params.mode = DriveMode::Load {
            rate: cap * utilisation,
        };
        // Fewer batches: open-loop runs are slower per batch.
        params.batches = 150;
        params.warmup = 25;
        InferenceSim::run(cal.clone(), params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::paper()
    }

    #[test]
    fn dlbooster_saturates_near_fpga_plateau() {
        let tp = InferenceSim::saturated_throughput(
            &cal(),
            ModelZoo::GoogLeNet,
            BackendKind::DlBooster,
            32,
        );
        // Fig. 7(a) plateau: ≈5.5–6 k img/s.
        assert!(
            (4_500.0..7_000.0).contains(&tp),
            "DLBooster GoogLeNet bs32: {tp:.0}"
        );
    }

    #[test]
    fn fig7_ordering_at_large_batch() {
        let c = cal();
        for model in [ModelZoo::GoogLeNet, ModelZoo::ResNet50] {
            let bs = model.paper_batch_size();
            let dlb = InferenceSim::saturated_throughput(&c, model, BackendKind::DlBooster, bs);
            let cpu = InferenceSim::saturated_throughput(&c, model, BackendKind::CpuBased, bs);
            let nv = InferenceSim::saturated_throughput(&c, model, BackendKind::NvJpeg, bs);
            assert!(
                dlb > cpu && cpu > nv,
                "{}: DLB {dlb:.0} / CPU {cpu:.0} / nvJPEG {nv:.0}",
                model.name()
            );
            // §5.3: DLBooster achieves 1.2×–2.4× the baselines.
            let gain = dlb / nv;
            assert!(
                (1.2..4.0).contains(&gain),
                "{}: DLBooster/nvJPEG gain {gain:.2}",
                model.name()
            );
        }
    }

    #[test]
    fn throughput_grows_with_batch_size() {
        let c = cal();
        let t1 =
            InferenceSim::saturated_throughput(&c, ModelZoo::GoogLeNet, BackendKind::DlBooster, 1);
        let t8 =
            InferenceSim::saturated_throughput(&c, ModelZoo::GoogLeNet, BackendKind::DlBooster, 8);
        let t32 =
            InferenceSim::saturated_throughput(&c, ModelZoo::GoogLeNet, BackendKind::DlBooster, 32);
        assert!(t8 > t1 && t32 >= t8 * 0.95, "{t1:.0} → {t8:.0} → {t32:.0}");
    }

    #[test]
    fn fig8_latency_ordering_at_bs1() {
        let c = cal();
        let dlb =
            InferenceSim::loaded_latency(&c, ModelZoo::GoogLeNet, BackendKind::DlBooster, 1, 0.6);
        let nv = InferenceSim::loaded_latency(&c, ModelZoo::GoogLeNet, BackendKind::NvJpeg, 1, 0.6);
        let cpu =
            InferenceSim::loaded_latency(&c, ModelZoo::GoogLeNet, BackendKind::CpuBased, 1, 0.6);
        // Fig. 8(a) bs=1: 1.2 ms (DLB) < 1.8 ms (nvJPEG) < 3.4 ms (CPU).
        assert!(
            dlb.p50_latency < nv.p50_latency && nv.p50_latency < cpu.p50_latency,
            "DLB {} / nvJPEG {} / CPU {}",
            dlb.p50_latency,
            nv.p50_latency,
            cpu.p50_latency
        );
        assert!(
            dlb.p50_latency < SimTime::from_millis(3),
            "bs=1 DLBooster latency {}",
            dlb.p50_latency
        );
        // Paper's headline: DLBooster cuts latency by ≈1/3 vs CPU-based.
        let cut = 1.0 - dlb.p50_latency.as_secs_f64() / cpu.p50_latency.as_secs_f64();
        assert!(cut > 0.25, "latency cut {cut:.2}");
    }

    #[test]
    fn latency_grows_with_batch_size() {
        let c = cal();
        let small =
            InferenceSim::loaded_latency(&c, ModelZoo::Vgg16, BackendKind::DlBooster, 2, 0.5);
        let large =
            InferenceSim::loaded_latency(&c, ModelZoo::Vgg16, BackendKind::DlBooster, 16, 0.5);
        assert!(
            large.p50_latency > small.p50_latency,
            "Fig. 8 shape: {} vs {}",
            large.p50_latency,
            small.p50_latency
        );
    }

    #[test]
    fn fig9_cpu_cost_ordering() {
        let c = cal();
        let bs = 32;
        let cpu = InferenceSim::run(
            c.clone(),
            InferenceParams::paper(ModelZoo::GoogLeNet, BackendKind::CpuBased, bs),
        );
        let nv = InferenceSim::run(
            c.clone(),
            InferenceParams::paper(ModelZoo::GoogLeNet, BackendKind::NvJpeg, bs),
        );
        let dlb = InferenceSim::run(
            c,
            InferenceParams::paper(ModelZoo::GoogLeNet, BackendKind::DlBooster, bs),
        );
        // Fig. 9: CPU-based 7–14, nvJPEG ≈1.5, DLBooster ≈0.5.
        assert!(cpu.cpu_cores > 5.0, "CPU-based {:.1}", cpu.cpu_cores);
        assert!(
            (0.3..3.5).contains(&nv.cpu_cores),
            "nvJPEG {:.2}",
            nv.cpu_cores
        );
        assert!(dlb.cpu_cores < 1.2, "DLBooster {:.2}", dlb.cpu_cores);
        assert!(cpu.cpu_cores > nv.cpu_cores && nv.cpu_cores > dlb.cpu_cores);
    }

    #[test]
    fn more_fpgas_break_the_decode_plateau() {
        // §5.3 discussion: the GoogLeNet bs>=16 plateau is the FPGA decode
        // bound; a second device raises it until the GPU binds.
        let c = cal();
        let mut one = InferenceParams::paper(ModelZoo::GoogLeNet, BackendKind::DlBooster, 32);
        one.n_fpgas = 1;
        let mut two = one.clone();
        two.n_fpgas = 2;
        let t1 = InferenceSim::run(c.clone(), one).throughput;
        let t2 = InferenceSim::run(c, two).throughput;
        assert!(
            t2 > t1 * 1.3,
            "second FPGA must lift the plateau: {t1:.0} -> {t2:.0}"
        );
    }

    #[test]
    fn direct_gpu_dma_lowers_latency() {
        // Paper §7 future work (2): writing decoded data straight to the
        // GPU removes the host bounce. Latency must drop; throughput must
        // not regress (the copy stage was never the bottleneck, so gains
        // are latency-side).
        let c = cal();
        let mut base = InferenceParams::paper(ModelZoo::ResNet50, BackendKind::DlBooster, 16);
        base.mode = DriveMode::Load { rate: 2_000.0 };
        base.batches = 150;
        base.warmup = 25;
        let mut direct = base.clone();
        direct.direct_gpu_dma = true;
        let base_out = InferenceSim::run(c.clone(), base);
        let direct_out = InferenceSim::run(c, direct);
        assert!(
            direct_out.p50_latency < base_out.p50_latency,
            "direct DMA must cut latency: {} vs {}",
            direct_out.p50_latency,
            base_out.p50_latency
        );
        // The saved hop is the PCIe copy of one batch.
        let saved = base_out.p50_latency.saturating_sub(direct_out.p50_latency);
        assert!(
            saved.as_secs_f64() > 0.0 && saved < SimTime::from_millis(5),
            "saved {saved}"
        );
    }

    #[test]
    fn sweep_grid_defaults_match_the_canonical_axis() {
        let grid = SweepGrid::default();
        assert_eq!(grid.multipliers, OVERLOAD_MULTIPLIERS.to_vec());
        assert_eq!((grid.batches, grid.warmup), (300, 50));
        let custom = SweepGrid::with_multipliers(&[1.0, 4.0]);
        assert_eq!(custom.multipliers, vec![1.0, 4.0]);
        assert_eq!((custom.batches, custom.warmup), (300, 50));
        let quick = SweepGrid::quick();
        assert!(quick.batches < grid.batches && quick.batches > quick.warmup);
    }

    #[test]
    #[should_panic(expected = "offline backend")]
    fn lmdb_rejected_for_inference() {
        let _ = InferenceSim::saturated_throughput(&cal(), ModelZoo::Vgg16, BackendKind::Lmdb, 8);
    }

    #[test]
    fn served_sample_cache_lifts_goodput_under_overload() {
        use dlb_serving::ShedPolicy;
        let c = cal();
        let capacity =
            InferenceSim::saturated_throughput(&c, ModelZoo::GoogLeNet, BackendKind::CpuBased, 8);
        let cfg =
            ServingConfig::five_clients(8, SimTime::from_millis(25), ShedPolicy::DeadlineAware);
        let mut base = InferenceParams::paper(ModelZoo::GoogLeNet, BackendKind::CpuBased, 8);
        base.mode = DriveMode::Served {
            rate: capacity * 1.5,
        };
        base.serving = Some(cfg);
        base.seed = 13;
        base.batches = 200;
        base.warmup = 30;
        let mut cached = base.clone();
        // 5 tenants × 32 hot objects ≈ 24 MB of decoded frames: fits.
        cached.sample_cache_bytes = 64 << 20;
        cached.cache_keys_per_tenant = 32;
        let plain = InferenceSim::run(c.clone(), base).serving.unwrap();
        let with_cache = InferenceSim::run(c, cached).serving.unwrap();
        let cm = &with_cache.snapshot.cache;
        assert!(cm.hits > 0, "hot objects must produce cache hits");
        assert_eq!(cm.hits + cm.misses, cm.lookups);
        assert!(
            !cm.tenants.is_empty(),
            "Served mode must partition the cache per tenant"
        );
        assert_eq!(
            with_cache.snapshot.invariant_violations(),
            Vec::<String>::new()
        );
        // Hits skip the decode bottleneck, so overload goodput rises.
        assert!(
            with_cache.goodput > plain.goodput,
            "cached {:.0}/s vs plain {:.0}/s",
            with_cache.goodput,
            plain.goodput
        );
    }
}

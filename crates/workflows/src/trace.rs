//! Critical-path reporting: fold a [`CriticalPathReport`] from `dlb-trace`
//! into the repo's standard [`FigureReport`] plane, alongside the paper
//! figures. One row per stage (service-busy time, utilization, span
//! count), with the headline bottleneck sentence — "`cpu.decode` is the
//! binding stage at 83% utilization" — and the mean queue/service split
//! as notes.

use crate::report::{fmt_ratio, FigureReport, Row};
use dlb_trace::CriticalPathReport;

/// Renders `report` as the "Critical path" figure.
pub fn critical_path_figure(report: &CriticalPathReport) -> FigureReport {
    let mut rep = FigureReport::new(
        "Critical path",
        "Per-stage service load and pipeline bottleneck (from dlb-trace spans)",
        &["stage", "busy (ms)", "utilization", "spans"],
    );
    for s in &report.stages {
        rep.push_row(Row::new(&[
            s.stage.to_string(),
            format!("{:.3}", s.busy_ns as f64 / 1e6),
            fmt_ratio(s.utilization),
            s.spans.to_string(),
        ]));
    }
    match report.bottleneck() {
        Some(top) => rep.note(format!(
            "{} is the binding stage at {:.0}% utilization",
            top.stage,
            top.utilization * 100.0
        )),
        None => rep.note("no service spans recorded"),
    }
    let (queue, service, unattributed) = report.mean_split();
    rep.note(format!(
        "mean per-batch split: queue {:.3} ms / service {:.3} ms / unattributed {:.3} ms \
         over {} batches",
        queue / 1e6,
        service / 1e6,
        unattributed / 1e6,
        report.batches.len()
    ));
    if report.dropped > 0 {
        rep.note(format!(
            "{} spans dropped at the ring — attribution is best-effort",
            report.dropped
        ));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_trace::{stages, SpanKind, Tracer};

    #[test]
    fn figure_names_the_binding_stage() {
        let t = Tracer::new();
        for i in 0..5u64 {
            let b = t.next_batch_id();
            t.span_ns(
                b,
                stages::QUEUE_DELIVER,
                SpanKind::Queue,
                i * 100,
                i * 100 + 15,
            );
            t.span_ns(
                b,
                stages::CPU_DECODE,
                SpanKind::Service,
                i * 100 + 15,
                i * 100 + 95,
            );
        }
        let rep = critical_path_figure(&t.snapshot().critical_path());
        assert_eq!(rep.rows.len(), 1, "one service stage: {:?}", rep.rows);
        assert_eq!(rep.rows[0].cells[0], stages::CPU_DECODE);
        assert!(
            rep.notes
                .iter()
                .any(|n| n.contains("cpu.decode is the binding stage at")),
            "{:?}",
            rep.notes
        );
        // Queue wait shows up in the split note, not the stage table.
        assert!(rep.notes.iter().any(|n| n.contains("queue")));
    }

    #[test]
    fn empty_trace_renders_without_stages() {
        let t = Tracer::new();
        let rep = critical_path_figure(&t.snapshot().critical_path());
        assert!(rep.rows.is_empty());
        assert!(rep.notes.iter().any(|n| n.contains("no service spans")));
    }
}

//! Per-figure sweep drivers: each function regenerates one table/figure of
//! the paper and returns a [`FigureReport`] with paper-expected values in
//! the notes.

use crate::calibration::{BackendKind, Calibration};
use crate::cluster::cluster_degradation_figure;
use crate::economics::{analyze, EconomicsInputs};
use crate::inference::{InferenceSim, SweepGrid};
use crate::report::{fmt_cores, fmt_rate, fmt_ratio, goodput_vs_offered_load, FigureReport, Row};
use crate::training::{TrainBackend, TrainingParams, TrainingSim};
use dlb_gpu::ModelZoo;
use dlb_serving::{ServingConfig, ShedPolicy};
use dlb_simcore::SimTime;

/// Batch-size axis of Figs. 7/8 for a model (…32, ResNet-50 goes to 64).
pub fn batch_axis(model: ModelZoo) -> Vec<u32> {
    let mut axis = vec![1, 2, 4, 8, 16, 32];
    if model == ModelZoo::ResNet50 {
        axis.push(64);
    }
    axis
}

/// The inference models of Figs. 7–9.
pub fn inference_models() -> [ModelZoo; 3] {
    [ModelZoo::GoogLeNet, ModelZoo::Vgg16, ModelZoo::ResNet50]
}

/// The training models of Figs. 5–6.
pub fn training_models() -> [ModelZoo; 3] {
    [ModelZoo::LeNet5, ModelZoo::AlexNet, ModelZoo::ResNet18]
}

/// Figure 2: the motivation experiment — AlexNet/Caffe on P100s.
/// (a) throughput under the default configuration (2 decode threads/GPU for
/// the CPU path, per-GPU LMDB readers) vs the upper boundary;
/// (b) CPU cores needed to reach maximum throughput.
pub fn fig2_motivation(cal: &Calibration) -> FigureReport {
    let mut rep = FigureReport::new(
        "Figure 2",
        "AlexNet training motivation: default-config throughput and max-perf CPU cost",
        &["config", "gpus", "throughput (img/s)", "CPU cores"],
    );
    for gpus in [1u32, 2] {
        // Upper boundary.
        let ideal = TrainingSim::run(
            cal.clone(),
            TrainingParams::paper(ModelZoo::AlexNet, TrainBackend::Ideal, gpus),
        );
        rep.push_row(Row::new(&[
            "upper-boundary".to_string(),
            gpus.to_string(),
            fmt_rate(ideal.throughput),
            "-".to_string(),
        ]));
        // CPU-based, default config: 2 decode threads per GPU.
        let mut p = TrainingParams::paper(
            ModelZoo::AlexNet,
            TrainBackend::Kind(BackendKind::CpuBased),
            gpus,
        );
        p.cpu_workers = 2 * gpus;
        let dflt = TrainingSim::run(cal.clone(), p);
        rep.push_row(Row::new(&[
            "CPU-based (default)".to_string(),
            gpus.to_string(),
            fmt_rate(dflt.throughput),
            fmt_cores(dflt.cpu_cores),
        ]));
        // CPU-based, max performance: enough workers to feed the GPUs.
        let max = TrainingSim::run(
            cal.clone(),
            TrainingParams::paper(
                ModelZoo::AlexNet,
                TrainBackend::Kind(BackendKind::CpuBased),
                gpus,
            ),
        );
        rep.push_row(Row::new(&[
            "CPU-based (max)".to_string(),
            gpus.to_string(),
            fmt_rate(max.throughput),
            fmt_cores(max.cpu_cores),
        ]));
        // LMDB.
        let lmdb = TrainingSim::run(
            cal.clone(),
            TrainingParams::paper(
                ModelZoo::AlexNet,
                TrainBackend::Kind(BackendKind::Lmdb),
                gpus,
            ),
        );
        rep.push_row(Row::new(&[
            "LMDB".to_string(),
            gpus.to_string(),
            fmt_rate(lmdb.throughput),
            fmt_cores(lmdb.cpu_cores),
        ]));
    }
    rep.note("paper (b): CPU-based 2346/4363, LMDB 2446/3200, Ideal 2496/4652 img/s (1/2 GPUs)");
    rep.note("paper (a): default CPU config reaches only ~25% of GPU performance");
    rep
}

/// Figure 5: training throughput per model × backend × GPU count.
pub fn fig5_training_throughput(cal: &Calibration) -> FigureReport {
    let mut rep = FigureReport::new(
        "Figure 5",
        "Training throughput (images/s) for LeNet-5/AlexNet/ResNet-18",
        &["model", "backend", "1 GPU", "2 GPU", "2-GPU scaling"],
    );
    for model in training_models() {
        for backend in [
            TrainBackend::Kind(BackendKind::CpuBased),
            TrainBackend::Kind(BackendKind::Lmdb),
            TrainBackend::Kind(BackendKind::DlBooster),
            TrainBackend::Ideal,
        ] {
            let one = TrainingSim::run(cal.clone(), TrainingParams::paper(model, backend, 1));
            let two = TrainingSim::run(cal.clone(), TrainingParams::paper(model, backend, 2));
            let label = match backend {
                TrainBackend::Ideal => "upper-boundary",
                TrainBackend::Kind(k) => k.label(),
            };
            rep.push_row(Row::new(&[
                model.name().to_string(),
                label.to_string(),
                fmt_rate(one.throughput),
                fmt_rate(two.throughput),
                fmt_ratio(two.throughput / one.throughput.max(1.0)),
            ]));
        }
    }
    rep.note("paper: DLBooster approaches the GPU bound; LMDB loses ~30% at 2 GPUs (AlexNet)");
    rep.note("paper: DLBooster beats CPU-based/LMDB by ~30%/20% on ILSVRC-scale models");
    rep
}

/// Figure 6: training CPU cost per model × backend, plus the Fig. 6(d)
/// DLBooster breakdown on ResNet-18.
pub fn fig6_training_cpu_cost(cal: &Calibration) -> FigureReport {
    let mut rep = FigureReport::new(
        "Figure 6",
        "Training CPU cost (# cores) and DLBooster breakdown",
        &["model", "backend", "1-GPU cores", "2-GPU cores"],
    );
    for model in training_models() {
        for kind in [
            BackendKind::CpuBased,
            BackendKind::Lmdb,
            BackendKind::DlBooster,
        ] {
            let one = TrainingSim::run(
                cal.clone(),
                TrainingParams::paper(model, TrainBackend::Kind(kind), 1),
            );
            let two = TrainingSim::run(
                cal.clone(),
                TrainingParams::paper(model, TrainBackend::Kind(kind), 2),
            );
            rep.push_row(Row::new(&[
                model.name().to_string(),
                kind.label().to_string(),
                fmt_cores(one.cpu_cores),
                fmt_cores(two.cpu_cores),
            ]));
        }
    }
    // Fig. 6(d): DLBooster ResNet-18 per-activity breakdown.
    let d = TrainingSim::run(
        cal.clone(),
        TrainingParams::paper(
            ModelZoo::ResNet18,
            TrainBackend::Kind(BackendKind::DlBooster),
            1,
        ),
    );
    let (pre, tra, lau, upd) = d.cpu_breakdown;
    rep.note(format!(
        "Fig 6(d) breakdown (ResNet-18, DLBooster): preprocessing {:.2} / transform {:.2} / launch {:.2} / update {:.2} cores",
        pre, tra, lau, upd
    ));
    rep.note("paper 6(d): 0.3 preprocessing / 0.15 transform / 0.95 launch / 0.12 update");
    rep.note(
        "paper: DLBooster ~1.5 cores/GPU, LMDB ~2.5, CPU-based ~12 (AlexNet) / ~7 (ResNet-18)",
    );
    rep
}

/// Figure 7: inference throughput over the batch-size axis.
pub fn fig7_inference_throughput(cal: &Calibration) -> FigureReport {
    let mut rep = FigureReport::new(
        "Figure 7",
        "Inference throughput (images/s) vs batch size (fp16 Tensor Cores)",
        &[
            "model",
            "batch",
            "CPU-based",
            "nvJPEG",
            "DLBooster",
            "DLB/nvJPEG",
        ],
    );
    for model in inference_models() {
        for &bs in &batch_axis(model) {
            let cpu = InferenceSim::saturated_throughput(cal, model, BackendKind::CpuBased, bs);
            let nv = InferenceSim::saturated_throughput(cal, model, BackendKind::NvJpeg, bs);
            let dlb = InferenceSim::saturated_throughput(cal, model, BackendKind::DlBooster, bs);
            rep.push_row(Row::new(&[
                model.name().to_string(),
                bs.to_string(),
                fmt_rate(cpu),
                fmt_rate(nv),
                fmt_rate(dlb),
                fmt_ratio(dlb / nv.max(1.0)),
            ]));
        }
    }
    rep.note("paper: DLBooster 1.2x-2.4x the baselines; nvJPEG degrades ~40% as batch grows");
    rep.note("paper: DLBooster plateaus at bs>=16 on GoogLeNet (FPGA decode bound, Fig 7a)");
    rep
}

/// Figure 8: inference latency over the batch-size axis (60 % load).
pub fn fig8_inference_latency(cal: &Calibration) -> FigureReport {
    let mut rep = FigureReport::new(
        "Figure 8",
        "Inference latency (ms, median) vs batch size at 60% load",
        &["model", "batch", "CPU-based", "nvJPEG", "DLBooster"],
    );
    for model in inference_models() {
        for &bs in &batch_axis(model) {
            let cpu = InferenceSim::loaded_latency(cal, model, BackendKind::CpuBased, bs, 0.6);
            let nv = InferenceSim::loaded_latency(cal, model, BackendKind::NvJpeg, bs, 0.6);
            let dlb = InferenceSim::loaded_latency(cal, model, BackendKind::DlBooster, bs, 0.6);
            rep.push_row(Row::new(&[
                model.name().to_string(),
                bs.to_string(),
                format!("{:.2}", cpu.p50_latency.as_millis_f64()),
                format!("{:.2}", nv.p50_latency.as_millis_f64()),
                format!("{:.2}", dlb.p50_latency.as_millis_f64()),
            ]));
        }
    }
    rep.note("paper bs=1 (GoogLeNet): 1.2ms DLBooster / 1.8ms nvJPEG / 3.4ms CPU-based");
    rep.note("paper: DLBooster reduces latency by ~1/3; all latencies grow with batch size");
    rep
}

/// Figure 9: inference CPU cost at the largest batch size.
pub fn fig9_inference_cpu_cost(cal: &Calibration) -> FigureReport {
    let mut rep = FigureReport::new(
        "Figure 9",
        "Inference CPU cost (# cores) at the paper's batch sizes",
        &["model", "batch", "CPU-based", "nvJPEG", "DLBooster"],
    );
    for model in inference_models() {
        let bs = model.paper_batch_size();
        let run = |kind| {
            crate::inference::InferenceSim::run(
                cal.clone(),
                crate::inference::InferenceParams::paper(model, kind, bs),
            )
            .cpu_cores
        };
        rep.push_row(Row::new(&[
            model.name().to_string(),
            bs.to_string(),
            fmt_cores(run(BackendKind::CpuBased)),
            fmt_cores(run(BackendKind::NvJpeg)),
            fmt_cores(run(BackendKind::DlBooster)),
        ]));
    }
    rep.note("paper: CPU-based burns 7-14 cores/GPU, nvJPEG ~1.5, DLBooster ~0.5");
    rep
}

/// §5.4 economics table.
pub fn sec54_economics() -> FigureReport {
    let r = analyze(&EconomicsInputs::paper());
    let mut rep = FigureReport::new(
        "Section 5.4",
        "Economic analysis per deployed FPGA decoder",
        &["quantity", "value"],
    );
    rep.push_row(Row::new(&[
        "freed-core revenue ($/h)".to_string(),
        format!("{:.2}", r.freed_core_revenue_per_hour),
    ]));
    rep.push_row(Row::new(&[
        "core revenue ($/year)".to_string(),
        format!("{:.0}", r.core_revenue_per_year),
    ]));
    rep.push_row(Row::new(&[
        "CPU decode power cost ($/h)".to_string(),
        format!("{:.3}", r.cpu_decode_power_cost_per_hour),
    ]));
    rep.push_row(Row::new(&[
        "FPGA power cost ($/h)".to_string(),
        format!("{:.4}", r.fpga_power_cost_per_hour),
    ]));
    rep.push_row(Row::new(&[
        "FPGA amortisation ($/h)".to_string(),
        format!("{:.3}", r.fpga_amortisation_per_hour),
    ]));
    rep.push_row(Row::new(&[
        "net provider benefit ($/h)".to_string(),
        format!("{:.2}", r.net_benefit_per_hour),
    ]));
    rep.push_row(Row::new(&[
        "power saved (W)".to_string(),
        format!("{:.0}", r.watts_saved),
    ]));
    rep.note("paper: core ~$0.10-0.11/h (~$900/yr); 1 FPGA ~ 30 cores; saved cores resell >$1.5/h");
    rep.note("paper: power 25W FPGA vs 130W CPU vs 250W GPU");
    rep
}

pub use crate::inference::OVERLOAD_MULTIPLIERS;

/// Goodput vs offered load through the SLO-aware serving layer (beyond
/// the paper: the ROADMAP's "heavy traffic" regime). GoogLeNet on the
/// DLBooster backend, the paper's five clients as equal-weight tenants,
/// deadline-aware shedding, 50 ms SLO.
pub fn overload_goodput_sweep(cal: &Calibration) -> FigureReport {
    let slo = SimTime::from_millis(50);
    let cfg = ServingConfig::five_clients(32, slo, ShedPolicy::DeadlineAware);
    let points = InferenceSim::overload_sweep_grid(
        cal,
        ModelZoo::GoogLeNet,
        BackendKind::DlBooster,
        32,
        cfg,
        &SweepGrid::default(),
        7,
    );
    let mut rep = goodput_vs_offered_load(
        "GoogLeNet / DLBooster bs32, 5 tenants, deadline-aware shedding, 50 ms SLO",
        &points,
    );
    rep.note("expected: goodput plateaus at capacity beyond 1.0x while p99 stays inside the SLO");
    rep
}

/// Every figure in paper order (the `figures` binary prints these).
pub fn all_figures(cal: &Calibration) -> Vec<FigureReport> {
    vec![
        fig2_motivation(cal),
        fig5_training_throughput(cal),
        fig6_training_cpu_cost(cal),
        fig7_inference_throughput(cal),
        fig8_inference_latency(cal),
        fig9_inference_cpu_cost(cal),
        sec54_economics(),
        overload_goodput_sweep(cal),
        cluster_degradation_figure(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_rows_and_shapes() {
        let rep = fig2_motivation(&Calibration::paper());
        assert_eq!(rep.rows.len(), 8);
        // Default config is far below the bound (paper: ~25 %).
        let ideal: f64 = rep.rows[0].cells[2]
            .replace('k', "000")
            .replace('.', "")
            .parse()
            .unwrap_or(0.0);
        assert!(ideal > 0.0);
    }

    #[test]
    fn fig9_report_has_three_models() {
        let rep = fig9_inference_cpu_cost(&Calibration::paper());
        assert_eq!(rep.rows.len(), 3);
        for row in &rep.rows {
            let cpu: f64 = row.cells[2].parse().unwrap();
            let nv: f64 = row.cells[3].parse().unwrap();
            let dlb: f64 = row.cells[4].parse().unwrap();
            assert!(cpu > nv && nv > dlb, "{:?}", row.cells);
        }
    }

    #[test]
    fn batch_axis_shapes() {
        assert_eq!(batch_axis(ModelZoo::GoogLeNet), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(batch_axis(ModelZoo::ResNet50).last(), Some(&64));
    }
}

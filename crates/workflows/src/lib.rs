//! # dlb-workflows
//!
//! End-to-end experiment runners that regenerate every table and figure of
//! the paper's evaluation (§5) on the discrete-event timing layer, plus the
//! §5.4 economics model.
//!
//! * [`calibration`] — every constant of the timing models, each tied to the
//!   paper sentence (or public spec) that fixes it.
//! * [`training`] — the offline-training DES (Figs. 2, 5, 6): data-parallel
//!   solvers over P100s fed by a backend model, synchronous SGD with
//!   allreduce, warmup-trimmed throughput and CPU-core accounting.
//! * [`inference`] — the online-inference DES (Figs. 7, 8, 9): Poisson
//!   clients over the 40 Gbps NIC, batch assembly, backend decode station,
//!   PCIe copy, contended GPU service, per-request latency — plus the
//!   beyond-paper [`DriveMode::Served`](inference::DriveMode::Served)
//!   overload sweeps through the `dlb-serving` layer (dynamic batching,
//!   admission control, load shedding, per-tenant WFQ).
//! * [`figures`] — per-figure sweep drivers producing [`report`] tables with
//!   paper-expected values alongside measured ones.
//! * [`economics`] — the cost model of §5.4.
//! * [`report`] — plain-text table rendering and JSON export.
//! * [`chaos`] — beyond-paper degraded-mode runs: seeded FPGA wedges with
//!   failover to the CPU backend, reported as a batch-budget-split figure.
//! * [`cluster`] — beyond-paper scale-out: N simulated preprocessing nodes
//!   behind the `dlb-cluster` shard router (consistent-hash placement,
//!   per-tenant quotas, deadline-budget hedging, mid-run chaos kills with
//!   replay), reported as a goodput/p99-vs-killed-nodes figure.
//! * [`trace`] — critical-path figure folded from `dlb-trace` span
//!   snapshots: per-stage service load and the pipeline bottleneck.

pub mod calibration;
pub mod chaos;
pub mod cluster;
pub mod economics;
pub mod figures;
pub mod inference;
pub mod report;
pub mod trace;
pub mod training;

pub use calibration::{BackendKind, Calibration, Workload};
pub use chaos::{degraded_mode_figure, ChaosOutcome, ChaosParams};
pub use cluster::{cluster_degradation_figure, ClusterOutcome, ClusterParams, ClusterSim};
pub use inference::{
    DriveMode, InferenceOutcome, InferenceParams, InferenceSim, OverloadPoint, ServingOutcome,
    SweepGrid, OVERLOAD_MULTIPLIERS,
};
pub use report::{goodput_vs_offered_load, FigureReport, Row, TelemetryReport};
pub use trace::critical_path_figure;
pub use training::{TrainingOutcome, TrainingSim};

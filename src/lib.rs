//! # DLBooster — a Rust reproduction
//!
//! This workspace reproduces **"DLBooster: Boosting End-to-End Deep Learning
//! Workflows with Offloading Data Preprocessing Pipelines"** (Cheng et al.,
//! ICPP 2019): an online data-preprocessing backend that offloads JPEG
//! decode + resize to an FPGA and streams decoded batches to GPU compute
//! engines through a carefully engineered host bridge.
//!
//! No FPGA/GPU hardware is required: every device is rebuilt as a
//! *simulated substrate* with the paper's interfaces and a calibrated timing
//! model, while all host software — the batch memory pool (Algorithm 2), the
//! asynchronous `FPGAReader` (Algorithm 1), the round-robin `Dispatcher`
//! (Algorithm 3), the baselines, and a real from-scratch JPEG codec — is
//! real, tested Rust. See `DESIGN.md` for the substitution table and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quick start
//!
//! ```
//! use dlbooster::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A synthetic ILSVRC-like dataset on a simulated NVMe disk.
//! let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
//! let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, 42), &disk).unwrap();
//!
//! // 2. An FPGA with the paper's 4-way/2-way JPEG decoder mirror.
//! let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
//! device.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
//! let engine = DecoderEngine::start(
//!     device,
//!     Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
//! ).unwrap();
//!
//! // 3. DLBooster: collector → FPGAReader → router → per-engine queues.
//! let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 1));
//! let booster = DlBooster::start(
//!     collector,
//!     FpgaChannel::init(engine, 0),
//!     DlBoosterConfig::training(1, 4, (64, 64), dataset.records.len(), Some(2)),
//! ).unwrap();
//!
//! // 4. Consume decoded batches like a compute engine would.
//! let batch = booster.next_batch(0).unwrap();
//! assert_eq!(batch.len(), 4);
//! booster.recycle(batch.unit);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`cache`] | `dlb-cache` | decoded-sample cache: cost-aware eviction, quarantine, tenant partitions |
//! | [`chaos`] | `dlb-chaos` | seeded fault injection + retry/backoff policies |
//! | [`cluster`] | `dlb-cluster` | shard router: consistent-hash ring, tenant quotas, hedging, node failover |
//! | [`codec`] | `dlb-codec` | from-scratch baseline JPEG + resize + augment |
//! | [`graph`] | `dlb-graph` | composable pipeline graphs: typed stages, build-time validation, seeded augmentation |
//! | [`simcore`] | `dlb-simcore` | deterministic DES engine, queueing, stats |
//! | [`membridge`] | `dlb-membridge` | HugePage batch pool + blocking queues |
//! | [`fpga`] | `dlb-fpga` | FPGA substrate: mirrors, functional engine, timing |
//! | [`gpu`] | `dlb-gpu` | GPU substrate: model zoo, kernels, streams, nvJPEG |
//! | [`storage`] | `dlb-storage` | NVMe model, synthetic datasets, LMDB store |
//! | [`net`] | `dlb-net` | 40 Gbps NIC, framing, client generators |
//! | [`serving`] | `dlb-serving` | SLO-aware serving: dynamic batching, admission control, load shedding, per-tenant WFQ |
//! | [`telemetry`] | `dlb-telemetry` | pipeline metrics, snapshots, stall watchdog, Prometheus export |
//! | [`trace`] | `dlb-trace` | per-batch span tracing, critical-path attribution, Perfetto export |
//! | [`core`] | `dlbooster-core` | the paper's host bridger (Algorithms 1–3) |
//! | [`backends`] | `dlb-backends` | CPU-based / LMDB / nvJPEG baselines |
//! | [`engines`] | `dlb-engines` | NVCaffe-like trainer, TensorRT-like server |
//! | [`workflows`] | `dlb-workflows` | figure-regenerating experiment DES |

pub use dlb_backends as backends;
pub use dlb_cache as cache;
pub use dlb_chaos as chaos;
pub use dlb_cluster as cluster;
pub use dlb_codec as codec;
pub use dlb_engines as engines;
pub use dlb_fpga as fpga;
pub use dlb_gpu as gpu;
pub use dlb_graph as graph;
pub use dlb_membridge as membridge;
pub use dlb_net as net;
pub use dlb_serving as serving;
pub use dlb_simcore as simcore;
pub use dlb_storage as storage;
pub use dlb_telemetry as telemetry;
pub use dlb_trace as trace;
pub use dlb_workflows as workflows;
pub use dlbooster_core as core;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use dlb_backends::{
        CpuBackend, CpuBackendConfig, FailoverBackend, FailoverConfig, LmdbBackend,
        LmdbBackendConfig, NvJpegBackend, NvJpegBackendConfig,
    };
    pub use dlb_cache::{CachedSample, SampleCache, SampleKey};
    pub use dlb_chaos::{
        CancelToken, FaultKind, FaultPlan, Retrier, RetryPolicy, Stage, StageSpec,
    };
    pub use dlb_cluster::{
        BoosterCluster, ClusterInstruments, DedupLedger, HashRing, HedgeConfig, TenantQuotas,
    };
    pub use dlb_codec::{ColorSpace, Image, JpegDecoder, JpegEncoder};
    pub use dlb_engines::{InferenceConfig, InferenceSession, TrainingConfig, TrainingSession};
    pub use dlb_fpga::{
        DecodeCmd, DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice, FpgaTimingModel,
        ImageWorkload, OutputFormat,
    };
    pub use dlb_gpu::{GpuDevice, GpuSpec, GpuTimingModel, ModelZoo, Precision};
    pub use dlb_graph::{
        Chain, DataKind, DecodeDevice, GraphBuilder, GraphConfig, GraphError, PipelineGraph,
        SampleAugmentor, SourceKind, StageSpec as GraphStageSpec,
    };
    pub use dlb_membridge::{BatchUnit, BlockingQueue, MemManager, PoolConfig};
    pub use dlb_net::{ClientPool, NicRx, NicSpec};
    pub use dlb_serving::{ServeRequest, ServingBridge, ServingConfig, ShedPolicy, TenantClass};
    pub use dlb_storage::{Dataset, DatasetSpec, LmdbStore, NvmeDisk, NvmeSpec};
    pub use dlb_telemetry::{PipelineSnapshot, Telemetry};
    pub use dlb_trace::{CriticalPathReport, SpanKind, TraceSnapshot, Tracer};
    pub use dlb_workflows::calibration::{BackendKind, Calibration, Workload};
    pub use dlbooster_core::{
        CombinedResolver, DataCollector, Dispatcher, DlBooster, DlBoosterConfig, FpgaChannel,
        FpgaReader, HostBatch, PreprocessBackend, ReaderConfig,
    };
}

//! The §5.4 economic analysis, as a runnable calculator.
//!
//! ```text
//! cargo run --example economics
//! ```

use dlbooster::workflows::economics::{analyze, EconomicsInputs};
use dlbooster::workflows::figures::sec54_economics;

fn main() {
    println!("{}", sec54_economics().render());

    println!("sensitivity: net provider benefit vs FPGA board price");
    println!("{:<22} {:>16}", "board price ($)", "net benefit ($/h)");
    for price in [1_000.0, 3_000.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0] {
        let mut inputs = EconomicsInputs::paper();
        inputs.fpga_price_per_hour = price / (3.0 * 365.0 * 24.0);
        let r = analyze(&inputs);
        println!("{price:<22.0} {:>16.2}", r.net_benefit_per_hour);
    }

    println!();
    println!("sensitivity: net benefit vs decoder quality (core-equivalents)");
    println!("{:<22} {:>16}", "core-equivalents", "net benefit ($/h)");
    for cores in [5.0, 10.0, 20.0, 30.0, 60.0] {
        let mut inputs = EconomicsInputs::paper();
        inputs.fpga_core_equivalents = cores;
        let r = analyze(&inputs);
        println!("{cores:<22.0} {:>16.2}", r.net_benefit_per_hour);
    }
}

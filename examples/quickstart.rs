//! Quickstart: the smallest complete DLBooster pipeline.
//!
//! Builds a synthetic dataset on a simulated NVMe disk, loads the paper's
//! 4-way-Huffman/2-way-resize JPEG mirror onto a simulated Arria-10, starts
//! the DLBooster backend (FPGAReader + router), and consumes decoded batches
//! the way a compute engine would. One decoded image is written to
//! `target/quickstart_sample.bmp` so you can look at what came out of the
//! "FPGA".
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dlbooster::prelude::*;
use std::sync::Arc;

fn main() {
    // --- data plane: synthetic ILSVRC-like JPEGs on a simulated Optane ---
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset =
        Dataset::build(DatasetSpec::ilsvrc_small(32, 2024), &disk).expect("dataset generation");
    println!(
        "dataset: {} images, {:.1} KB mean encoded size",
        dataset.records.len(),
        dataset.mean_bytes() / 1024.0
    );

    // --- FPGA: load the pluggable decoder mirror, start the engine ---
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .expect("mirror fits the Arria-10");
    let (alm, dsp, bram) = device.utilisation().unwrap();
    println!(
        "mirror loaded: ALM {:.0}% / DSP {:.0}% / BRAM {:.0}% of fabric",
        alm * 100.0,
        dsp * 100.0,
        bram * 100.0
    );
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
    )
    .expect("engine start");

    // --- DLBooster: collector → FPGAReader → round-robin router ---
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 7));
    let batch_size = 8;
    let booster = DlBooster::start(
        collector,
        FpgaChannel::init(engine, 0),
        DlBoosterConfig::training(1, batch_size, (224, 224), dataset.records.len(), Some(4)),
    )
    .expect("booster start");

    // --- consume batches like a compute engine ---
    let mut total_images = 0usize;
    let mut first_pixel_sample = None;
    while let Ok(batch) = booster.next_batch(0) {
        println!(
            "batch {}: {} images, {} KB decoded payload",
            batch.sequence,
            batch.len(),
            batch.unit.used() / 1024
        );
        if first_pixel_sample.is_none() {
            let item = &batch.unit.items()[0];
            let img = Image::from_vec(
                item.width,
                item.height,
                ColorSpace::Rgb,
                batch.unit.item_bytes(0).to_vec(),
            )
            .expect("valid image geometry");
            let bmp = dlbooster::codec::bmp::encode_bmp(&img);
            std::fs::create_dir_all("target").ok();
            std::fs::write("target/quickstart_sample.bmp", &bmp).ok();
            first_pixel_sample = Some(img);
        }
        total_images += batch.len();
        booster.recycle(batch.unit);
    }
    println!("decoded {total_images} images through the simulated FPGA pipeline");
    println!("sample image written to target/quickstart_sample.bmp");

    // --- what would this cost on the paper's hardware? ---
    let model = FpgaTimingModel::paper_config();
    let w = ImageWorkload::ilsvrc_like();
    println!(
        "paper-calibrated FPGA decoder: {:.0} images/s steady-state, {:.0} us single-image latency, bottleneck = {}",
        model.throughput_images_per_sec(&w),
        model.image_latency(&w).as_secs_f64() * 1e6,
        model.bottleneck(&w),
    );
}

//! Composable pipelines: build a typed stage graph, mount it on a real
//! backend, and prove the seeded-augmentation replay contract.
//!
//! Three acts:
//!   1. compose an augmented training graph (decode → resize → random
//!      crop → random flip → normalize) and run two epochs through the
//!      CPU backend;
//!   2. re-run the identical graph from the same seed and show every
//!      epoch — epoch 2 included — replays **bitwise**;
//!   3. show what the validator rejects at build/compile time.
//!
//! ```text
//! cargo run --example composable_graph
//! ```

use dlbooster::prelude::*;
use std::sync::Arc;

const N_IMAGES: usize = 16;
const BATCH: usize = 4;
const EPOCHS: u64 = 2;
const BATCHES_PER_EPOCH: u64 = (N_IMAGES / BATCH) as u64;

/// Runs the graph for `EPOCHS` epochs and returns one payload blob per
/// batch, in delivery order.
fn run(disk: &Arc<NvmeDisk>, dataset: &Dataset, graph: &PipelineGraph, seed: u64) -> Vec<Vec<u8>> {
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let backend = CpuBackend::from_graph(
        collector,
        Arc::new(CombinedResolver::disk_only(Arc::clone(disk))),
        CpuBackendConfig {
            n_engines: 1,
            batch_size: BATCH,
            target_w: 48,
            target_h: 48,
            workers: 1, // single worker → deterministic delivery *order* too
            max_batches: Some(EPOCHS * BATCHES_PER_EPOCH),
            sample_cache: None,
        },
        graph,
        seed,
    )
    .expect("graph mounts on the CPU backend");
    let mut payloads = Vec::new();
    while let Ok(batch) = backend.next_batch(0) {
        payloads.push(batch.unit.payload().to_vec());
        backend.recycle(batch.unit);
    }
    payloads
}

fn main() {
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset =
        Dataset::build(DatasetSpec::ilsvrc_small(N_IMAGES, 2026), &disk).expect("dataset");

    // --- act 1: compose and run an augmented training graph ---------------
    let graph = Chain::new()
        .then(
            "manifest",
            GraphStageSpec::Source {
                kind: SourceKind::Disk,
            },
        )
        .then(
            "decode",
            GraphStageSpec::Decode {
                device: DecodeDevice::Cpu,
            },
        )
        .parallelism(1)
        .then(
            "resize",
            GraphStageSpec::Resize {
                width: 48,
                height: 48,
            },
        )
        .then(
            "crop",
            GraphStageSpec::RandomCrop {
                width: 32,
                height: 32,
            },
        )
        .then("flip", GraphStageSpec::RandomFlip { prob: 0.5 })
        .then(
            "normalize",
            GraphStageSpec::Normalize {
                mean: [127.5; 3],
                scale: [127.5; 3],
            },
        )
        .then("dispatch", GraphStageSpec::Sink)
        .build()
        .expect("well-typed chain");
    let compiled = graph.compile(&GraphConfig::default()).expect("compiles");
    println!(
        "graph compiled: {} augmentation ops, {} output bytes/item ({:?})",
        compiled.plan.ops.len(),
        compiled.output.bytes_per_item(),
        compiled.output.kind,
    );

    let seed = 42;
    let first = run(&disk, &dataset, &graph, seed);
    println!(
        "run A: {} batches over {EPOCHS} epochs from seed {seed}",
        first.len()
    );

    // --- act 2: bitwise replay from the seed ------------------------------
    let second = run(&disk, &dataset, &graph, seed);
    assert_eq!(first, second, "same seed must replay the run bitwise");
    let per_epoch = BATCHES_PER_EPOCH as usize;
    let epoch2 = &first[per_epoch..];
    let epoch2_replay = &second[per_epoch..];
    assert_eq!(epoch2, epoch2_replay);
    println!(
        "run B: bitwise-identical — epoch 2 alone: {} batches, {} payload bytes, all equal",
        epoch2.len(),
        epoch2.iter().map(Vec::len).sum::<usize>(),
    );
    assert_ne!(
        first[..per_epoch],
        first[per_epoch..],
        "distinct epochs draw distinct augmentations"
    );
    println!("epoch 1 vs epoch 2: different crops/flips, as expected");
    let other = run(&disk, &dataset, &graph, seed + 1);
    assert_ne!(first, other, "a different seed draws differently");
    println!("seed {} diverges from seed {seed}, as expected", seed + 1);

    // --- act 3: the validator works for its living ------------------------
    let cyclic = {
        let mut b = GraphBuilder::new();
        let src = b.add(
            "src",
            GraphStageSpec::Source {
                kind: SourceKind::Disk,
            },
        );
        let dec = b.add(
            "decode",
            GraphStageSpec::Decode {
                device: DecodeDevice::Cpu,
            },
        );
        let rsz = b.add(
            "resize",
            GraphStageSpec::Resize {
                width: 32,
                height: 32,
            },
        );
        let sink = b.add("sink", GraphStageSpec::Sink);
        b.connect(src, dec);
        b.connect(dec, rsz);
        b.connect(rsz, sink);
        // a detached flip two-cycle, reachable from nothing
        let f1 = b.add("flip-a", GraphStageSpec::RandomFlip { prob: 0.5 });
        let f2 = b.add("flip-b", GraphStageSpec::RandomFlip { prob: 0.5 });
        b.connect(f1, f2);
        b.connect(f2, f1);
        b.build()
    };
    println!("cycle rejected at build:   {}", cyclic.unwrap_err());
    let oversized =
        dlbooster::graph::augmented_training(DecodeDevice::Cpu, (32, 32), (64, 64), 0.0, None, 1)
            .expect("builds — geometry is a compile-time concern")
            .compile(&GraphConfig::default());
    println!("bad crop rejected at compile: {}", oversized.unwrap_err());
}

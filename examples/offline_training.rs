//! Offline-training scenario (paper §5.2): train a network with different
//! preprocessing backends and compare throughput and CPU cost.
//!
//! Part 1 runs the *functional* pipeline end to end on a small synthetic
//! dataset: real JPEG decode, real queues, the Algorithm-3 dispatcher, and
//! the NVCaffe-like solver loop — DLBooster vs the CPU-based baseline.
//!
//! Part 2 runs the *calibrated DES* at paper scale and prints the Fig. 5/6
//! rows (AlexNet).
//!
//! ```text
//! cargo run --example offline_training
//! ```

use dlbooster::prelude::*;
use dlbooster::workflows::figures;
use std::sync::Arc;

fn functional_run_dlbooster(iterations: u64) {
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(24, 11), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 3));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
    )
    .unwrap();
    let booster: Arc<dyn PreprocessBackend> = Arc::new(
        DlBooster::start(
            collector,
            FpgaChannel::init(engine, 0),
            DlBoosterConfig::training(2, 4, (64, 64), dataset.records.len(), Some(iterations * 2)),
        )
        .unwrap(),
    );
    let gpus: Vec<GpuDevice> = (0..2)
        .map(|i| GpuDevice::new(GpuSpec::tesla_p100(), i))
        .collect();
    let report = TrainingSession::run(
        booster,
        &gpus,
        &TrainingConfig {
            model: ModelZoo::ResNet18,
            batch_size: 4,
            precision: Precision::Fp32,
            iterations,
            time_scale: 0.0, // don't sleep; report modelled time
            gpu_background_share: 0.0,
        },
    );
    println!(
        "[functional] DLBooster + ResNet-18 on 2 simulated P100s: {} images in {} iterations; modelled {:.0} img/s; backend busy {:.1} ms CPU",
        report.images,
        report.iterations,
        report.modelled_throughput,
        report.backend_cpu_nanos as f64 / 1e6,
    );
}

fn functional_run_cpu(iterations: u64) {
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(24, 11), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 3));
    let backend: Arc<dyn PreprocessBackend> = Arc::new(
        CpuBackend::start(
            collector,
            Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
            CpuBackendConfig {
                n_engines: 2,
                batch_size: 4,
                target_w: 64,
                target_h: 64,
                workers: 3,
                max_batches: Some(iterations * 2),
                sample_cache: None,
            },
        )
        .unwrap(),
    );
    let gpus: Vec<GpuDevice> = (0..2)
        .map(|i| GpuDevice::new(GpuSpec::tesla_p100(), i))
        .collect();
    let report = TrainingSession::run(
        backend,
        &gpus,
        &TrainingConfig {
            model: ModelZoo::ResNet18,
            batch_size: 4,
            precision: Precision::Fp32,
            iterations,
            time_scale: 0.0,
            gpu_background_share: 0.0,
        },
    );
    println!(
        "[functional] CPU-based + ResNet-18: {} images; modelled {:.0} img/s; backend burned {:.1} ms of real decode CPU",
        report.images,
        report.modelled_throughput,
        report.backend_cpu_nanos as f64 / 1e6,
    );
}

fn main() {
    println!("== Part 1: functional pipeline (real decode, real queues) ==");
    functional_run_dlbooster(6);
    functional_run_cpu(6);

    println!();
    println!("== Part 2: paper-scale DES (Figs. 5 and 6) ==");
    let cal = Calibration::paper();
    println!("{}", figures::fig5_training_throughput(&cal).render());
    println!("{}", figures::fig6_training_cpu_cost(&cal).render());
}

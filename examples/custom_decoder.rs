//! Pluggable-decoder demo (paper §3.1/§4.1): mirrors are interchangeable
//! bitstreams with resource footprints; the device checks them against its
//! fabric budget, and the timing model prices alternative configurations.
//!
//! ```text
//! cargo run --example custom_decoder
//! ```

use dlbooster::fpga::{
    DecodeCmd, DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice, FpgaTimingModel,
    ImageWorkload, MapResolver, OutputFormat, Submission,
};
use dlbooster::membridge::{MemManager, PoolConfig};
use std::sync::Arc;

/// Runs the audio-spectrogram mirror functionally: PCM in, log-DCT
/// coefficients out — the paper's "speech models" pluggability case.
fn run_audio_mirror() {
    use dlbooster::codec::audio::{pcm_to_le_bytes, synth_pcm, SpectrogramConfig};
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::audio_spectrogram())
        .unwrap();
    let resolver = Arc::new(MapResolver::new());
    let pcm = synth_pcm(16_000, 1); // one second of synthetic speech
    let src = resolver.put_disk(0, pcm_to_le_bytes(&pcm));
    let engine = DecoderEngine::start(device, resolver).unwrap();
    let pool = MemManager::new(PoolConfig {
        unit_size: 1 << 20,
        unit_count: 2,
        phys_base: 0x4_0000_0000,
    })
    .unwrap();
    let config = SpectrogramConfig::speech_16k();
    let frames = config.frames(16_000);
    let out_len = frames * config.coefficients * 4;
    let mut unit = pool.get_item().unwrap();
    let off = unit
        .reserve(out_len, 0, config.coefficients as u32, frames as u32, 1)
        .unwrap();
    let cmd = DecodeCmd {
        cmd_id: 0,
        src,
        dst_phys: unit.phys_addr() + off as u64,
        dst_capacity: out_len as u32,
        target_w: config.coefficients as u16,
        target_h: 0,
        format: OutputFormat::Gray8,
    };
    engine
        .submit(Submission {
            unit,
            cmds: vec![cmd.pack()],
        })
        .unwrap();
    let done = engine.completions().pop().unwrap();
    println!(
        "  audio mirror: 1s of 16kHz PCM -> {} frames x {} log-DCT coefficients ({} ok)",
        frames,
        config.coefficients,
        done.ok_count()
    );
    pool.recycle_item(done.unit).unwrap();
}

/// Runs the text-quantisation mirror functionally: UTF-8 in, token ids out.
fn run_text_mirror() {
    use dlbooster::codec::text::synth_text;
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device.load_mirror(DecoderMirror::text_quantize()).unwrap();
    let resolver = Arc::new(MapResolver::new());
    let text = synth_text(50, 9);
    let src = resolver.put_disk(0, text.into_bytes());
    let engine = DecoderEngine::start(device, resolver).unwrap();
    let pool = MemManager::new(PoolConfig {
        unit_size: 64 << 10,
        unit_count: 2,
        phys_base: 0x4_0000_0000,
    })
    .unwrap();
    let seq_len = 64usize;
    let mut unit = pool.get_item().unwrap();
    let off = unit.reserve(seq_len * 4, 0, seq_len as u32, 1, 1).unwrap();
    let cmd = DecodeCmd {
        cmd_id: 0,
        src,
        dst_phys: unit.phys_addr() + off as u64,
        dst_capacity: (seq_len * 4) as u32,
        target_w: seq_len as u16,
        target_h: 0,
        format: OutputFormat::Gray8,
    };
    engine
        .submit(Submission {
            unit,
            cmds: vec![cmd.pack()],
        })
        .unwrap();
    let done = engine.completions().pop().unwrap();
    let first_ids: Vec<u32> = done.unit.item_bytes(0)[..16]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    println!(
        "  text mirror: 50 words -> {} token ids, first four = {:?} ({} ok)",
        seq_len,
        first_ids,
        done.ok_count()
    );
    pool.recycle_item(done.unit).unwrap();
}

fn main() {
    let spec = DeviceSpec::arria10_ax();
    println!(
        "device: {} — {} ALMs, {} DSPs, {} kb BRAM",
        spec.name, spec.budget.alms, spec.budget.dsps, spec.budget.bram_kbits
    );
    println!();
    println!(
        "{:<18} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "mirror", "huffman", "resize", "fits?", "imgs/s", "bottleneck"
    );

    let w = ImageWorkload::ilsvrc_like();
    for (hw, rw) in [
        (1u32, 1u32),
        (2, 1),
        (2, 2),
        (4, 2),
        (6, 3),
        (8, 4),
        (16, 8),
    ] {
        let mirror = DecoderMirror::jpeg_with_ways(hw, rw);
        let fits = spec.budget.fits(&mirror.resources).is_ok();
        let model = FpgaTimingModel::from_mirror(&mirror, &spec);
        println!(
            "{:<18} {:>8} {:>8} {:>10} {:>12.0} {:>12}",
            mirror.name,
            hw,
            rw,
            if fits { "yes" } else { "NO" },
            model.throughput_images_per_sec(&w),
            model.bottleneck(&w),
        );
    }

    println!();
    println!("running the non-image kernels functionally (paper §7 future work 3):");
    run_audio_mirror();
    run_text_mirror();

    println!();
    println!("switching workloads: mirrors for other DL applications (paper §3.1)");
    let mut device = FpgaDevice::new(spec);
    for mirror in [
        DecoderMirror::jpeg_paper_config(),
        DecoderMirror::audio_spectrogram(),
        DecoderMirror::text_quantize(),
    ] {
        let name = mirror.name.clone();
        match device.load_mirror(mirror) {
            Ok(()) => {
                let (alm, dsp, bram) = device.utilisation().unwrap();
                println!(
                    "  loaded {name}: ALM {:.0}% / DSP {:.0}% / BRAM {:.0}%",
                    alm * 100.0,
                    dsp * 100.0,
                    bram * 100.0
                );
                device.unload_mirror();
            }
            Err(e) => println!("  {name}: rejected — {e}"),
        }
    }

    println!();
    println!("oversized configuration is rejected by the resource check (§3.3):");
    let oversized = DecoderMirror::jpeg_with_ways(16, 16);
    match device.load_mirror(oversized) {
        Ok(()) => unreachable!("16/16 cannot fit an Arria-10"),
        Err(e) => println!("  {e}"),
    }
}

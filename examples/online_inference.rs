//! Online-inference scenario (paper §5.3): clients send JPEG frames over a
//! 40 Gbps fabric; DLBooster decodes them and a TensorRT-like engine serves
//! predictions.
//!
//! Part 1 is functional: real frames cross the simulated NIC, the
//! DataCollector runs in stream mode, the FPGA engine decodes real bytes,
//! and per-request wall latency is measured end to end.
//!
//! Part 2 prints the paper-scale DES rows for Figs. 7–9 (GoogLeNet).
//!
//! ```text
//! cargo run --example online_inference
//! ```

use dlbooster::prelude::*;
use dlbooster::workflows::figures;
use std::sync::Arc;
use std::time::Instant;

fn functional_online_pipeline() {
    // 5 clients generating small JPEG frames.
    let pool = ClientPool::small(2_000.0, 99);
    let requests = pool.generate_requests(24);
    println!(
        "[functional] generated {} requests from {} clients (mean payload {:.1} KB)",
        requests.len(),
        5,
        requests
            .iter()
            .map(|r| r.wire_bytes.len() as f64)
            .sum::<f64>()
            / requests.len() as f64
            / 1024.0
    );

    // NIC RX: frames land in simulated host memory.
    let nic = Arc::new(NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000));
    let collector = Arc::new(DataCollector::load_from_net());
    let t0 = Instant::now();
    for r in &requests {
        let desc = nic
            .deliver(&r.wire_bytes, t0.elapsed().as_nanos() as u64)
            .expect("valid frame");
        collector.push_from_net(&desc);
    }
    collector.close_stream();

    // DLBooster in stream mode.
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
    let engine = DecoderEngine::start(device, Arc::new(CombinedResolver::nic_only(Arc::clone(&nic)))).unwrap();
    let mut config = DlBoosterConfig::inference(1, 8, (224, 224));
    config.max_batches = Some(3);
    let booster = DlBooster::start(collector, FpgaChannel::init(engine, 0), config).unwrap();

    let mut served = 0usize;
    while let Ok(batch) = booster.next_batch(0) {
        let wall_us = t0.elapsed().as_micros();
        println!(
            "[functional] batch {} decoded: {} requests ready for the engine at t+{} us",
            batch.sequence,
            batch.len(),
            wall_us
        );
        served += batch.len();
        // Release the NIC buffers the FPGA consumed.
        booster.recycle(batch.unit);
    }
    println!("[functional] served {served} requests end to end (NIC → FPGA → host batch)");
}

fn main() {
    println!("== Part 1: functional online pipeline ==");
    functional_online_pipeline();

    println!();
    println!("== Part 2: paper-scale DES (Figs. 7, 8, 9) ==");
    let cal = Calibration::paper();
    println!("{}", figures::fig7_inference_throughput(&cal).render());
    println!("{}", figures::fig8_inference_latency(&cal).render());
    println!("{}", figures::fig9_inference_cpu_cost(&cal).render());
}

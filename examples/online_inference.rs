//! Online-inference scenario (paper §5.3): clients send JPEG frames over a
//! 40 Gbps fabric; DLBooster decodes them and a TensorRT-like engine serves
//! predictions.
//!
//! Part 1 is functional: real frames cross the simulated NIC, the
//! DataCollector runs in stream mode, the FPGA engine decodes real bytes,
//! and per-request wall latency is measured end to end.
//!
//! Part 2 prints the paper-scale DES rows for Figs. 7–9 (GoogLeNet).
//!
//! Part 3 goes beyond the paper: it drives the SLO-aware serving layer
//! (deadline-aware dynamic batching, admission control with load shedding,
//! per-tenant WFQ) through an open-loop overload sweep from 0.5× to 3× of
//! saturated capacity, prints the goodput-vs-offered-load table, and dumps
//! the 3× run's `TelemetryReport` JSON — so this example doubles as a
//! smoke test for the serving subsystem.
//!
//! ```text
//! cargo run --example online_inference
//! ```

use dlbooster::prelude::*;
use dlbooster::simcore::SimTime;
use dlbooster::workflows::inference::InferenceSim;
use dlbooster::workflows::report::{goodput_vs_offered_load, TelemetryReport};
use dlbooster::workflows::{figures, BackendKind};
use std::sync::Arc;
use std::time::Instant;

fn functional_online_pipeline() {
    // 5 clients generating small JPEG frames.
    let pool = ClientPool::small(2_000.0, 99);
    let requests = pool.generate_requests(24);
    println!(
        "[functional] generated {} requests from {} clients (mean payload {:.1} KB)",
        requests.len(),
        5,
        requests
            .iter()
            .map(|r| r.wire_bytes.len() as f64)
            .sum::<f64>()
            / requests.len() as f64
            / 1024.0
    );

    // NIC RX: frames land in simulated host memory.
    let nic = Arc::new(NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000));
    let collector = Arc::new(DataCollector::load_from_net());
    let t0 = Instant::now();
    for r in &requests {
        let desc = nic
            .deliver(&r.wire_bytes, t0.elapsed().as_nanos() as u64)
            .expect("valid frame");
        collector.push_from_net(&desc);
    }
    collector.close_stream();

    // DLBooster in stream mode.
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::nic_only(Arc::clone(&nic))),
    )
    .unwrap();
    let mut config = DlBoosterConfig::inference(1, 8, (224, 224));
    config.max_batches = Some(3);
    let booster = DlBooster::start(collector, FpgaChannel::init(engine, 0), config).unwrap();

    let mut served = 0usize;
    while let Ok(batch) = booster.next_batch(0) {
        let wall_us = t0.elapsed().as_micros();
        println!(
            "[functional] batch {} decoded: {} requests ready for the engine at t+{} us",
            batch.sequence,
            batch.len(),
            wall_us
        );
        served += batch.len();
        // Release the NIC buffers the FPGA consumed.
        booster.recycle(batch.unit);
    }
    println!("[functional] served {served} requests end to end (NIC → FPGA → host batch)");
}

fn serving_overload_sweep(cal: &Calibration) {
    let slo = SimTime::from_millis(50);
    let cfg = ServingConfig::five_clients(32, slo, ShedPolicy::DeadlineAware);
    let points = InferenceSim::overload_sweep(
        cal,
        ModelZoo::GoogLeNet,
        BackendKind::DlBooster,
        32,
        cfg,
        &figures::OVERLOAD_MULTIPLIERS,
        7,
    );
    println!(
        "{}",
        goodput_vs_offered_load(
            "GoogLeNet / DLBooster bs32, 5 tenants, deadline-aware shedding, 50 ms SLO",
            &points,
        )
        .render()
    );

    // The 3x point's full telemetry, as archival JSON (shed counters,
    // batch-size and queue-delay histograms, per-tenant goodput).
    let three_x = points.last().expect("sweep has points");
    let serving = three_x
        .outcome
        .serving
        .as_ref()
        .expect("served runs carry a serving outcome");
    let report = TelemetryReport::new(
        "Overload sweep / 3.0x",
        "serving-layer telemetry at 3x capacity",
        serving.snapshot.clone(),
    );
    println!("{}", report.to_json().to_string_pretty());
}

fn main() {
    println!("== Part 1: functional online pipeline ==");
    functional_online_pipeline();

    println!();
    println!("== Part 2: paper-scale DES (Figs. 7, 8, 9) ==");
    let cal = Calibration::paper();
    println!("{}", figures::fig7_inference_throughput(&cal).render());
    println!("{}", figures::fig8_inference_latency(&cal).render());
    println!("{}", figures::fig9_inference_cpu_cost(&cal).render());

    println!();
    println!("== Part 3: SLO-aware serving under overload (0.5x-3x capacity) ==");
    serving_overload_sweep(&cal);
}
